"""Integration tests pinning the paper's headline quantitative claims.

These use the full-resolution configuration on a representative subset of
the evaluation grid (the benchmark suite regenerates every figure in full).
Thresholds are set to the *shape* level the reproduction targets: who wins,
by roughly what factor.
"""

import numpy as np
import pytest

from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import GOLDEN_CO, OAK_RIDGE_TN, PHOENIX_AZ

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def az_days():
    return {
        policy: run_day("HM2", PHOENIX_AZ, 7, policy)
        for policy in ("MPPT&IC", "MPPT&RR", "MPPT&Opt")
    }


class TestPolicyOrdering:
    """Figure 21: MPPT&Opt > MPPT&RR > MPPT&IC."""

    def test_opt_beats_rr_beats_ic(self, az_days):
        assert az_days["MPPT&Opt"].ptp > az_days["MPPT&RR"].ptp
        assert az_days["MPPT&RR"].ptp > az_days["MPPT&IC"].ptp

    def test_opt_vs_ic_gap_substantial(self, az_days):
        """Paper: +37.8% on average; we require a clearly material gap."""
        assert az_days["MPPT&Opt"].ptp / az_days["MPPT&IC"].ptp > 1.15


class TestBatteryComparison:
    """Figure 21: SolarCore ~ Battery-U, both >> Battery-L-relative IC."""

    def test_opt_within_a_few_percent_of_battery_u(self):
        opt = run_day("HM2", GOLDEN_CO, 7, "MPPT&Opt")
        battery_u = run_day_battery("HM2", GOLDEN_CO, 7, 0.92)
        ratio = opt.ptp / battery_u.ptp
        assert 0.85 < ratio < 1.25

    def test_battery_u_to_l_ratio_is_derating_ratio(self):
        low = run_day_battery("H1", PHOENIX_AZ, 1, 0.81)
        high = run_day_battery("H1", PHOENIX_AZ, 1, 0.92)
        assert high.ptp / low.ptp == pytest.approx(0.92 / 0.81, rel=0.02)


class TestFixedPowerClaim:
    """Section 6.2: SolarCore outperforms the best fixed budget by >= ~43%
    in both energy utilization and PTP."""

    def test_best_fixed_at_most_three_quarters(self):
        solarcore = run_day("HM2", PHOENIX_AZ, 1, "MPPT&Opt")
        best_ptp = 0.0
        best_energy = 0.0
        for budget in (55.0, 65.0, 75.0, 90.0, 100.0, 115.0, 125.0):
            fixed = run_day_fixed("HM2", PHOENIX_AZ, 1, budget)
            best_ptp = max(best_ptp, fixed.ptp)
            best_energy = max(best_energy, fixed.solar_used_wh)
        assert best_ptp / solarcore.ptp < 0.75
        assert best_energy / solarcore.solar_used_wh < 0.75


class TestUtilizationClaim:
    """Abstract: ~82% average green-energy utilization; AZ above the
    battery-typical 81% bound."""

    def test_az_utilization_high(self):
        days = [run_day("HM2", PHOENIX_AZ, m, "MPPT&Opt") for m in (1, 7)]
        utilization = sum(d.solar_used_wh for d in days) / sum(
            d.solar_available_wh for d in days
        )
        assert utilization > 0.81

    def test_low_resource_site_lower_utilization(self):
        az = run_day("HM2", PHOENIX_AZ, 1, "MPPT&Opt")
        tn = run_day("HM2", OAK_RIDGE_TN, 1, "MPPT&Opt")
        assert tn.energy_utilization < az.energy_utilization


class TestTrackingErrorClaims:
    """Table 7's structure: errors in the ~4-22% band; high-EPI homogeneous
    worst; heterogeneous better than H1."""

    def test_error_band(self):
        for mix_name in ("H1", "L1", "HM2"):
            day = run_day(mix_name, PHOENIX_AZ, 1, "MPPT&Opt")
            assert 0.02 < day.mean_tracking_error < 0.25

    def test_h1_worse_than_l1(self):
        h1 = run_day("H1", PHOENIX_AZ, 1, "MPPT&Opt")
        l1 = run_day("L1", PHOENIX_AZ, 1, "MPPT&Opt")
        assert h1.mean_tracking_error > l1.mean_tracking_error


class TestEffectiveDurationClaim:
    """Figure 19: effective duration roughly 60-90% of daytime at the
    richer sites, ordered by resource class."""

    def test_duration_band_and_order(self):
        az = np.mean([
            run_day("HM2", PHOENIX_AZ, m, "MPPT&Opt").effective_duration_fraction
            for m in (1, 7)
        ])
        tn = np.mean([
            run_day("HM2", OAK_RIDGE_TN, m, "MPPT&Opt").effective_duration_fraction
            for m in (1, 7)
        ])
        assert 0.6 < az <= 1.0
        assert tn < az
