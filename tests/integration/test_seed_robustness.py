"""Seed robustness: the headline orderings hold across weather realizations.

Every figure in the repository uses the default seeded day per
(station, month); these tests re-draw the weather several times and check
the paper's qualitative conclusions are not artifacts of one draw.
"""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_battery
from repro.environment.irradiance import default_seed
from repro.environment.locations import PHOENIX_AZ

SEEDS = [default_seed(PHOENIX_AZ, 7) + offset for offset in (1, 2, 3)]


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


class TestPolicyOrderingAcrossSeeds:
    def test_opt_beats_ic_every_draw(self, cfg):
        for seed in SEEDS:
            opt = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=seed)
            ic = run_day("HM2", PHOENIX_AZ, 7, "MPPT&IC", config=cfg, seed=seed)
            assert opt.ptp > ic.ptp, seed

    def test_opt_at_least_matches_rr_on_average(self, cfg):
        ratios = []
        for seed in SEEDS:
            opt = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=seed)
            rr = run_day("HM2", PHOENIX_AZ, 7, "MPPT&RR", config=cfg, seed=seed)
            ratios.append(opt.ptp / rr.ptp)
        assert float(np.mean(ratios)) > 1.0


class TestUtilizationAcrossSeeds:
    def test_band_stable(self, cfg):
        utils = [
            run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=seed)
            .energy_utilization
            for seed in SEEDS
        ]
        assert all(0.75 < u < 0.95 for u in utils)
        assert max(utils) - min(utils) < 0.12  # weather moves it, modestly


class TestBatteryParityAcrossSeeds:
    def test_solarcore_tracks_battery_bound(self, cfg):
        for seed in SEEDS:
            opt = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=seed)
            battery = run_day_battery(
                "HM2", PHOENIX_AZ, 7, 0.92, config=cfg, seed=seed
            )
            assert 0.8 < opt.ptp / battery.ptp < 1.3, seed
