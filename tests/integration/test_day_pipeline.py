"""Integration tests: the full environment -> PV -> converter -> chip ->
controller pipeline over simulated days."""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_fixed
from repro.environment.irradiance import generate_trace
from repro.environment.locations import ALL_LOCATIONS, PHOENIX_AZ


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


class TestEnergyConservation:
    def test_solar_energy_never_exceeds_supply(self, cfg):
        for loc in ALL_LOCATIONS:
            day = run_day("HM2", loc, 7, "MPPT&Opt", config=cfg)
            assert day.solar_used_wh <= day.solar_available_wh + 1e-6

    def test_utilization_equals_energy_ratio(self, cfg):
        day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg)
        assert day.energy_utilization == pytest.approx(
            day.solar_used_wh / day.solar_available_wh
        )

    def test_utility_energy_positive_when_not_fully_solar(self, cfg):
        day = run_day("HM2", ALL_LOCATIONS[3], 1, "MPPT&Opt", config=cfg)
        if day.effective_duration_fraction < 1.0:
            assert day.utility_wh > 0.0


class TestSupplyFollowing:
    def test_consumption_tracks_budget_shape(self, cfg):
        """Consumed power correlates strongly with the MPP budget — the
        essence of Figures 13/14."""
        day = run_day("HM2", PHOENIX_AZ, 1, "MPPT&Opt", config=cfg)
        mask = day.on_solar & (day.mpp_w > 0)
        corr = np.corrcoef(day.mpp_w[mask], day.consumed_w[mask])[0, 1]
        assert corr > 0.9

    def test_morning_ramp_raises_consumption(self, cfg):
        day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg)
        solar_idx = np.flatnonzero(day.on_solar)
        early = day.consumed_w[solar_idx[: len(solar_idx) // 4]].mean()
        midday = day.consumed_w[solar_idx[len(solar_idx) // 3 : 2 * len(solar_idx) // 3]].mean()
        assert midday > early


class TestTraceInjection:
    def test_custom_trace_used(self, cfg):
        trace = generate_trace(PHOENIX_AZ, 7, seed=123, step_minutes=5.0)
        day = run_day("L1", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, trace=trace)
        assert len(day.minutes) == len(trace.minutes) - 1

    def test_different_seeds_change_outcome(self, cfg):
        a = run_day("L1", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=1)
        b = run_day("L1", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, seed=2)
        assert a.ptp != b.ptp


class TestFixedVsMppt:
    def test_solarcore_beats_any_fixed_budget(self, cfg):
        """Figure 17's headline: the best fixed budget trails SolarCore."""
        solarcore = run_day("HM2", PHOENIX_AZ, 1, "MPPT&Opt", config=cfg)
        for budget in (60.0, 75.0, 100.0, 125.0):
            fixed = run_day_fixed("HM2", PHOENIX_AZ, 1, budget, config=cfg)
            assert fixed.ptp < solarcore.ptp
            assert fixed.solar_used_wh < solarcore.solar_used_wh
