"""Failure-injection integration tests: the system must degrade gracefully.

Scenarios: total blackout mid-day (storm front), extreme sensor noise,
sustained deep overcast, and a panel far too small for the chip.
"""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.environment.trace import EnvironmentTrace
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.pv.params import CellParameters, ModuleParameters


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


def trace_with_blackout() -> EnvironmentTrace:
    """A clear day whose middle two hours lose all irradiance."""
    minutes = np.arange(450.0, 1051.0, 5.0)
    hump = 900.0 * np.sin(np.pi * (minutes - 450.0) / 600.0) ** 1.5
    blackout = (minutes >= 700.0) & (minutes <= 820.0)
    irradiance = np.where(blackout, 0.0, hump)
    ambient = np.full_like(minutes, 25.0)
    return EnvironmentTrace(minutes, irradiance, ambient, label="blackout")


class TestBlackout:
    def test_survives_total_blackout(self, cfg):
        day = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            trace=trace_with_blackout(),
        )
        # During the blackout the chip must be on the utility...
        black = (day.minutes >= 700.0) & (day.minutes <= 820.0)
        assert not day.on_solar[black].any()
        # ...and must re-engage the panel afterwards.
        after = day.minutes > 860.0
        assert day.on_solar[after & (day.mpp_w > 80.0)].any()

    def test_energy_accounting_stays_consistent(self, cfg):
        day = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            trace=trace_with_blackout(),
        )
        assert day.solar_used_wh <= day.solar_available_wh + 1e-6
        assert day.utility_wh > 0.0


class TestSensorFaults:
    def test_noisy_sensor_still_productive(self, cfg):
        day = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            sensor=IVSensor(noise_fraction=0.05, seed=3),
        )
        assert day.energy_utilization > 0.5
        assert np.all(day.consumed_w[day.on_solar] <= day.mpp_w[day.on_solar] + 1e-6)

    def test_quantized_sensor_still_productive(self, cfg):
        day = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            sensor=IVSensor(quantization_v=0.2, quantization_a=0.2),
        )
        assert day.energy_utilization > 0.4

    def test_burst_averaging_recovers_accuracy(self):
        cfg_raw = SolarCoreConfig(step_minutes=5.0)
        cfg_avg = SolarCoreConfig(step_minutes=5.0, sensor_averaging=8)
        raw = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg_raw,
            sensor=IVSensor(noise_fraction=0.02, seed=3),
        )
        averaged = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg_avg,
            sensor=IVSensor(noise_fraction=0.02, seed=3),
        )
        assert averaged.mean_tracking_error < raw.mean_tracking_error
        assert averaged.energy_utilization > raw.energy_utilization


class TestUndersizedPanel:
    def test_tiny_panel_falls_back_to_utility(self, cfg):
        """A 20 W panel can never start the chip: all-utility day."""
        tiny = ModuleParameters(
            name="tiny",
            cell=CellParameters(isc_ref=0.6, voc_ref=43.6 / 72),
            cells_series=72,
        )
        day = run_day(
            "HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            array=PVArray(tiny),
        )
        assert day.effective_duration_fraction == 0.0
        assert day.utility_wh > 0.0
        assert day.retired_ginst_total > 0.0  # chip still computes on grid


class TestOversizedPanel:
    def test_huge_array_saturates_cleanly(self, cfg):
        """A 6-module array dwarfs the chip: it runs flat-out on solar."""
        day = run_day(
            "L1", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg,
            array=PVArray(modules_series=2, modules_parallel=3),
        )
        assert day.effective_duration_fraction > 0.9
        # Utilization is low: the chip cannot absorb a 1 kW panel.
        assert day.energy_utilization < 0.5
        assert np.all(day.consumed_w <= day.mpp_w + 1e-6)
