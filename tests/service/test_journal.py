"""The crash-safe job journal: round-trip, torn tails, compaction."""

from __future__ import annotations

import json

import pytest

from repro.harness.parallel import SweepTask
from repro.service.jobs import (
    DONE,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    JobTable,
)
from repro.service.journal import JobJournal, JournalCorruption


def spec(month: int = 7, deadline_s: float | None = None) -> JobSpec:
    return JobSpec(
        tasks=(SweepTask("mppt", "HM2", "PFCI", month),),
        label="t", deadline_s=deadline_s,
    )


def test_spec_to_dict_round_trips_through_from_dict():
    original = JobSpec.from_dict({
        "tasks": [
            {"mix": "HM2", "site": "AZ", "month": 7, "seed": 3},
            {"kind": "fixed", "mix": "H1", "site": "TN", "month": 1,
             "budget_w": 200.0},
        ],
        "solver": "table",
        "label": "round trip",
        "deadline_s": 5.0,
    })
    assert JobSpec.from_dict(original.to_dict()) == original


def test_journal_replays_submits_and_transitions(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    a = table.create(spec(1))
    b = table.create(spec(2))
    table.transition(a, RUNNING)
    table.transition(a, DONE)
    table.transition(b, RUNNING)

    report = JobJournal(tmp_path).replay()
    by_id = {job.job_id: job for job in report.jobs}
    assert by_id[a.job_id].state == DONE
    assert by_id[b.job_id].state == RUNNING
    assert by_id[b.job_id].spec == b.spec
    assert report.next_id == 3
    assert report.corrupt_lines == 0
    assert report.truncated_bytes == 0


def test_restore_bumps_id_counter_past_replayed_jobs(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    table.create(spec(1))
    table.create(spec(2))

    report = JobJournal(tmp_path).replay()
    fresh = JobTable()
    for job in report.jobs:
        fresh.restore(job)
    assert fresh.next_id == 3
    assert fresh.create(spec(3)).job_id == "job-000003"


def test_restore_rejects_duplicates(tmp_path):
    table = JobTable()
    job = Job(job_id="job-000004", spec=spec())
    table.restore(job)
    with pytest.raises(ValueError, match="duplicate"):
        table.restore(job)


def test_torn_tail_is_truncated_loudly(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    job = table.create(spec())
    table.transition(job, RUNNING)
    journal.close()
    # Simulate a crash mid-append: a half-written record at the tail.
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "state", "job_id": "job-0000')
    size_before = journal.journal_path.stat().st_size

    with pytest.warns(JournalCorruption, match="torn tail"):
        report = JobJournal(tmp_path).replay()
    assert report.truncated_bytes > 0
    assert journal.journal_path.stat().st_size < size_before
    assert report.jobs[0].state == RUNNING  # acknowledged prefix survives

    # A second replay is clean: truncation healed the file.
    again = JobJournal(tmp_path).replay()
    assert again.truncated_bytes == 0
    assert again.corrupt_lines == 0


def test_corrupt_middle_record_is_dropped_but_tail_kept(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    a = table.create(spec(1))
    journal.append({"op": "state", "job_id": "job-999999", "state": DONE})
    table.transition(a, RUNNING)

    with pytest.warns(JournalCorruption, match="unusable record"):
        report = JobJournal(tmp_path).replay()
    assert report.corrupt_lines == 1
    assert report.truncated_bytes == 0  # later good records keep the tail
    assert report.jobs[0].state == RUNNING


def test_compaction_is_atomic_and_replayable(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    a = table.create(spec(1))
    table.transition(a, RUNNING)
    table.transition(a, DONE)
    b = table.create(spec(2))

    journal.compact(table.jobs(), table.next_id)
    assert journal.journal_path.stat().st_size == 0
    assert journal.snapshot_path.exists()

    # Post-compaction appends layer on top of the snapshot.
    table.transition(b, RUNNING)
    table.transition(b, INTERRUPTED)

    report = JobJournal(tmp_path).replay()
    by_id = {job.job_id: job for job in report.jobs}
    assert by_id[a.job_id].state == DONE
    assert by_id[b.job_id].state == INTERRUPTED
    assert report.next_id == 3


def test_maybe_compact_honors_threshold(tmp_path):
    journal = JobJournal(tmp_path, fsync=False, compact_every=4)
    table = JobTable(observer=journal.observer)
    job = table.create(spec())          # 1 append
    assert journal.maybe_compact(table.jobs(), table.next_id) is False
    table.transition(job, RUNNING)      # 2
    table.transition(job, DONE)         # 3
    assert journal.maybe_compact(table.jobs(), table.next_id) is False
    table.create(spec(2))               # 4
    assert journal.maybe_compact(table.jobs(), table.next_id) is True
    assert journal.compactions == 1
    assert journal.journal_path.stat().st_size == 0


def test_corrupt_snapshot_falls_back_to_journal(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    a = table.create(spec(1))
    table.transition(a, RUNNING)
    journal.snapshot_path.write_text("{not json", encoding="utf-8")

    with pytest.warns(JournalCorruption, match="unusable snapshot"):
        report = JobJournal(tmp_path).replay()
    assert report.corrupt_snapshot is True
    assert report.jobs[0].state == RUNNING


def test_empty_directory_replays_to_nothing(tmp_path):
    report = JobJournal(tmp_path / "fresh").replay()
    assert report.jobs == []
    assert report.next_id == 1


def test_unknown_state_in_record_is_corruption(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    job = table.create(spec())
    journal.append({"op": "state", "job_id": job.job_id, "state": "paused"})
    with pytest.warns(JournalCorruption, match="unknown state"):
        report = JobJournal(tmp_path).replay()
    assert report.corrupt_lines == 1
    assert report.jobs[0].state == QUEUED


def test_journal_records_are_one_json_object_per_line(tmp_path):
    journal = JobJournal(tmp_path, fsync=False)
    table = JobTable(observer=journal.observer)
    job = table.create(spec(deadline_s=2.5))
    table.transition(job, RUNNING)
    lines = journal.journal_path.read_text().splitlines()
    assert len(lines) == 2
    submit = json.loads(lines[0])
    assert submit["op"] == "submit"
    assert submit["spec"]["deadline_s"] == 2.5
    assert json.loads(lines[1]) == {
        "job_id": job.job_id, "op": "state", "state": RUNNING,
    }
