"""The hand-rolled RFC 6455 subset, pinned against the RFC itself."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import wsproto
from tests.service.conftest import run_async


async def decode(data: bytes, **kwargs) -> tuple[int, bytes]:
    """Read one frame out of raw bytes (reader built on the test's loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return await wsproto.read_frame(reader, **kwargs)


def test_accept_key_rfc_vector():
    # The worked example of RFC 6455 §1.3.
    assert (
        wsproto.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


def test_mask_is_involutive():
    payload = bytes(range(256)) * 7 + b"tail"
    key = b"\x37\xfa\x21\x3d"
    masked = wsproto._mask(payload, key)
    assert masked != payload
    assert wsproto._mask(masked, key) == payload
    assert wsproto._mask(b"", key) == b""


def test_mask_matches_per_byte_definition():
    # The big-int implementation must equal RFC 6455 §5.3's byte-wise XOR.
    payload = b"Hello, telemetry!"
    key = b"\x01\x02\x03\x04"
    expected = bytes(
        b ^ key[i % 4] for i, b in enumerate(payload)
    )
    assert wsproto._mask(payload, key) == expected


@pytest.mark.parametrize("size", [0, 1, 125, 126, 127, 1000, 1 << 16, (1 << 16) + 17])
@pytest.mark.parametrize("masked", [False, True])
def test_frame_roundtrip_all_length_encodings(size, masked):
    payload = bytes(i & 0xFF for i in range(size))
    frame = wsproto.encode_frame(wsproto.OP_BINARY, payload, masked=masked)
    opcode, decoded = run_async(
        decode(frame, max_size=1 << 17)
    )
    assert opcode == wsproto.OP_BINARY
    assert decoded == payload


def test_text_frame_roundtrip():
    frame = wsproto.encode_frame(wsproto.OP_TEXT, "héllo".encode(), masked=True)
    opcode, payload = run_async(decode(frame))
    assert opcode == wsproto.OP_TEXT
    assert payload.decode() == "héllo"


def test_control_frames_roundtrip():
    for opcode in (wsproto.OP_PING, wsproto.OP_PONG, wsproto.OP_CLOSE):
        frame = wsproto.encode_frame(opcode, b"x" * 125)
        got_op, got_payload = run_async(decode(frame))
        assert (got_op, got_payload) == (opcode, b"x" * 125)


def test_oversized_control_frame_rejected_at_encode():
    with pytest.raises(wsproto.WSProtocolError, match="125"):
        wsproto.encode_frame(wsproto.OP_PING, b"x" * 126)


def test_fragmented_frame_rejected():
    # FIN=0 text frame: a fragment start we deliberately do not support.
    frame = bytearray(wsproto.encode_frame(wsproto.OP_TEXT, b"part"))
    frame[0] &= 0x7F  # clear FIN
    with pytest.raises(wsproto.WSProtocolError, match="fragmented"):
        run_async(decode(bytes(frame)))


def test_continuation_opcode_rejected():
    frame = bytearray(wsproto.encode_frame(wsproto.OP_TEXT, b"part"))
    frame[0] = 0x80 | wsproto.OP_CONT
    with pytest.raises(wsproto.WSProtocolError, match="fragmented"):
        run_async(decode(bytes(frame)))


def test_reserved_bits_rejected():
    frame = bytearray(wsproto.encode_frame(wsproto.OP_TEXT, b"hi"))
    frame[0] |= 0x40  # RSV1, as a compression extension would set
    with pytest.raises(wsproto.WSProtocolError, match="eserved"):
        run_async(decode(bytes(frame)))


def test_unknown_opcode_rejected():
    frame = bytearray(wsproto.encode_frame(wsproto.OP_TEXT, b"hi"))
    frame[0] = 0x80 | 0x3
    with pytest.raises(wsproto.WSProtocolError, match="opcode"):
        run_async(decode(bytes(frame)))


def test_oversized_frame_rejected_before_reading_payload():
    frame = wsproto.encode_frame(wsproto.OP_BINARY, b"y" * 4096)
    with pytest.raises(wsproto.WSProtocolError, match="max_size"):
        run_async(decode(frame, max_size=1024))


def test_peer_hangup_mid_frame_raises_incomplete_read():
    frame = wsproto.encode_frame(wsproto.OP_BINARY, b"z" * 100)
    with pytest.raises(asyncio.IncompleteReadError):
        run_async(decode(frame[:20]))
