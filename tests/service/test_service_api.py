"""The HTTP/WebSocket API surface: routes, validation, error envelopes."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import SolarCoreConfig
from repro.service.client import ServiceError
from repro.service.jobs import DONE, FAILED
from tests.service.conftest import run_async

SPEC = {"mix": "HM2", "site": "AZ", "month": 7}


def test_health_stats_and_job_listing(harness_factory, gated_compute):
    async def main():
        gated_compute.release()
        async with harness_factory() as h:
            assert await h.client.healthz() == {"status": "ok"}
            empty = await h.client.stats()
            assert empty["jobs"]["running"] == 0
            assert await h.client.jobs() == []

            doc = await h.client.submit(dict(SPEC, label="listed"), wait=True)
            listing = await h.client.jobs()
            assert [j["job_id"] for j in listing] == [doc["job_id"]]
            assert listing[0]["label"] == "listed"

            fetched = await h.client.job(doc["job_id"])
            assert fetched["state"] == DONE
            assert fetched["result"][0]["ptp"] == 1234.0

    run_async(main())


def test_submit_without_wait_returns_202_immediately(
    harness_factory, gated_compute
):
    async def main():
        async with harness_factory() as h:
            doc = await h.client.submit(dict(SPEC))
            assert doc["state"] in ("queued", "running")
            gated_compute.release()
            final = await h.client.wait_terminal(doc["job_id"])
            assert final["state"] == DONE

    run_async(main())


def test_validation_errors_are_422_with_the_offending_field(harness_factory):
    async def main():
        async with harness_factory() as h:
            with pytest.raises(ServiceError) as excinfo:
                await h.client.submit({"site": "AZ"})  # no month
            assert excinfo.value.status == 422
            assert "month" in str(excinfo.value)

            with pytest.raises(ServiceError) as excinfo:
                await h.client.submit(dict(SPEC, solver="magic"))
            assert excinfo.value.status == 422
            assert "solver" in str(excinfo.value)

    run_async(main())


def test_malformed_json_is_400(harness_factory):
    async def main():
        async with harness_factory() as h:
            reader, writer = await asyncio.open_connection(
                h.service.host, h.service.port
            )
            body = b"{not json"
            writer.write(
                b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status_line = await reader.readline()
            assert b" 400 " in status_line
            writer.close()

    run_async(main())


def test_unknown_routes_and_jobs_are_404(harness_factory):
    async def main():
        async with harness_factory() as h:
            for method, path in [
                ("GET", "/nope"),
                ("GET", "/jobs/job-999999"),
                ("POST", "/jobs/job-999999/cancel"),
            ]:
                with pytest.raises(ServiceError) as excinfo:
                    await h.client.request(method, path)
                assert excinfo.value.status == 404

    run_async(main())


def test_ws_endpoint_without_upgrade_is_426(harness_factory):
    async def main():
        async with harness_factory() as h:
            with pytest.raises(ServiceError) as excinfo:
                await h.client.request("GET", "/ws/telemetry")
            assert excinfo.value.status == 426

    run_async(main())


def test_failed_compute_surfaces_as_failed_job(harness_factory, monkeypatch):
    def explode(task, config):
        raise RuntimeError("panel caught fire")

    monkeypatch.setattr("repro.harness.runner.compute_task", explode)

    async def main():
        async with harness_factory() as h:
            doc = await h.client.submit(dict(SPEC), wait=True)
            assert doc["state"] == FAILED
            assert "RuntimeError: panel caught fire" in doc["error"]
            assert "result" not in doc

    run_async(main())


def test_campaign_spec_runs_every_seed(harness_factory, gated_compute):
    async def main():
        gated_compute.release()
        async with harness_factory() as h:
            doc = await h.client.submit({
                "campaign": {"mix": "HM2", "sites": ["AZ"], "months": [7],
                             "days": 3},
            }, wait=True)
            assert doc["state"] == DONE
            assert doc["tasks"] == 3
            assert gated_compute.calls == 3

    run_async(main())


def test_per_solver_runners_are_isolated(harness_factory, gated_compute):
    async def main():
        gated_compute.release()
        async with harness_factory() as h:
            await h.client.submit(dict(SPEC), wait=True)
            await h.client.submit(dict(SPEC, solver="table"), wait=True)
            # Different solver = different cache identity = two computes.
            assert gated_compute.calls == 2
            stats = await h.client.stats()
            assert set(stats["runners"]) == {"exact/alpha8", "table/alpha8"}

    run_async(main())


def test_real_simulation_end_to_end():
    # One unfaked pass through the full stack: real weather, real panel,
    # real day engine, summarized over HTTP.  Coarse cadence keeps it fast.
    from tests.service.conftest import ServiceHarness

    async def main():
        config = SolarCoreConfig(step_minutes=15.0)
        async with ServiceHarness(config=config) as h:
            doc = await h.client.submit(dict(SPEC), wait=True)
            assert doc["state"] == DONE
            (summary,) = doc["result"]
            assert summary["ptp"] > 0
            assert 0.0 < summary["energy_utilization"] <= 1.0

    run_async(main())
