"""Bounded drop-oldest streaming — the unit-level backpressure contract."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.stream import ClientStream, StreamHub
from tests.service.conftest import run_async


def test_drop_oldest_on_overflow():
    stream = ClientStream(capacity=3)
    for i in range(10):
        stream.push({"i": i})
    assert stream.drops == 7
    assert stream.offered == 10
    assert len(stream) == 3
    # The *newest* three survive; the backlog is what was sacrificed.
    drained = [run_async(stream.get())["i"] for _ in range(3)]
    assert drained == [7, 8, 9]


def test_get_returns_none_after_close_and_drain():
    stream = ClientStream(capacity=4)
    stream.push({"i": 0})
    stream.close()
    assert run_async(stream.get()) == {"i": 0}  # close drains first
    assert run_async(stream.get()) is None


def test_get_wakes_on_push():
    async def main():
        stream = ClientStream(capacity=4)

        async def producer():
            await asyncio.sleep(0.01)
            stream.push({"i": 42})

        task = asyncio.get_running_loop().create_task(producer())
        message = await stream.get()
        await task
        return message

    assert run_async(main()) == {"i": 42}


def test_get_wakes_on_close():
    async def main():
        stream = ClientStream(capacity=4)
        asyncio.get_running_loop().call_later(0.01, stream.close)
        return await stream.get()

    assert run_async(main()) is None


def test_capacity_validation():
    with pytest.raises(ValueError, match=">= 1"):
        ClientStream(0)
    with pytest.raises(ValueError, match=">= 1"):
        StreamHub(client_queue_size=0)


def test_hub_fans_out_to_every_client():
    hub = StreamHub(client_queue_size=8)
    a, b = hub.subscribe(), hub.subscribe()
    hub.publish({"n": 1})
    hub.publish({"n": 2})
    assert len(a) == 2 and len(b) == 2
    assert hub.stats() == {"clients": 2, "published": 2, "drops": 0}


def test_hub_counts_drops_across_departed_clients():
    hub = StreamHub(client_queue_size=2)
    slow = hub.subscribe()
    for i in range(6):
        hub.publish({"i": i})
    assert slow.drops == 4
    assert hub.stats()["drops"] == 4
    hub.unsubscribe(slow)
    # The departed client's drops stay on the hub-wide ledger.
    assert hub.stats() == {"clients": 0, "published": 6, "drops": 4}
    hub.unsubscribe(slow)  # idempotent
    assert hub.stats()["drops"] == 4


def test_hub_close_ends_every_stream():
    hub = StreamHub(client_queue_size=2)
    client = hub.subscribe()
    hub.close()
    assert client.closed
    assert run_async(client.get()) is None
    assert hub.stats()["clients"] == 0


def test_publish_never_blocks_even_with_a_stuck_client():
    # The producer-side guarantee, measured: 10k publishes into a stuck
    # client of capacity 2 complete synchronously (no await points at all).
    import time

    hub = StreamHub(client_queue_size=2)
    hub.subscribe()  # never read
    start = time.perf_counter()
    for i in range(10_000):
        hub.publish({"i": i})
    elapsed = time.perf_counter() - start
    assert hub.stats()["drops"] == 9_998
    assert elapsed < 2.0  # generous; it is a deque append per publish
