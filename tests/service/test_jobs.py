"""Job specs and the state machine — the service's sync core."""

from __future__ import annotations

import pytest

from repro.harness.parallel import SweepTask
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    JobSpec,
    JobSpecError,
    JobTable,
)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def test_single_task_shape():
    spec = JobSpec.from_dict({"mix": "HM2", "site": "AZ", "month": 7})
    assert len(spec.tasks) == 1
    task = spec.tasks[0]
    assert (task.mix_name, task.month) == ("HM2", 7)
    assert task.location_code == "PFCI"  # canonicalized alias
    assert spec.solver == "exact"


def test_task_list_shape_deduplicates_preserving_order():
    spec = JobSpec.from_dict({"tasks": [
        {"mix": "HM2", "site": "AZ", "month": 7},
        {"mix": "H1", "site": "TN", "month": 1},
        {"mix": "HM2", "site": "PFCI", "month": 7},  # alias of the first
    ]})
    assert len(spec.tasks) == 2
    assert spec.tasks[0].mix_name == "HM2"
    assert spec.tasks[1].mix_name == "H1"


def test_campaign_shape_expands_seeds():
    spec = JobSpec.from_dict({"campaign": {
        "mix": "HM2", "sites": ["AZ", "TN"], "months": [1, 7], "days": 3,
    }})
    # 2 sites x 2 months x 3 seeds
    assert len(spec.tasks) == 12
    assert {t.seed for t in spec.tasks} == {0, 1, 2}


def test_solver_and_label_fields():
    spec = JobSpec.from_dict({
        "mix": "HM2", "site": "AZ", "month": 7,
        "solver": "table", "label": "figure 18",
    })
    assert spec.solver == "table"
    assert spec.label == "figure 18"


def test_faults_field_reaches_the_task():
    spec = JobSpec.from_dict({
        "mix": "HM2", "site": "AZ", "month": 7,
        "faults": "sensor_dropout@600-660",
    })
    assert spec.tasks[0].faults is not None


@pytest.mark.parametrize("doc,match", [
    ([], "must be an object"),
    ({"site": "AZ"}, "month"),
    ({"month": 7}, "site"),
    ({"site": "AZ", "month": "7"}, "month"),
    ({"site": "AZ", "month": 7, "bogus": 1}, "bogus"),
    ({"site": "AZ", "month": 7, "solver": "magic"}, "solver"),
    ({"site": "AZ", "month": 7, "label": 5}, "label"),
    ({"tasks": []}, "non-empty"),
    ({"tasks": [{"site": "AZ", "month": 7}], "campaign": {}}, "not both"),
    ({"campaign": {"sites": [], "months": [7]}}, "non-empty"),
    ({"campaign": {"sites": ["AZ"], "months": [7], "days": 0}}, "days"),
    ({"site": "NOWHERE", "month": 7}, "NOWHERE"),
])
def test_malformed_specs_name_the_offense(doc, match):
    with pytest.raises(JobSpecError, match=match):
        JobSpec.from_dict(doc)


def test_describe_is_compact():
    spec = JobSpec.from_dict({"mix": "HM2", "site": "AZ", "month": 7})
    assert "HM2" in spec.describe()
    many = JobSpec.from_dict({"campaign": {
        "sites": ["AZ"], "months": [7], "days": 2,
    }})
    assert "2 task(s)" in many.describe()


# ----------------------------------------------------------------------
# The state machine
# ----------------------------------------------------------------------
def spec() -> JobSpec:
    return JobSpec(tasks=(SweepTask("mppt", "HM2", "AZ", 7),))


def test_transition_relation_is_complete_and_terminal_states_closed():
    assert set(VALID_TRANSITIONS) == set(JOB_STATES)
    for state in TERMINAL_STATES:
        assert not VALID_TRANSITIONS[state]


def test_happy_path_and_status_document():
    table = JobTable()
    job = table.create(spec())
    assert job.state == QUEUED
    assert job.job_id == "job-000001"
    table.transition(job, RUNNING)
    table.transition(job, DONE, result=[{"ptp": 1.0}])
    doc = job.status()
    assert doc["state"] == DONE
    assert doc["result"] == [{"ptp": 1.0}]
    assert "error" not in doc


def test_every_invalid_transition_raises_and_leaves_state_untouched():
    for state in JOB_STATES:
        for target in JOB_STATES - VALID_TRANSITIONS[state]:
            table = JobTable()
            job = table.create(spec())
            job.state = state
            with pytest.raises(InvalidTransition, match=f"{state} -> {target}"):
                table.transition(job, target)
            assert job.state == state


def test_unknown_state_rejected():
    table = JobTable()
    job = table.create(spec())
    with pytest.raises(InvalidTransition, match="unknown state"):
        table.transition(job, "paused")


def test_cancel_is_noop_on_terminal_jobs():
    table = JobTable()
    job = table.create(spec())
    table.transition(job, RUNNING)
    table.transition(job, DONE)
    assert table.cancel(job) is False
    assert job.state == DONE
    fresh = table.create(spec())
    assert table.cancel(fresh) is True
    assert fresh.state == CANCELLED


def test_failed_jobs_carry_their_error():
    table = JobTable()
    job = table.create(spec())
    table.transition(job, RUNNING)
    table.transition(job, FAILED, error="ValueError: no sun")
    assert job.status()["error"] == "ValueError: no sun"


def test_counts_and_transition_counters():
    table = JobTable()
    a, b, c = table.create(spec()), table.create(spec()), table.create(spec())
    table.transition(a, RUNNING)
    table.transition(a, DONE)
    table.transition(b, RUNNING)
    table.cancel(c)
    assert table.counts() == {
        "queued": 0, "running": 1, "done": 1, "failed": 0, "cancelled": 1,
        "interrupted": 0, "deadline_exceeded": 0,
    }
    assert table.transitions["queued"] == 3
    assert table.transitions["done"] == 1
    assert table.transitions["cancelled"] == 1


def test_unknown_job_lookup_is_a_clear_keyerror():
    with pytest.raises(KeyError, match="unknown job"):
        JobTable().get("job-999999")


# ----------------------------------------------------------------------
# Subscriptions
# ----------------------------------------------------------------------
def test_subscribers_see_every_transition_in_order():
    table = JobTable()
    job = table.create(spec())
    sub = table.subscribe(job.job_id)
    table.transition(job, RUNNING)
    table.transition(job, DONE)
    states = [n["state"] for n in sub.drain()]
    assert states == [RUNNING, DONE]
    assert sub.drain() == []  # drained means drained


def test_subscribe_after_terminal_delivers_immediately():
    # The guarantee: no client can miss the end of a job by racing it.
    table = JobTable()
    job = table.create(spec())
    table.transition(job, RUNNING)
    table.transition(job, DONE)
    sub = table.subscribe(job.job_id)
    notes = sub.drain()
    assert [n["state"] for n in notes] == [DONE]


def test_listener_fires_synchronously_on_push():
    table = JobTable()
    job = table.create(spec())
    sub = table.subscribe(job.job_id)
    seen: list[str] = []
    sub.listener = lambda n: seen.append(n["state"])
    table.transition(job, RUNNING)
    assert seen == [RUNNING]


def test_unsubscribe_stops_delivery():
    table = JobTable()
    job = table.create(spec())
    sub = table.subscribe(job.job_id)
    table.unsubscribe(sub)
    table.unsubscribe(sub)  # idempotent
    table.transition(job, RUNNING)
    assert sub.drain() == []
