"""Hypothesis state machine over the job lifecycle.

The :class:`~repro.service.jobs.JobTable` was built synchronous precisely
so this test can exist: Hypothesis drives *arbitrary interleavings* of
submit / transition-attempt / cancel / subscribe / unsubscribe against a
trivial model, and shrinks any violating sequence to its minimal form.

Properties pinned:

* a job's observed state always equals the model's (no transition applies
  without being valid, no valid transition is lost);
* an invalid transition raises and leaves the job untouched — terminal
  jobs can never resurrect;
* every live subscription's notification sequence is a contiguous walk of
  the transition relation;
* **the terminal guarantee**: a subscriber of a terminal job has always
  already received the terminal notification, no matter when it
  subscribed relative to the transitions.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.harness.parallel import SweepTask
from repro.service.jobs import (
    JOB_STATES,
    QUEUED,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    JobSpec,
    JobTable,
)

_SPEC = JobSpec(tasks=(SweepTask("mppt", "HM2", "AZ", 7),))

#: Target states a transition attempt may name (everything but queued —
#: nothing ever goes *back* to queued, and the machine tries them all).
_TARGETS = sorted(JOB_STATES - {QUEUED})


class JobLifecycleMachine(RuleBasedStateMachine):
    jobs = Bundle("jobs")

    def __init__(self) -> None:
        super().__init__()
        self.table = JobTable()
        #: The model: job_id -> expected state.
        self.model: dict[str, str] = {}
        #: (job, subscription, every notification it ever received).
        self.subscriptions: list[tuple] = []

    # -- rules ----------------------------------------------------------
    @rule(target=jobs)
    def submit(self):
        job = self.table.create(_SPEC)
        self.model[job.job_id] = QUEUED
        return job

    @rule(job=jobs, target_state=st.sampled_from(_TARGETS))
    def attempt_transition(self, job, target_state):
        expected = self.model[job.job_id]
        if target_state in VALID_TRANSITIONS[expected]:
            self.table.transition(job, target_state)
            self.model[job.job_id] = target_state
        else:
            with pytest.raises(InvalidTransition):
                self.table.transition(job, target_state)

    @rule(job=jobs)
    def cancel(self, job):
        expected = self.model[job.job_id]
        cancelled = self.table.cancel(job)
        if expected in TERMINAL_STATES:
            assert cancelled is False, "cancel resurrected a terminal job"
        else:
            assert cancelled is True
            self.model[job.job_id] = "cancelled"

    @rule(job=jobs)
    def subscribe(self, job):
        sub = self.table.subscribe(job.job_id)
        received = list(sub.drain())
        sub.listener = received.append
        self.subscriptions.append((job, sub, received))

    @rule(data=st.data())
    def unsubscribe(self, data):
        if not self.subscriptions:
            return
        index = data.draw(
            st.integers(min_value=0, max_value=len(self.subscriptions) - 1)
        )
        job, sub, received = self.subscriptions.pop(index)
        self.table.unsubscribe(sub)

    # -- invariants ------------------------------------------------------
    @invariant()
    def states_match_the_model(self):
        for job_id, expected in self.model.items():
            job = self.table.get(job_id)
            assert job.state == expected
            assert job.state in JOB_STATES

    @invariant()
    def notification_sequences_walk_the_relation(self):
        for job, sub, received in self.subscriptions:
            states = [n["state"] for n in received]
            for earlier, later in zip(states, states[1:]):
                assert later in VALID_TRANSITIONS[earlier], (
                    f"notified {earlier} -> {later}, which is not a "
                    "valid transition"
                )

    @invariant()
    def terminal_jobs_always_notified(self):
        # The guarantee: however submit/transition/subscribe interleaved,
        # a subscriber of a terminal job holds the terminal notification.
        for job, sub, received in self.subscriptions:
            if job.state in TERMINAL_STATES:
                states = [n["state"] for n in received]
                assert job.state in states, (
                    f"job reached {job.state} but this subscriber never "
                    f"heard of it (saw only {states})"
                )

    @invariant()
    def counts_account_for_every_job(self):
        counts = self.table.counts()
        assert sum(counts.values()) == len(self.model)


JobLifecycleMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)

TestJobLifecycle = JobLifecycleMachine.TestCase
