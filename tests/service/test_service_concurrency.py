"""The service's concurrency contracts, proven end to end over real HTTP.

Three headline guarantees:

* **coalescing** — 8 concurrent identical jobs run exactly one compute
  (pinned by the ``runner.computes`` telemetry counter, which only the
  runner's compute path increments);
* **backpressure** — a WebSocket client that stops reading loses old
  messages (counted) while the producer never blocks;
* **cancellation** — cancelling a job mid-compute answers immediately,
  while the orphaned compute finishes and leaves the cache warm and the
  ledger consistent.

Every test drives a real :class:`SolarCoreService` bound to an ephemeral
port, with the compute gated by the :class:`~tests.service.conftest.GatedCompute`
fake so "mid-compute" is a deterministic place, not a race.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.service.jobs import CANCELLED, DONE, RUNNING
from tests.service.conftest import run_async

SPEC = {"mix": "HM2", "site": "AZ", "month": 7}


async def wait_until(predicate, timeout=10.0, interval=0.005):
    """Poll ``predicate()`` until truthy (or fail the enclosing wait_for)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(interval)


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
def test_eight_concurrent_identical_jobs_run_exactly_one_compute(
    harness_factory, gated_compute
):
    async def main():
        async with harness_factory() as h:
            loop = asyncio.get_running_loop()
            # 8 clients race the same cell; the gate holds the single
            # compute so every submission demonstrably overlaps it.
            submissions = [
                loop.create_task(h.client.submit(dict(SPEC), wait=True))
                for _ in range(8)
            ]
            await loop.run_in_executor(None, gated_compute.started.wait, 10)
            await wait_until(
                lambda: h.service.coalescer.stats()["coalesced"] == 7
            )
            assert h.service.table.counts()[RUNNING] == 8
            gated_compute.release()
            docs = await asyncio.gather(*submissions)

            assert [d["state"] for d in docs] == [DONE] * 8
            # The one compute, attested three independent ways: the fake
            # itself, the loop-side coalescer, and the runner's counter.
            assert gated_compute.calls == 1
            stats = await h.client.stats()
            assert stats["coalesce"]["computed"] == 1
            assert stats["coalesce"]["coalesced"] == 7
            assert stats["counters"]["runner.computes"] == 1
            # Exactly one job started the compute; the other 7 attached.
            assert sum(d["coalesced"] for d in docs) == 7
            # Everyone got the same result payload.
            results = {json.dumps(d["result"], sort_keys=True) for d in docs}
            assert len(results) == 1

    run_async(main())


def test_sequential_resubmission_is_a_memory_cache_hit(
    harness_factory, gated_compute
):
    async def main():
        gated_compute.release()  # no gating needed here
        async with harness_factory() as h:
            first = await h.client.submit(dict(SPEC), wait=True)
            second = await h.client.submit(dict(SPEC), wait=True)
            assert first["state"] == second["state"] == DONE
            assert gated_compute.calls == 1
            assert second["cache_hits"] == 1
            assert second["coalesced"] == 0

    run_async(main())


def test_overlapping_multi_task_jobs_coalesce_per_task(
    harness_factory, gated_compute
):
    async def main():
        async with harness_factory() as h:
            loop = asyncio.get_running_loop()
            a = {"tasks": [dict(SPEC), dict(SPEC, month=1)]}
            b = {"tasks": [dict(SPEC, month=1), dict(SPEC, month=3)]}
            jobs = [
                loop.create_task(h.client.submit(a, wait=True)),
                loop.create_task(h.client.submit(b, wait=True)),
            ]
            await wait_until(
                lambda: h.service.coalescer.stats()["computed"] == 3
            )
            gated_compute.release()
            docs = await asyncio.gather(*jobs)
            assert [d["state"] for d in docs] == [DONE] * 2
            # 4 requested tasks, 3 distinct cells: the shared month-1
            # cell computed once, whichever job got there second attached.
            assert gated_compute.calls == 3
            assert sum(d["coalesced"] for d in docs) == 1

    run_async(main())


def test_distinct_jobs_do_not_coalesce(harness_factory, gated_compute):
    async def main():
        gated_compute.release()
        async with harness_factory() as h:
            await h.client.submit(dict(SPEC), wait=True)
            await h.client.submit(dict(SPEC, month=1), wait=True)
            assert gated_compute.calls == 2
            assert (await h.client.stats())["coalesce"]["coalesced"] == 0

    run_async(main())


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_slow_websocket_client_drops_oldest_and_never_blocks_producer(
    harness_factory,
):
    async def main():
        async with harness_factory(client_queue_size=4) as h:
            ws = await h.client.ws("/ws/telemetry")
            await ws.recv()  # the greeting snapshot; then stop reading

            hub = h.service.stream_hub
            # Publish until backpressure is visible: the pump stalls on
            # the unread socket, the 4-slot queue fills, oldest messages
            # drop.  The loop itself is the "never blocks" proof — each
            # publish is synchronous; a blocking producer would hang here
            # and trip the suite's hard timeout.
            padding = "x" * 65536
            start = time.perf_counter()
            published = 0
            while hub.stats()["drops"] == 0:
                assert published < 2000, "no drops after 2000 publishes"
                for _ in range(25):
                    hub.publish({"type": "pad", "data": padding})
                    published += 1
                await asyncio.sleep(0)  # let the pump run (and stall)
            elapsed = time.perf_counter() - start

            stats = hub.stats()
            assert stats["drops"] > 0
            assert stats["published"] >= published
            # ~publish-rate sanity: pushing into a full bounded queue is
            # a deque rotation, not a wait.
            assert elapsed < 10.0

            # The stuck client costs only itself: the HTTP plane and the
            # job plane still answer immediately.
            assert (await h.client.healthz()) == {"status": "ok"}
            await ws.close()

    run_async(main())


def test_fresh_client_after_slow_one_sees_live_traffic(harness_factory):
    async def main():
        async with harness_factory(client_queue_size=4) as h:
            slow = await h.client.ws("/ws/telemetry")
            await slow.recv()
            # Saturate the slow client far past its queue.
            for i in range(50):
                h.service.stream_hub.publish({"type": "pad", "i": i})
            fresh = await h.client.ws("/ws/telemetry")
            greeting = await fresh.recv()
            assert greeting["type"] == "snapshot"
            h.service.stream_hub.publish({"type": "pad", "i": "new"})
            message = await asyncio.wait_for(fresh.recv(), 5)
            assert message == {"type": "pad", "i": "new"}
            await fresh.close()
            await slow.close()

    run_async(main())


# ----------------------------------------------------------------------
# Cancellation mid-compute
# ----------------------------------------------------------------------
def test_cancel_mid_compute_answers_now_and_still_warms_the_cache(
    harness_factory, gated_compute, tmp_path
):
    async def main():
        async with harness_factory(runs_dir=tmp_path / "runs") as h:
            loop = asyncio.get_running_loop()
            doc = await h.client.submit(dict(SPEC))
            job_id = doc["job_id"]
            ws = await h.client.ws(f"/ws/jobs/{job_id}")
            await loop.run_in_executor(None, gated_compute.started.wait, 10)

            # Cancel while the compute thread is demonstrably inside the
            # simulation.  The API answers immediately — it does not wait
            # for the thread, which cannot be preempted.
            cancel_doc = await h.client.cancel(job_id)
            assert cancel_doc["cancelled"] is True
            assert cancel_doc["state"] == CANCELLED
            assert gated_compute.finished == 0
            states = [m["state"] for m in await ws.drain_until_closed()]
            assert states[-1] == CANCELLED
            await ws.close()

            # The orphaned compute runs to completion and stores its
            # result; cancelling again is a documented no-op.
            assert h.service.coalescer.stats()["orphans"] == 1
            gated_compute.release()
            await wait_until(lambda: gated_compute.finished == 1)
            await wait_until(
                lambda: h.service.coalescer.stats()["inflight"] == 0
            )
            assert (await h.client.cancel(job_id))["cancelled"] is False

            # Cache consistent: the same cell is now a pure memory hit.
            redo = await h.client.submit(dict(SPEC), wait=True)
            assert redo["state"] == DONE
            assert redo["cache_hits"] == 1
            assert gated_compute.calls == 1

            # Ledger consistent: one manifest per terminal job, states
            # and cache tier counts matching what actually happened.
            await wait_until(
                lambda: len(list((tmp_path / "runs").glob("*.json"))) == 2
            )
            manifests = [
                json.loads(p.read_text())
                for p in sorted((tmp_path / "runs").glob("*.json"))
            ]
            by_state = {m["extra"]["state"]: m for m in manifests}
            assert set(by_state) == {CANCELLED, DONE}
            assert by_state[CANCELLED]["extra"]["job_id"] == job_id
            assert by_state[DONE]["extra"]["cache_hits"] == 1
            assert by_state[DONE]["cache"]["computes"] == 1

    run_async(main())


def test_cancel_queued_job_never_computes(harness_factory, gated_compute):
    async def main():
        async with harness_factory() as h:
            # Occupy the single job pipeline deterministically: job A
            # holds the gate, job B targets a *different* cell but we
            # cancel it before releasing anything.
            a = await h.client.submit(dict(SPEC))
            b = await h.client.submit(dict(SPEC, month=2))
            cancel_doc = await h.client.cancel(b["job_id"])
            assert cancel_doc["state"] == CANCELLED
            gated_compute.release()
            done = await h.client.wait_terminal(a["job_id"])
            assert done["state"] == DONE
            # B's cell may have started (its compute was in flight when
            # cancelled -> orphan) or not; either way A computed once
            # and B delivered no result.
            assert (await h.client.job(b["job_id"])).get("result") is None

    run_async(main())


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------
def test_close_with_live_jobs_cancels_them_cleanly(
    harness_factory, gated_compute
):
    async def main():
        h = harness_factory()
        async with h:
            doc = await h.client.submit(dict(SPEC))
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, gated_compute.started.wait, 10)
            gated_compute.release()
        # aclose() transitioned the live job before cancelling its task.
        job = h.service.table.get(doc["job_id"])
        assert job.state == CANCELLED

    run_async(main())
