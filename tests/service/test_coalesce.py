"""The coalescer: exactly-one compute per key, orphans run to completion."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.coalesce import Coalescer
from tests.service.conftest import run_async


class Compute:
    """An awaitable compute the test releases explicitly."""

    def __init__(self, result="R"):
        self.calls = 0
        self.release = asyncio.Event()
        self.result = result

    async def __call__(self):
        self.calls += 1
        await self.release.wait()
        if isinstance(self.result, Exception):
            raise self.result
        return self.result


def test_n_waiters_one_compute():
    async def main():
        coalescer = Coalescer()
        compute = Compute()
        entries = [coalescer.acquire(("k",), compute) for _ in range(8)]
        attached = [a for _entry, a in entries]
        assert attached == [False] + [True] * 7
        waiters = [
            asyncio.create_task(coalescer.wait(entry))
            for entry, _a in entries
        ]
        await asyncio.sleep(0)  # let the drive task start the compute
        compute.release.set()
        results = await asyncio.gather(*waiters)
        assert results == ["R"] * 8
        assert compute.calls == 1
        stats = coalescer.stats()
        assert stats["computed"] == 1
        assert stats["coalesced"] == 7
        assert stats["inflight"] == 0
        assert stats["orphans"] == 0

    run_async(main())


def test_distinct_keys_compute_independently():
    async def main():
        coalescer = Coalescer()
        a, b = Compute("A"), Compute("B")
        entry_a, _ = coalescer.acquire(("a",), a)
        entry_b, _ = coalescer.acquire(("b",), b)
        a.release.set()
        b.release.set()
        results = await asyncio.gather(
            coalescer.wait(entry_a), coalescer.wait(entry_b)
        )
        assert results == ["A", "B"]
        assert coalescer.stats()["computed"] == 2

    run_async(main())


def test_completed_key_is_recomputable():
    async def main():
        coalescer = Coalescer()
        first = Compute("one")
        entry, _ = coalescer.acquire(("k",), first)
        first.release.set()
        assert await coalescer.wait(entry) == "one"
        # The entry is gone; a fresh request computes again (the memory
        # cache, not the coalescer, is responsible for dedup over time).
        second = Compute("two")
        entry2, attached = coalescer.acquire(("k",), second)
        assert attached is False
        second.release.set()
        assert await coalescer.wait(entry2) == "two"
        assert coalescer.stats()["computed"] == 2

    run_async(main())


def test_failures_propagate_to_every_waiter_and_are_not_sticky():
    async def main():
        coalescer = Coalescer()
        failing = Compute(RuntimeError("solver exploded"))
        entries = [coalescer.acquire(("k",), failing) for _ in range(3)]
        waiters = [
            asyncio.create_task(coalescer.wait(entry))
            for entry, _a in entries
        ]
        await asyncio.sleep(0)
        failing.release.set()
        results = await asyncio.gather(*waiters, return_exceptions=True)
        assert all(
            isinstance(r, RuntimeError) and "exploded" in str(r)
            for r in results
        )
        # Not sticky: the failed entry is gone, a retry starts fresh.
        retry = Compute("recovered")
        entry, attached = coalescer.acquire(("k",), retry)
        assert attached is False
        retry.release.set()
        assert await coalescer.wait(entry) == "recovered"

    run_async(main())


def test_cancelled_waiter_detaches_without_stopping_the_compute():
    async def main():
        coalescer = Coalescer()
        compute = Compute()
        entry, _ = coalescer.acquire(("k",), compute)
        entry2, attached = coalescer.acquire(("k",), compute)
        assert attached
        survivor = asyncio.create_task(coalescer.wait(entry))
        victim = asyncio.create_task(coalescer.wait(entry2))
        await asyncio.sleep(0)
        victim.cancel()
        with pytest.raises(asyncio.CancelledError):
            await victim
        # The survivor still gets the result: cancellation detached one
        # waiter, it did not kill the shared compute.
        compute.release.set()
        assert await survivor == "R"
        assert coalescer.stats()["orphans"] == 0

    run_async(main())


def test_fully_orphaned_compute_runs_to_completion():
    finished = asyncio.Event()

    async def main():
        coalescer = Coalescer()

        async def compute():
            await asyncio.sleep(0.01)
            finished.set()
            return "warm"

        entry, _ = coalescer.acquire(("k",), compute)
        waiter = asyncio.create_task(coalescer.wait(entry))
        await asyncio.sleep(0)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        assert coalescer.stats()["orphans"] == 1
        # The orphan keeps running and completes; the cache-warming side
        # effect (in the real service, runner.run_task storing the
        # result) therefore still happens.
        await asyncio.wait_for(finished.wait(), 5)
        await asyncio.sleep(0)  # let _drive clear the entry
        assert coalescer.stats()["inflight"] == 0

    run_async(main())


def test_follower_reelects_when_the_leader_dies():
    # Regression: a follower attached to a compute whose driving task is
    # cancelled (leader death) must not be collateral damage — given a
    # start callable it re-elects and still produces a result.
    async def main():
        coalescer = Coalescer()
        doomed, backup = Compute("never"), Compute("recovered")
        entry, _ = coalescer.acquire(("k",), doomed)
        follower = asyncio.create_task(coalescer.wait(entry, backup))
        await asyncio.sleep(0)  # doomed's drive task starts
        entry.runner_task.cancel()
        await asyncio.sleep(0.01)  # re-election happens
        backup.release.set()
        assert await follower == "recovered"
        stats = coalescer.stats()
        assert stats["reelected"] == 1
        assert stats["computed"] == 2
        assert stats["inflight"] == 0

    run_async(main())


def test_leader_death_without_start_propagates_cancellation():
    async def main():
        coalescer = Coalescer()
        doomed = Compute("never")
        entry, _ = coalescer.acquire(("k",), doomed)
        follower = asyncio.create_task(coalescer.wait(entry))
        await asyncio.sleep(0)
        entry.runner_task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await follower
        assert coalescer.stats()["reelected"] == 0

    run_async(main())


def test_hard_release_cancels_the_compute_instead_of_orphaning():
    async def main():
        coalescer = Coalescer()
        compute = Compute()
        entry, _ = coalescer.acquire(("k",), compute)
        waiter = asyncio.create_task(coalescer.wait(entry, hard=True))
        await asyncio.sleep(0)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        await asyncio.sleep(0.01)
        stats = coalescer.stats()
        assert stats["hard_cancels"] == 1
        assert stats["orphans"] == 0
        assert stats["inflight"] == 0
        # The compute was interrupted, not left running to completion.
        assert not compute.release.is_set()
        assert entry.future.cancelled()

    run_async(main())


def test_orphaned_failure_is_swallowed_not_unraised():
    async def main():
        coalescer = Coalescer()

        async def compute():
            raise RuntimeError("orphan death")

        entry, _ = coalescer.acquire(("k",), compute)
        coalescer.release(entry)  # every waiter gone before it even ran
        await asyncio.sleep(0.01)
        # No 'exception was never retrieved' warning and no crash: the
        # done-callback consumed it.  The entry is cleared.
        assert coalescer.stats()["inflight"] == 0
        assert coalescer.stats()["orphans"] == 1

    run_async(main())
