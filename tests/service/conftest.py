"""Shared machinery for the service concurrency suite.

The container ships no ``pytest-asyncio``, so every async test here is a
plain sync test function that drives its coroutine with
:func:`run_async` — one event loop per test, a hard timeout around the
whole thing so a deadlocked service fails the test instead of hanging
the suite.

The star fixture is :class:`GatedCompute`: a fake
``repro.harness.runner.compute_task`` whose calls *block* on a
threading gate until the test releases them.  Holding N concurrent jobs
mid-compute deterministically is what turns "the coalescer probably
works" into "exactly one compute ran, and here is the counter".
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass

import pytest

from repro.service.app import SolarCoreService
from repro.service.client import ServiceClient

DEFAULT_TIMEOUT_S = 30.0


def run_async(coro, timeout: float = DEFAULT_TIMEOUT_S):
    """Drive ``coro`` on a fresh event loop with a hard overall timeout."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(bounded())


@dataclass(frozen=True)
class FakeDayResult:
    """A tiny picklable, dataclass-shaped stand-in for a day result.

    ``SimulationRunner._freeze`` iterates dataclass fields and
    ``summarize_result`` serializes the scalar ones, so any dataclass
    with scalar fields walks through the whole service stack.
    """

    mix_name: str
    location_code: str
    month: int
    ptp: float = 1234.0
    energy_utilization: float = 0.5


class GatedCompute:
    """A blocking, counting fake ``compute_task``.

    Every call records itself, then waits on the gate.  The test decides
    when computes may finish (:meth:`release`), how many have *started*
    (:attr:`started`), and how many ever ran (:attr:`calls`).
    """

    def __init__(self) -> None:
        self._gate = threading.Event()
        self._lock = threading.Lock()
        self.calls = 0
        self.started = threading.Event()
        self.finished = 0

    def __call__(self, task, config):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self._gate.wait(DEFAULT_TIMEOUT_S), "gate never released"
        result = FakeDayResult(task.mix_name, task.location_code, task.month)
        with self._lock:
            self.finished += 1
        return result

    def release(self) -> None:
        """Let every current and future compute finish."""
        self._gate.set()


@pytest.fixture
def gated_compute(monkeypatch) -> GatedCompute:
    """Replace the real compute with a :class:`GatedCompute` (auto-undone)."""
    fake = GatedCompute()
    monkeypatch.setattr("repro.harness.runner.compute_task", fake)
    return fake


class ServiceHarness:
    """One in-process service plus its client, for ``async with`` tests."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("snapshot_interval_s", 0.0)
        self.service = SolarCoreService(**kwargs)
        self.client: ServiceClient | None = None

    async def __aenter__(self) -> ServiceHarness:
        await self.service.start()
        self.client = ServiceClient(self.service.host, self.service.port)
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.service.aclose()


@pytest.fixture
def harness_factory():
    """``factory(**service_kwargs)`` -> an ``async with``-able harness."""
    return ServiceHarness
