"""Chaos proofs for the durable service.

The durability claims are about *processes dying*, so the core tests here
run real ``repro serve`` subprocesses and ``kill -9`` them mid-job:

* an acknowledged submission survives SIGKILL — the restarted server
  replays the journal, re-enqueues the interrupted job, and finishes it
  without recomputing work the dead process already cached;
* two server processes sharing one cache directory compute a shared key
  exactly once (the cross-process lease, observed end-to-end);
* overload, deadlines, and drain are exercised in-process where the
  :class:`GatedCompute` fixture makes the timing deterministic.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from tests.service.conftest import run_async

SRC = Path(__file__).resolve().parents[2] / "src"

#: The one small cell the chaos test acknowledges as done before the kill.
SMALL = {"mix": "HM2", "site": "AZ", "month": 7}
#: A job wide enough (~32 distinct cells) that SIGKILL lands mid-flight.
#: It *contains* the small cell, so the restarted server can prove it
#: reuses the dead process's cached work instead of recomputing it.
WIDE = {"tasks": [SMALL] + [
    {"mix": "HM2", "site": "AZ", "month": month, "seed": seed}
    for month in (1, 4, 7, 10) for seed in range(8)
]}
WIDE_CELLS = 1 + 4 * 8


def _spawn_server(tmp_path, *extra) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve --port 0 ...``; returns (proc, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=tmp_path, env=env,
    )
    lines = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server died before announcing its port "
                f"(exit {proc.poll()}):\n{''.join(lines)}"
            )
        lines.append(line)
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def _kill(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.wait(timeout=30)


def test_sigkill_mid_job_loses_no_acknowledged_work(tmp_path):
    journal, cache = str(tmp_path / "journal"), str(tmp_path / "cache")
    flags = ("--journal-dir", journal, "--cache-dir", cache)
    proc, port = _spawn_server(tmp_path, *flags)
    try:
        async def before_the_crash():
            client = ServiceClient("127.0.0.1", port)
            done = await client.submit(SMALL, wait=True)
            assert done["state"] == "done"
            wide = await client.submit(WIDE)  # acknowledged: must survive
            while (await client.job(wide["job_id"]))["state"] == "queued":
                await asyncio.sleep(0.005)
            return done["job_id"], wide["job_id"]

        done_id, wide_id = run_async(before_the_crash(), timeout=120)
        os.kill(proc.pid, signal.SIGKILL)  # no drain, no goodbye
    finally:
        _kill(proc)

    proc2, port2 = _spawn_server(tmp_path, *flags)
    try:
        async def after_the_restart():
            client = ServiceClient("127.0.0.1", port2)
            jobs = {doc["job_id"]: doc for doc in await client.jobs()}
            # Zero lost acknowledged jobs: both replayed from the journal.
            assert done_id in jobs and wide_id in jobs
            assert jobs[done_id]["state"] == "done"
            final = await client.wait_terminal(wide_id)
            assert final["state"] == "done"
            return await client.stats()

        stats = run_async(after_the_restart(), timeout=120)
    finally:
        _kill(proc2)

    assert stats["recovery"]["jobs"] == 2
    assert stats["recovery"]["requeued"] == 1
    assert stats["recovery"]["failed"] == 0
    # No duplicate compute: every cell of the recovered job was either a
    # disk hit (work the dead process finished, including the small cell)
    # or computed exactly once here — and at least the acknowledged small
    # cell came from the cache rather than being recomputed.
    counters = stats["counters"]
    computes = counters.get("runner.computes", 0)
    disk_hits = counters.get("runner.disk_hits", 0)
    assert disk_hits >= 1
    assert computes + disk_hits == WIDE_CELLS
    assert computes <= WIDE_CELLS - 1


def test_recover_fail_policy_fails_interrupted_jobs(tmp_path):
    journal, cache = str(tmp_path / "journal"), str(tmp_path / "cache")
    proc, port = _spawn_server(
        tmp_path, "--journal-dir", journal, "--cache-dir", cache
    )
    try:
        async def submit_and_catch_running():
            client = ServiceClient("127.0.0.1", port)
            doc = await client.submit(WIDE)
            while (await client.job(doc["job_id"]))["state"] == "queued":
                await asyncio.sleep(0.005)
            return doc["job_id"]

        job_id = run_async(submit_and_catch_running(), timeout=120)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        _kill(proc)

    proc2, port2 = _spawn_server(
        tmp_path, "--journal-dir", journal, "--cache-dir", cache,
        "--recover", "fail",
    )
    try:
        async def check():
            client = ServiceClient("127.0.0.1", port2)
            doc = await client.job(job_id)
            assert doc["state"] == "failed"
            assert "interrupted by server crash" in doc["error"]
            stats = await client.stats()
            assert stats["recovery"]["failed"] == 1
            assert stats["recovery"]["requeued"] == 0

        run_async(check(), timeout=60)
    finally:
        _kill(proc2)


def test_two_servers_one_cache_dir_compute_a_shared_key_once(tmp_path):
    cache = str(tmp_path / "cache")
    spec = {"mix": "HM2", "site": "AZ", "month": 3}
    proc_a, port_a = _spawn_server(tmp_path, "--cache-dir", cache)
    proc_b = None
    try:
        proc_b, port_b = _spawn_server(tmp_path, "--cache-dir", cache)

        async def race():
            a = ServiceClient("127.0.0.1", port_a)
            b = ServiceClient("127.0.0.1", port_b)
            docs = await asyncio.gather(
                a.submit(spec, wait=True), b.submit(spec, wait=True)
            )
            assert [doc["state"] for doc in docs] == ["done", "done"]
            return await asyncio.gather(a.stats(), b.stats())

        stats_a, stats_b = run_async(race(), timeout=120)
    finally:
        _kill(proc_a)
        if proc_b is not None:
            _kill(proc_b)

    total = sum(
        s["counters"].get("runner.computes", 0) for s in (stats_a, stats_b)
    )
    # Two processes, one cache directory, one key: exactly one compute.
    # The loser either followed the lease or read the finished entry.
    assert total == 1
    reused = sum(
        s["counters"].get("runner.lease_follows", 0)
        + s["counters"].get("runner.disk_hits", 0)
        for s in (stats_a, stats_b)
    )
    assert reused >= 1


# ----------------------------------------------------------------------
# Overload, deadlines, drain — in-process, with deterministic timing
# ----------------------------------------------------------------------
def _cell(month: int) -> dict:
    return {"mix": "HM2", "site": "AZ", "month": month}


def test_overload_answers_429_with_retry_after(gated_compute, harness_factory):
    async def main():
        async with harness_factory(max_queue=2, max_workers=2) as h:
            a = await h.client.submit(_cell(1))
            b = await h.client.submit(_cell(2))
            with pytest.raises(ServiceError) as err:
                await h.client.submit(_cell(3))
            assert err.value.status == 429
            assert err.value.body["code"] == "overloaded"
            assert err.value.body["max_queue"] == 2
            assert err.value.body["live_jobs"] == 2
            assert err.value.retry_after_s is not None
            assert err.value.retry_after_s >= 1

            stats = await h.client.stats()
            assert stats["admission"]["live_jobs"] == 2  # bound held
            assert stats["admission"]["rejected_overload"] == 1

            # Load clearing reopens admission: no sticky overload.
            gated_compute.release()
            await h.client.wait_terminal(a["job_id"])
            await h.client.wait_terminal(b["job_id"])
            c = await h.client.submit(_cell(3))
            done = await h.client.wait_terminal(c["job_id"])
            assert done["state"] == "done"

    run_async(main())


def test_deadline_lands_in_a_terminal_state_with_a_hard_cancel(
    gated_compute, harness_factory
):
    async def main():
        async with harness_factory() as h:
            doc = await h.client.submit(
                {**_cell(1), "deadline_s": 0.15}, wait=True
            )
            assert doc["state"] == "deadline_exceeded"
            assert "deadline" in doc["error"]
            assert doc["deadline_s"] == 0.15
            stats = await h.client.stats()
            assert stats["jobs"]["deadline_exceeded"] == 1
            assert stats["coalesce"]["hard_cancels"] == 1
            gated_compute.release()

            # A met deadline is invisible: the job just finishes.
            ok = await h.client.submit(
                {**_cell(2), "deadline_s": 30.0}, wait=True
            )
            assert ok["state"] == "done"

    run_async(main())


def test_drain_journals_stragglers_fails_readiness_and_says_1001(
    gated_compute, harness_factory, tmp_path
):
    journal_dir = tmp_path / "journal"

    async def main():
        async with harness_factory(
            journal_dir=journal_dir, journal_fsync=False
        ) as h:
            job = await h.client.submit(_cell(1))
            while (await h.client.job(job["job_id"]))["state"] == "queued":
                await asyncio.sleep(0.005)
            ws = await h.client.ws(f"/ws/jobs/{job['job_id']}")

            report = await h.service.drain(timeout=0.1)
            assert report["interrupted"] == 1
            assert report["timed_out"] is True

            # Liveness stays green (do not kill a drainer), readiness fails.
            assert await h.client.healthz() == {"status": "ok"}
            with pytest.raises(ServiceError) as not_ready:
                await h.client.readyz()
            assert not_ready.value.status == 503

            # Admission is closed with an explicit "draining" envelope.
            with pytest.raises(ServiceError) as refused:
                await h.client.submit(_cell(2))
            assert refused.value.status == 503
            assert refused.value.body["code"] == "draining"
            stats = await h.client.stats()
            assert stats["admission"]["rejected_draining"] == 1

            # The subscriber was told to go away, not just dropped.
            await ws.drain_until_closed()
            assert ws.close_code == 1001
            assert "draining" in ws.close_reason

            # The straggler kept its journaled interrupted state.
            doc = await h.client.job(job["job_id"])
            assert doc["state"] == "interrupted"
            gated_compute.release()

        # A successor process recovers the interrupted job and runs it.
        async with harness_factory(
            journal_dir=journal_dir, journal_fsync=False
        ) as successor:
            final = await successor.client.wait_terminal(job["job_id"])
            assert final["state"] == "done"
            stats = await successor.client.stats()
            assert stats["recovery"]["requeued"] == 1

    run_async(main(), timeout=60)


def test_drain_with_no_work_is_quick_and_idempotent(harness_factory):
    async def main():
        async with harness_factory() as h:
            t0 = time.perf_counter()
            report = await h.service.drain(timeout=5.0)
            assert time.perf_counter() - t0 < 1.0  # no jobs: no waiting
            assert report["drained"] == 0
            assert report["interrupted"] == 0
            assert report["timed_out"] is False
            assert await h.service.drain() is report  # idempotent

    run_async(main())
