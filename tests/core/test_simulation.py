"""Unit tests for the day-long co-simulation engine."""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ


@pytest.fixture(scope="module")
def fast_cfg():
    return SolarCoreConfig(step_minutes=5.0)


@pytest.fixture(scope="module")
def az_day(fast_cfg):
    return run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=fast_cfg)


class TestRunDay:
    def test_metadata(self, az_day):
        assert az_day.mix_name == "HM2"
        assert az_day.location_code == "PFCI"
        assert az_day.month == 7
        assert az_day.policy == "MPPT&Opt"

    def test_series_cover_daytime(self, az_day, fast_cfg):
        assert az_day.minutes[0] == 450.0
        assert az_day.step_minutes == fast_cfg.step_minutes
        assert len(az_day.minutes) == len(az_day.consumed_w)

    def test_consumption_bounded_by_budget(self, az_day):
        solar = az_day.on_solar
        assert np.all(az_day.consumed_w[solar] <= az_day.mpp_w[solar] + 1e-6)

    def test_no_solar_consumption_on_utility(self, az_day):
        assert np.all(az_day.consumed_w[~az_day.on_solar] == 0.0)

    def test_energy_utilization_in_range(self, az_day):
        assert 0.5 < az_day.energy_utilization < 1.0

    def test_ptp_counts_solar_instructions(self, az_day):
        assert 0.0 < az_day.retired_ginst_solar <= az_day.retired_ginst_total

    def test_tracking_events_happened(self, az_day):
        assert az_day.tracking_events >= 10

    def test_tracking_error_positive_but_small(self, az_day):
        assert 0.0 < az_day.mean_tracking_error < 0.35

    def test_deterministic(self, fast_cfg):
        a = run_day("L1", PHOENIX_AZ, 1, "MPPT&Opt", config=fast_cfg)
        b = run_day("L1", PHOENIX_AZ, 1, "MPPT&Opt", config=fast_cfg)
        assert a.ptp == b.ptp
        assert np.array_equal(a.consumed_w, b.consumed_w)

    def test_unknown_policy_raises(self, fast_cfg):
        with pytest.raises(KeyError):
            run_day("H1", PHOENIX_AZ, 7, "MPPT&XYZ", config=fast_cfg)

    def test_low_resource_site_uses_more_utility(self, fast_cfg):
        az = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=fast_cfg)
        tn = run_day("HM2", OAK_RIDGE_TN, 1, "MPPT&Opt", config=fast_cfg)
        assert tn.effective_duration_fraction < az.effective_duration_fraction
        assert tn.utility_wh > 0.0


class TestRunDayFixed:
    def test_budget_respected(self, fast_cfg):
        day = run_day_fixed("HM2", PHOENIX_AZ, 7, 100.0, config=fast_cfg)
        solar = day.on_solar
        assert np.all(day.consumed_w[solar] <= 100.0 + 1e-6)

    def test_only_runs_when_panel_covers_budget(self, fast_cfg):
        day = run_day_fixed("HM2", PHOENIX_AZ, 7, 100.0, config=fast_cfg)
        assert np.all(day.mpp_w[day.on_solar] >= 100.0)

    def test_policy_label(self, fast_cfg):
        day = run_day_fixed("HM2", PHOENIX_AZ, 7, 100.0, config=fast_cfg)
        assert day.policy == "Fixed-100W"

    def test_higher_threshold_shorter_duration(self, fast_cfg):
        low = run_day_fixed("HM2", PHOENIX_AZ, 7, 75.0, config=fast_cfg)
        high = run_day_fixed("HM2", PHOENIX_AZ, 7, 125.0, config=fast_cfg)
        assert high.effective_duration_fraction < low.effective_duration_fraction

    def test_infeasible_budget_never_solar(self, fast_cfg):
        day = run_day_fixed("HM2", PHOENIX_AZ, 7, 20.0, config=fast_cfg)
        assert day.effective_duration_fraction == 0.0


class TestRunDayBattery:
    def test_derating_scales_harvest(self, fast_cfg):
        low = run_day_battery("H1", PHOENIX_AZ, 7, 0.81, config=fast_cfg)
        high = run_day_battery("H1", PHOENIX_AZ, 7, 0.92, config=fast_cfg)
        assert high.harvested_wh / low.harvested_wh == pytest.approx(0.92 / 0.81)

    def test_ptp_increases_with_derating(self, fast_cfg):
        low = run_day_battery("H1", PHOENIX_AZ, 7, 0.81, config=fast_cfg)
        high = run_day_battery("H1", PHOENIX_AZ, 7, 0.92, config=fast_cfg)
        assert high.ptp > low.ptp

    def test_energy_accounting_consistent(self, fast_cfg):
        day = run_day_battery("H1", PHOENIX_AZ, 7, 0.92, config=fast_cfg)
        # Full-speed chip draws ~160-190 W; runtime = energy / power.
        assert day.runtime_minutes == pytest.approx(
            day.harvested_wh / 175.0 * 60.0, rel=0.2
        )

    def test_rejects_bad_derating(self, fast_cfg):
        with pytest.raises(ValueError):
            run_day_battery("H1", PHOENIX_AZ, 7, 0.0, config=fast_cfg)
        with pytest.raises(ValueError):
            run_day_battery("H1", PHOENIX_AZ, 7, 1.5, config=fast_cfg)
