"""Unit tests for the SolarCore three-step MPPT controller."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.load_tuning import make_tuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import mix


def make_controller(mix_name="HM2", policy="MPPT&Opt", **config_kwargs):
    array = PVArray()
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(0)
    converter = DCDCConverter()
    config = SolarCoreConfig(**config_kwargs)
    controller = SolarCoreController(
        array, converter, chip, make_tuner(policy, config.enable_pcpg), config
    )
    return controller, chip, converter


class TestTrackingConvergence:
    @pytest.mark.parametrize("irradiance,temp", [(900, 45), (600, 35), (350, 25)])
    def test_tracks_close_to_mpp(self, irradiance, temp):
        controller, chip, _ = make_controller()
        result = controller.track(irradiance, temp, 100.0)
        mpp = find_mpp(controller.array, irradiance, temp)
        # Either the chip saturated below the MPP, or we sit within the
        # margin band below the MPP.
        if result.load_saturated:
            assert result.power_w <= mpp.power + 1e-6
        else:
            assert result.power_w >= mpp.power * 0.80
            assert result.power_w <= mpp.power * 1.001

    def test_demand_respects_margin(self):
        controller, chip, _ = make_controller(power_margin=0.05)
        result = controller.track(700, 40, 100.0)
        if not result.load_saturated:
            demand = chip.total_power_at(100.0)
            assert demand <= result.best_power_w * 1.001

    def test_rail_near_nominal_after_tracking(self):
        controller, chip, _ = make_controller()
        result = controller.track(800, 40, 100.0)
        assert abs(result.rail_voltage - 12.0) < 1.5

    def test_dark_panel_short_circuits(self):
        controller, _, _ = make_controller()
        result = controller.track(0.0, 25.0, 100.0)
        assert result.power_w == 0.0
        assert result.iterations == 0

    def test_saturation_flag_when_panel_exceeds_chip(self):
        # A 4-module array dwarfs the chip's max draw.
        array = PVArray(modules_series=2, modules_parallel=2)
        chip = MultiCoreChip(mix("L1"))
        chip.set_all_levels(0)
        config = SolarCoreConfig()
        controller = SolarCoreController(
            array, DCDCConverter(k_max=20.0), chip, make_tuner("MPPT&Opt"), config
        )
        result = controller.track(1000, 45, 100.0)
        assert result.load_saturated
        assert chip.levels == (chip.table.max_level,) * 8

    def test_tracking_recovers_from_collapsed_branch(self):
        """A deep supply drop must not strand the system near short circuit."""
        controller, chip, converter = make_controller()
        controller.track(950, 45, 100.0)  # tune at high supply
        # Supply collapses; previous k and levels are now far too aggressive.
        result = controller.track(250, 25, 100.0)
        mpp = find_mpp(controller.array, 250, 25)
        assert result.power_w >= mpp.power * 0.5
        assert result.rail_voltage > 8.0


class TestTrackingMechanics:
    def test_iterations_bounded(self):
        controller, _, _ = make_controller(max_track_iterations=5)
        result = controller.track(800, 40, 100.0)
        assert result.iterations <= 5

    def test_k_stays_on_grid_bounds(self):
        controller, _, converter = make_controller()
        controller.track(800, 40, 100.0)
        assert converter.k_min <= converter.k <= converter.k_max

    def test_solve_consistent_with_chip_state(self):
        controller, chip, _ = make_controller()
        controller.track(700, 35, 50.0)
        op = controller.solve(700, 35, 50.0)
        resistance = chip.effective_resistance(50.0)
        assert op.output_current == pytest.approx(
            op.output_voltage / resistance, rel=1e-6
        )

    @pytest.mark.parametrize("policy", ["MPPT&IC", "MPPT&RR", "MPPT&Opt"])
    def test_all_policies_track(self, policy):
        controller, _, _ = make_controller(policy=policy)
        result = controller.track(600, 35, 100.0)
        mpp = find_mpp(controller.array, 600, 35)
        assert result.power_w >= mpp.power * 0.7
