"""Unit tests for multi-day campaigns."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.config import SolarCoreConfig
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(
        "L1",
        [PHOENIX_AZ, OAK_RIDGE_TN],
        months=(7,),
        days_per_cell=3,
        config=SolarCoreConfig(step_minutes=10.0),
    )


class TestRunCampaign:
    def test_cell_grid(self, campaign):
        assert len(campaign.cells) == 2
        assert campaign.cell("PFCI", 7).month == 7
        with pytest.raises(KeyError):
            campaign.cell("PFCI", 4)

    def test_days_per_cell(self, campaign):
        assert all(len(cell.days) == 3 for cell in campaign.cells)
        assert len(campaign.all_days) == 6

    def test_realizations_are_independent(self, campaign):
        ptps = [day.ptp for day in campaign.cell("PFCI", 7).days]
        assert len(set(ptps)) > 1

    def test_deterministic_given_base_seed(self):
        cfg = SolarCoreConfig(step_minutes=10.0)
        a = run_campaign("L1", [PHOENIX_AZ], (7,), 2, config=cfg, base_seed=5)
        b = run_campaign("L1", [PHOENIX_AZ], (7,), 2, config=cfg, base_seed=5)
        assert [d.ptp for d in a.all_days] == [d.ptp for d in b.all_days]

    def test_cell_statistics(self, campaign):
        cell = campaign.cell("PFCI", 7)
        mean = cell.mean("energy_utilization")
        assert 0.5 < mean <= 1.0
        assert cell.std("energy_utilization") >= 0.0
        assert cell.quantile("energy_utilization", 0.0) <= mean

    def test_overall_utilization_between_sites(self, campaign):
        az = campaign.cell("PFCI", 7).mean("energy_utilization")
        tn = campaign.cell("ORNL", 7).mean("energy_utilization")
        assert tn <= campaign.overall_utilization * 1.2
        assert az >= tn

    def test_carbon_report(self, campaign):
        carbon = campaign.carbon()
        assert carbon.solar_kwh > 0.0
        assert carbon.avoided_kg > 0.0
        assert 0.0 < carbon.green_fraction <= 1.0

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            run_campaign("L1", [PHOENIX_AZ], (7,), days_per_cell=0)
