"""Unit tests for the IC / RR / Opt load-adaptation policies."""

import pytest

from repro.core.load_tuning import (
    TUNER_NAMES,
    IndividualCoreTuner,
    OptTuner,
    RoundRobinTuner,
    make_tuner,
)
from repro.multicore.chip import MultiCoreChip
from repro.workloads.mixes import mix


@pytest.fixture
def chip():
    chip = MultiCoreChip(mix("HM2"))
    chip.set_all_levels(0)
    return chip


class TestFactory:
    def test_names(self):
        assert TUNER_NAMES == ("MPPT&IC", "MPPT&RR", "MPPT&Opt")

    def test_case_insensitive(self):
        assert isinstance(make_tuner("mppt&opt"), OptTuner)
        assert isinstance(make_tuner("MPPT&RR"), RoundRobinTuner)
        assert isinstance(make_tuner("MPPT&ic"), IndividualCoreTuner)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_tuner("MPPT&XX")


class TestSingleStepContract:
    """Every increase/decrease moves exactly one core by one level (or one
    gate transition)."""

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_increase_moves_one_step(self, chip, name):
        tuner = make_tuner(name)
        before = chip.levels
        assert tuner.increase(chip, 5.0)
        after = chip.levels
        diffs = [b - a for a, b in zip(before, after)]
        assert sorted(diffs) == [0] * 7 + [1]

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_decrease_moves_one_step(self, chip, name):
        chip.set_all_levels(3)
        tuner = make_tuner(name)
        before = chip.levels
        assert tuner.decrease(chip, 5.0)
        diffs = [a - b for a, b in zip(before, chip.levels)]
        assert sorted(diffs) == [0] * 7 + [1]

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_increase_false_when_saturated(self, chip, name):
        chip.set_all_levels(chip.table.max_level)
        assert not make_tuner(name, allow_gating=False).increase(chip, 5.0)

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_decrease_false_at_floor_without_gating(self, chip, name):
        assert not make_tuner(name, allow_gating=False).decrease(chip, 5.0)


class TestGatingBehaviour:
    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_decrease_gates_below_floor(self, chip, name):
        tuner = make_tuner(name, allow_gating=True)
        assert tuner.decrease(chip, 5.0)
        assert len(chip.active_cores()) == 7

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_never_gates_last_core(self, chip, name):
        tuner = make_tuner(name, allow_gating=True)
        for _ in range(7):
            assert tuner.decrease(chip, 5.0)
        assert not tuner.decrease(chip, 5.0)
        assert len(chip.active_cores()) == 1

    @pytest.mark.parametrize("name", TUNER_NAMES)
    def test_increase_ungates_parked_cores(self, chip, name):
        tuner = make_tuner(name, allow_gating=True)
        chip.cores[5].gate()
        # Raise until every knob is exhausted: the gated core must have come
        # back online along the way (IC only ungates after the active cores
        # saturate; RR/Opt revive it much sooner).
        while tuner.increase(chip, 5.0):
            pass
        assert not chip.cores[5].gated


class TestOptPolicy:
    def test_increase_targets_best_tpr(self, chip):
        from repro.core.tpr import upgrade_tpr

        tprs = {c.core_id: upgrade_tpr(c, 5.0) for c in chip.cores}
        best_id = max(tprs, key=lambda cid: tprs[cid])
        OptTuner().increase(chip, 5.0)
        assert chip.cores[best_id].level == 1

    def test_decrease_targets_worst_tpr(self, chip):
        from repro.core.tpr import downgrade_tpr

        chip.set_all_levels(3)
        tprs = {c.core_id: downgrade_tpr(c, 5.0) for c in chip.cores}
        worst_id = min(tprs, key=lambda cid: tprs[cid])
        OptTuner().decrease(chip, 5.0)
        assert chip.cores[worst_id].level == 2

    def test_repeated_increases_favor_moderate_epi_cores(self, chip):
        """In HM2, the moderate-EPI cores (4-7) should fill up first."""
        tuner = OptTuner()
        for _ in range(8):
            tuner.increase(chip, 5.0)
        moderate_levels = sum(chip.levels[4:])
        high_levels = sum(chip.levels[:4])
        assert moderate_levels > high_levels


class TestRoundRobinPolicy:
    def test_spreads_evenly(self, chip):
        tuner = RoundRobinTuner()
        for _ in range(16):
            tuner.increase(chip, 5.0)
        assert chip.levels == (2,) * 8

    def test_skips_saturated(self, chip):
        chip.cores[0].set_level(chip.table.max_level)
        tuner = RoundRobinTuner()
        for _ in range(7):
            assert tuner.increase(chip, 5.0)
        assert chip.levels[1:] == (1,) * 7


class TestIndividualCorePolicy:
    def test_concentrates_in_first_core(self, chip):
        tuner = IndividualCoreTuner()
        for _ in range(5):
            tuner.increase(chip, 5.0)
        assert chip.levels[0] == 5
        assert chip.levels[1:] == (0,) * 7

    def test_spills_to_next_core(self, chip):
        tuner = IndividualCoreTuner()
        for _ in range(7):
            tuner.increase(chip, 5.0)
        assert chip.levels[0] == 5
        assert chip.levels[1] == 2

    def test_decrease_from_tail(self, chip):
        chip.set_all_levels(3)
        IndividualCoreTuner().decrease(chip, 5.0)
        assert chip.levels == (3,) * 7 + (2,)
