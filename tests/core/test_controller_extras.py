"""Additional controller behaviours: margin override, sensor averaging,
transition accounting."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.load_tuning import make_tuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import mix


def make_controller(config=None, sensor=None):
    chip = MultiCoreChip(mix("HM2"))
    chip.set_all_levels(0)
    cfg = config or SolarCoreConfig()
    controller = SolarCoreController(
        PVArray(), DCDCConverter(), chip, make_tuner("MPPT&Opt"), cfg, sensor
    )
    return controller, chip


class TestMarginOverride:
    def test_override_changes_backoff(self):
        ctl_wide, chip_wide = make_controller()
        ctl_wide.margin_override = 0.15
        ctl_wide.track(700, 40, 100.0)
        demand_wide = chip_wide.total_power_at(100.0)

        ctl_tight, chip_tight = make_controller()
        ctl_tight.margin_override = 0.01
        ctl_tight.track(700, 40, 100.0)
        demand_tight = chip_tight.total_power_at(100.0)

        assert demand_tight > demand_wide

    def test_none_uses_config_margin(self):
        ctl_default, chip_default = make_controller()
        ctl_default.track(700, 40, 100.0)

        ctl_same, chip_same = make_controller()
        ctl_same.margin_override = SolarCoreConfig().power_margin
        ctl_same.track(700, 40, 100.0)

        assert chip_same.total_power_at(100.0) == pytest.approx(
            chip_default.total_power_at(100.0), rel=0.05
        )


class TestSensorAveraging:
    def test_averaged_reads_reduce_noise_impact(self):
        mpp = find_mpp(PVArray(), 700, 40)
        outcomes = {}
        for averaging in (1, 16):
            cfg = SolarCoreConfig(sensor_averaging=averaging)
            sensor = IVSensor(noise_fraction=0.05, seed=11)
            controller, chip = make_controller(cfg, sensor)
            controller.track(700, 40, 100.0)
            outcomes[averaging] = chip.total_power_at(100.0)
        # The burst-averaged controller lands closer to the margin band.
        target = mpp.power * (1.0 - SolarCoreConfig().power_margin)
        assert abs(outcomes[16] - target) <= abs(outcomes[1] - target) + 3.0


class TestTransitionAccounting:
    def test_tracking_counts_transitions(self):
        controller, chip = make_controller()
        before = chip.total_transitions  # setup itself moved levels
        controller.track(700, 40, 100.0)
        assert chip.total_transitions > before
        assert chip.total_transition_volts > 0.0

    def test_same_level_set_is_free(self):
        _, chip = make_controller()
        before = chip.total_transitions
        chip.cores[0].set_level(chip.cores[0].level)
        assert chip.total_transitions == before
