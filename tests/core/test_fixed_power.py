"""Unit tests for the Fixed-Power budget allocator."""

import pytest

from repro.core.fixed_power import allocate_budget, lp_allocation_bound
from repro.multicore.chip import MultiCoreChip
from repro.workloads.mixes import mix


@pytest.fixture
def chip():
    return MultiCoreChip(mix("HM2"))


class TestAllocateBudget:
    def test_respects_budget(self, chip):
        power = allocate_budget(chip, 100.0, 10.0)
        assert power <= 100.0
        assert chip.total_power_at(10.0) == pytest.approx(power)

    def test_greedy_fills_headroom(self, chip):
        """No single remaining upgrade may still fit under the budget."""
        budget = 100.0
        power = allocate_budget(chip, budget, 10.0)
        for core in chip.cores:
            if core.level < chip.table.max_level:
                delta = (
                    core.power_at_level(core.level + 1, 10.0) - core.power_at(10.0)
                )
                assert power + delta > budget

    def test_large_budget_maxes_all_cores(self, chip):
        allocate_budget(chip, 1000.0, 10.0)
        assert chip.levels == (chip.table.max_level,) * 8

    def test_small_budget_gates_cores(self, chip):
        floor_all = chip.min_power_at(10.0)
        power = allocate_budget(chip, floor_all - 5.0, 10.0, allow_gating=True)
        assert power <= floor_all - 5.0
        assert len(chip.active_cores()) < 8

    def test_infeasible_budget_raises(self, chip):
        with pytest.raises(ValueError, match="below the chip's floor"):
            allocate_budget(chip, 10.0, 10.0, allow_gating=True)

    def test_no_gating_raises_below_floor(self, chip):
        floor_all = chip.min_power_at(10.0)
        with pytest.raises(ValueError):
            allocate_budget(chip, floor_all - 5.0, 10.0, allow_gating=False)

    def test_higher_budget_higher_throughput(self, chip):
        allocate_budget(chip, 90.0, 10.0)
        t_low = chip.total_throughput_at(10.0)
        allocate_budget(chip, 140.0, 10.0)
        t_high = chip.total_throughput_at(10.0)
        assert t_high > t_low


class TestLPBound:
    def test_upper_bounds_greedy(self, chip):
        for budget in (90.0, 110.0, 140.0):
            bound = lp_allocation_bound(chip, budget, 10.0)
            allocate_budget(chip, budget, 10.0)
            greedy = chip.total_throughput_at(10.0)
            assert greedy <= bound + 1e-6

    def test_greedy_near_optimal(self, chip):
        """The TPR-greedy discrete allocation sits within a few percent of
        the LP relaxation (the paper's ref [15] approach)."""
        budget = 120.0
        bound = lp_allocation_bound(chip, budget, 10.0)
        allocate_budget(chip, budget, 10.0)
        assert chip.total_throughput_at(10.0) >= 0.93 * bound

    def test_lp_does_not_mutate_chip(self, chip):
        chip.set_all_levels(3)
        lp_allocation_bound(chip, 100.0, 10.0)
        assert chip.levels == (3,) * 8
