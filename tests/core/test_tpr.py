"""Unit tests for throughput-power-ratio optimization."""

import pytest

from repro.core.tpr import (
    best_downgrade_core,
    best_upgrade_core,
    build_allocation_table,
    downgrade_tpr,
    upgrade_tpr,
)
from repro.multicore.chip import MultiCoreChip
from repro.workloads.mixes import mix


@pytest.fixture
def chip():
    chip = MultiCoreChip(mix("HM2"))
    chip.set_all_levels(2)
    return chip


class TestUpgradeTPR:
    def test_none_at_top_level(self, chip):
        chip.cores[0].set_level(chip.table.max_level)
        assert upgrade_tpr(chip.cores[0], 5.0) is None

    def test_none_when_gated(self, chip):
        chip.cores[0].gate()
        assert upgrade_tpr(chip.cores[0], 5.0) is None

    def test_positive_for_active_core(self, chip):
        assert upgrade_tpr(chip.cores[0], 5.0) > 0.0

    def test_matches_finite_difference(self, chip):
        core = chip.cores[0]
        expected = (
            core.throughput_at_level(3, 5.0) - core.throughput_at_level(2, 5.0)
        ) / (core.power_at_level(3, 5.0) - core.power_at_level(2, 5.0))
        assert upgrade_tpr(core, 5.0) == pytest.approx(expected)

    def test_decreases_with_level(self, chip):
        """Paper Section 6.4: performance return decreases toward high V/F."""
        core = chip.cores[0]
        tprs = []
        for level in range(chip.table.max_level):
            core.set_level(level)
            tprs.append(upgrade_tpr(core, 5.0))
        assert all(b < a for a, b in zip(tprs, tprs[1:]))

    def test_low_epi_core_wins(self, chip):
        """At equal levels, low-EPI programs buy more throughput per watt."""
        gcc_core = chip.cores[4]  # gcc (moderate EPI)
        art_core = chip.cores[2]  # art (high EPI)
        assert upgrade_tpr(gcc_core, 5.0) > upgrade_tpr(art_core, 5.0)


class TestDowngradeTPR:
    def test_none_at_bottom_level(self, chip):
        chip.cores[0].set_level(0)
        assert downgrade_tpr(chip.cores[0], 5.0) is None

    def test_matches_upgrade_from_below(self, chip):
        core = chip.cores[0]
        core.set_level(3)
        down = downgrade_tpr(core, 5.0)
        core.set_level(2)
        up = upgrade_tpr(core, 5.0)
        assert down == pytest.approx(up)


class TestSelection:
    def test_best_upgrade_maximizes(self, chip):
        best = best_upgrade_core(chip, 5.0)
        best_tpr = upgrade_tpr(best, 5.0)
        for core in chip.cores:
            tpr = upgrade_tpr(core, 5.0)
            if tpr is not None:
                assert tpr <= best_tpr

    def test_best_downgrade_minimizes(self, chip):
        best = best_downgrade_core(chip, 5.0)
        best_tpr = downgrade_tpr(best, 5.0)
        for core in chip.cores:
            tpr = downgrade_tpr(core, 5.0)
            if tpr is not None:
                assert tpr >= best_tpr

    def test_no_candidates_returns_none(self, chip):
        chip.set_all_levels(chip.table.max_level)
        assert best_upgrade_core(chip, 5.0) is None
        chip.set_all_levels(0)
        assert best_downgrade_core(chip, 5.0) is None


class TestAllocationTable:
    def test_sorted_descending_by_upgrade(self, chip):
        table = build_allocation_table(chip, 5.0)
        upgrades = [e.upgrade for e in table if e.upgrade is not None]
        assert upgrades == sorted(upgrades, reverse=True)

    def test_one_entry_per_core(self, chip):
        table = build_allocation_table(chip, 5.0)
        assert sorted(e.core_id for e in table) == list(range(8))

    def test_saturated_cores_sort_last(self, chip):
        chip.cores[3].set_level(chip.table.max_level)
        table = build_allocation_table(chip, 5.0)
        assert table[-1].core_id == 3
