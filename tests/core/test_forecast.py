"""Unit tests for the supply forecaster."""

import pytest

from repro.core.forecast import SupplyPredictor


class TestObservation:
    def test_window_bounded(self):
        predictor = SupplyPredictor(window=5)
        for minute in range(20):
            predictor.observe(float(minute), 100.0)
        assert predictor.n_samples == 5

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            SupplyPredictor().observe(0.0, -1.0)

    @pytest.mark.parametrize("kwargs", [
        {"window": 2},
        {"volatility_weight": -1.0},
    ])
    def test_rejects_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            SupplyPredictor(**kwargs)


class TestPrediction:
    def test_none_until_warm(self):
        predictor = SupplyPredictor()
        predictor.observe(0.0, 100.0)
        predictor.observe(1.0, 100.0)
        assert predictor.predicted_drop_fraction(10.0) is None

    def test_steady_supply_predicts_no_drop(self):
        predictor = SupplyPredictor(volatility_weight=1.0)
        for minute in range(10):
            predictor.observe(float(minute), 100.0)
        assert predictor.predicted_drop_fraction(10.0) == pytest.approx(0.0, abs=1e-9)

    def test_falling_supply_predicts_drop(self):
        predictor = SupplyPredictor()
        for minute in range(10):
            predictor.observe(float(minute), 100.0 - 2.0 * minute)
        # Slope -2 W/min over a 10-min horizon: ~20 W off ~82 W current.
        drop = predictor.predicted_drop_fraction(10.0)
        assert drop == pytest.approx(20.0 / 82.0, rel=0.1)

    def test_rising_supply_predicts_no_trend_drop(self):
        predictor = SupplyPredictor(volatility_weight=0.0)
        for minute in range(10):
            predictor.observe(float(minute), 50.0 + 3.0 * minute)
        assert predictor.predicted_drop_fraction(10.0) == pytest.approx(0.0, abs=1e-9)

    def test_volatility_adds_to_drop(self):
        calm = SupplyPredictor()
        noisy = SupplyPredictor()
        values = [100, 100, 100, 100, 100, 100]
        jitter = [100, 70, 115, 80, 120, 75]
        for minute, (a, b) in enumerate(zip(values, jitter)):
            calm.observe(float(minute), float(a))
            noisy.observe(float(minute), float(b))
        assert noisy.predicted_drop_fraction(10.0) > calm.predicted_drop_fraction(10.0)

    def test_dead_panel_full_drop(self):
        predictor = SupplyPredictor()
        for minute in range(5):
            predictor.observe(float(minute), max(0.0, 10.0 - 5.0 * minute))
        assert predictor.predicted_drop_fraction(10.0) == 1.0


class TestAdaptiveMargin:
    def test_clamped_to_bounds(self):
        predictor = SupplyPredictor()
        for minute in range(10):
            predictor.observe(float(minute), 100.0 - 9.0 * minute)  # crashing
        margin = predictor.adaptive_margin(10.0, floor=0.01, ceiling=0.05)
        assert margin == 0.05

    def test_calm_day_hits_floor(self):
        predictor = SupplyPredictor()
        for minute in range(10):
            predictor.observe(float(minute), 100.0)
        assert predictor.adaptive_margin(10.0, 0.01, 0.05) == 0.01

    def test_cold_start_is_conservative(self):
        predictor = SupplyPredictor()
        assert predictor.adaptive_margin(10.0, 0.01, 0.05) == 0.05

    def test_reset_clears(self):
        predictor = SupplyPredictor()
        for minute in range(10):
            predictor.observe(float(minute), 100.0)
        predictor.reset()
        assert predictor.n_samples == 0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SupplyPredictor().adaptive_margin(10.0, floor=0.1, ceiling=0.05)
