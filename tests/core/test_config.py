"""Unit tests for SolarCoreConfig validation."""

import pytest

from repro.core.config import SolarCoreConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SolarCoreConfig()
        assert cfg.rail_voltage == 12.0
        assert cfg.tracking_interval_min == 10.0
        assert cfg.supply_change_fraction is None
        assert cfg.enable_pcpg

    def test_frozen(self):
        cfg = SolarCoreConfig()
        with pytest.raises(AttributeError):
            cfg.rail_voltage = 5.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rail_voltage": 0.0},
        {"rail_tolerance_v": 0.0},
        {"tracking_interval_min": 0.0},
        {"power_margin": -0.1},
        {"power_margin": 0.5},
        {"step_minutes": 0.0},
        {"max_track_iterations": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SolarCoreConfig(**kwargs)
