"""Unit tests for tracking-error metrics."""

import numpy as np
import pytest

from repro.core.simulation import DayResult
from repro.metrics.tracking import (
    relative_tracking_error,
    summarize_errors,
    tracking_error_table,
)


def fake_day(budget, actual, location="PFCI", month=1, mix_name="H1") -> DayResult:
    budget = np.asarray(budget, dtype=float)
    actual = np.asarray(actual, dtype=float)
    n = len(budget)
    return DayResult(
        mix_name=mix_name,
        location_code=location,
        month=month,
        policy="test",
        minutes=np.arange(n, dtype=float),
        mpp_w=budget,
        consumed_w=actual,
        throughput_gips=np.full(n, 5.0),
        on_solar=np.full(n, True),
        retired_ginst_solar=1.0,
        retired_ginst_total=1.0,
        utility_wh=0.0,
    )


class TestRelativeError:
    def test_exact_tracking_zero_error(self):
        day = fake_day([100, 100], [100, 100])
        assert relative_tracking_error(day) == 0.0

    def test_known_error(self):
        day = fake_day([100, 100], [90, 110])
        assert relative_tracking_error(day) == pytest.approx(0.1)

    def test_symmetric_in_sign(self):
        under = fake_day([100], [80])
        over = fake_day([100], [120])
        assert relative_tracking_error(under) == relative_tracking_error(over)


class TestErrorTable:
    def test_keys(self):
        days = [
            fake_day([100], [90], "PFCI", 1, "H1"),
            fake_day([100], [95], "BMS", 7, "L1"),
        ]
        table = tracking_error_table(days)
        assert table[("PFCI", 1, "H1")] == pytest.approx(0.1)
        assert table[("BMS", 7, "L1")] == pytest.approx(0.05)

    def test_duplicate_raises(self):
        days = [fake_day([100], [90]), fake_day([100], [95])]
        with pytest.raises(ValueError, match="duplicate"):
            tracking_error_table(days)


class TestSummarize:
    def test_summary(self):
        summary = summarize_errors([0.1, 0.2, 0.3])
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_errors([])
