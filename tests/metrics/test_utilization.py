"""Unit tests for utilization aggregation."""

import numpy as np
import pytest

from repro.core.simulation import DayResult
from repro.metrics.utilization import (
    DURATION_BUCKETS,
    bucket_by_duration,
    mean_effective_duration,
    mean_utilization,
)


def fake_day(mpp: float, consumed: float, solar_fraction: float = 1.0) -> DayResult:
    n = 10
    on_solar = np.arange(n) < int(round(solar_fraction * n))
    return DayResult(
        mix_name="H1",
        location_code="PFCI",
        month=1,
        policy="test",
        minutes=np.arange(n, dtype=float),
        mpp_w=np.full(n, mpp),
        consumed_w=np.where(on_solar, consumed, 0.0),
        throughput_gips=np.full(n, 5.0),
        on_solar=on_solar,
        retired_ginst_solar=1.0,
        retired_ginst_total=1.0,
        utility_wh=0.0,
    )


class TestMeanUtilization:
    def test_single_day(self):
        day = fake_day(100.0, 85.0)
        assert mean_utilization([day]) == pytest.approx(0.85)

    def test_energy_weighted(self):
        sunny = fake_day(200.0, 200.0)  # utilization 1.0, twice the energy
        cloudy = fake_day(100.0, 40.0)  # utilization 0.4
        # (2000 + 400) / (2000 + 1000) = 0.8
        assert mean_utilization([sunny, cloudy]) == pytest.approx(0.8)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_utilization([])


class TestEffectiveDuration:
    def test_mean(self):
        days = [fake_day(100, 90, 0.5), fake_day(100, 90, 1.0)]
        assert mean_effective_duration(days) == pytest.approx(0.75)


class TestBuckets:
    def test_assignment(self):
        day_high = fake_day(100, 90, 1.0)  # duration 1.0 -> (0.9, 1.01)
        day_mid = fake_day(100, 90, 0.72)  # 7/10 samples -> (0.7, 0.8)
        buckets = bucket_by_duration([day_high, day_mid])
        assert day_high in buckets[(0.9, 1.01)]
        assert day_mid in buckets[(0.7, 0.8)]

    def test_below_lowest_dropped(self):
        day = fake_day(100, 90, 0.3)
        buckets = bucket_by_duration([day])
        assert all(day not in days for days in buckets.values())

    def test_bucket_edges_cover_paper_figure(self):
        assert DURATION_BUCKETS[0] == (0.9, 1.01)
        assert DURATION_BUCKETS[-1] == (0.5, 0.6)
