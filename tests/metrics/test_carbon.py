"""Unit tests for carbon-footprint accounting."""

import numpy as np
import pytest

from repro.core.simulation import DayResult
from repro.metrics.carbon import (
    GRID_INTENSITY_KG_PER_KWH,
    carbon_report,
)


def fake_day(solar_wh: float, utility_wh: float, location="PFCI") -> DayResult:
    n = 4
    # consumed_w chosen so solar_used_wh matches the requested energy:
    # n-steps of 1 minute each -> wh = sum(w)/60.
    per_step_w = solar_wh * 60.0 / n
    return DayResult(
        mix_name="H1",
        location_code=location,
        month=1,
        policy="test",
        minutes=np.arange(n, dtype=float),
        mpp_w=np.full(n, per_step_w + 1.0),
        consumed_w=np.full(n, per_step_w),
        throughput_gips=np.full(n, 5.0),
        on_solar=np.full(n, True),
        retired_ginst_solar=1.0,
        retired_ginst_total=1.0,
        utility_wh=utility_wh,
    )


class TestCarbonReport:
    def test_energy_split(self):
        report = carbon_report([fake_day(500.0, 250.0)])
        assert report.solar_kwh == pytest.approx(0.5)
        assert report.utility_kwh == pytest.approx(0.25)

    def test_regional_intensity_applied(self):
        az = carbon_report([fake_day(1000.0, 0.0, "PFCI")])
        co = carbon_report([fake_day(1000.0, 0.0, "BMS")])
        assert az.avoided_kg == pytest.approx(GRID_INTENSITY_KG_PER_KWH["PFCI"])
        assert co.avoided_kg == pytest.approx(GRID_INTENSITY_KG_PER_KWH["BMS"])
        # Coal-heavy Colorado grid: more carbon avoided per solar kWh.
        assert co.avoided_kg > az.avoided_kg

    def test_intensity_override(self):
        report = carbon_report([fake_day(1000.0, 1000.0)], intensity_kg_per_kwh=0.5)
        assert report.avoided_kg == pytest.approx(0.5)
        assert report.emitted_kg == pytest.approx(0.5)

    def test_fractions(self):
        report = carbon_report([fake_day(750.0, 250.0)], intensity_kg_per_kwh=1.0)
        assert report.green_fraction == pytest.approx(0.75)
        assert report.reduction_fraction == pytest.approx(0.75)

    def test_aggregates_multiple_days(self):
        report = carbon_report(
            [fake_day(500.0, 100.0), fake_day(300.0, 200.0)],
            intensity_kg_per_kwh=1.0,
        )
        assert report.solar_kwh == pytest.approx(0.8)
        assert report.utility_kwh == pytest.approx(0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            carbon_report([])

    def test_all_grid_day(self):
        report = carbon_report([fake_day(0.0, 500.0)])
        assert report.green_fraction == 0.0
        assert report.reduction_fraction == 0.0
