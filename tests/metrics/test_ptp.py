"""Unit tests for PTP aggregation."""

import numpy as np
import pytest

from repro.core.simulation import DayResult
from repro.metrics.ptp import geometric_mean, normalized_ptp, ptp_of


def fake_day(ptp: float) -> DayResult:
    n = 4
    return DayResult(
        mix_name="H1",
        location_code="PFCI",
        month=1,
        policy="test",
        minutes=np.arange(n, dtype=float),
        mpp_w=np.full(n, 100.0),
        consumed_w=np.full(n, 90.0),
        throughput_gips=np.full(n, 5.0),
        on_solar=np.full(n, True),
        retired_ginst_solar=ptp,
        retired_ginst_total=ptp,
        utility_wh=0.0,
    )


class TestNormalizedPTP:
    def test_normalizes_to_baseline(self):
        results = {"a": fake_day(100.0), "base": fake_day(50.0)}
        normed = normalized_ptp(results, "base")
        assert normed["a"] == pytest.approx(2.0)
        assert normed["base"] == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            normalized_ptp({"a": fake_day(1.0)}, "base")

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            normalized_ptp({"base": fake_day(0.0)}, "base")


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


def test_ptp_of_passthrough():
    assert ptp_of(fake_day(42.0)) == 42.0
