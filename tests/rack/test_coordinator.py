"""Unit tests for rack budget division."""

import pytest

from repro.multicore.chip import MultiCoreChip
from repro.rack.coordinator import DIVISION_POLICIES, divide_budget
from repro.workloads.mixes import mix


@pytest.fixture
def chips():
    return [
        MultiCoreChip(mix("H1"), seed=1),
        MultiCoreChip(mix("L1"), seed=2),
        MultiCoreChip(mix("HM2"), seed=3),
    ]


class TestDivideBudget:
    @pytest.mark.parametrize("policy", DIVISION_POLICIES)
    def test_shares_sum_to_at_most_budget(self, chips, policy):
        budget = 350.0
        shares = divide_budget(chips, budget, 10.0, policy)
        assert sum(shares) <= budget + 1e-6

    @pytest.mark.parametrize("policy", DIVISION_POLICIES)
    def test_shares_cover_floors(self, chips, policy):
        budget = 350.0
        shares = divide_budget(chips, budget, 10.0, policy)
        for chip, share in zip(chips, shares):
            assert share >= chip.floor_power_at(10.0) - 1e-6

    def test_budget_below_floors_returns_zeros(self, chips):
        shares = divide_budget(chips, 50.0, 10.0, "equal")
        assert shares == [0.0, 0.0, 0.0]

    def test_equal_policy_splits_surplus_evenly(self, chips):
        budget = 400.0
        shares = divide_budget(chips, budget, 10.0, "equal")
        floors = [c.floor_power_at(10.0) for c in chips]
        surpluses = [s - f for s, f in zip(shares, floors)]
        assert max(surpluses) - min(surpluses) < 1e-6

    def test_tpr_policy_favors_efficient_chip(self, chips):
        """At a constrained budget, the low-EPI chip (index 1) gets the
        largest share beyond its floor."""
        budget = 300.0
        shares = divide_budget(chips, budget, 10.0, "tpr")
        floors = [c.floor_power_at(10.0) for c in chips]
        surpluses = [s - f for s, f in zip(shares, floors)]
        assert surpluses[1] == max(surpluses)

    def test_tpr_division_does_not_mutate_chips(self, chips):
        for chip in chips:
            chip.set_all_levels(3)
        levels_before = [chip.levels for chip in chips]
        divide_budget(chips, 300.0, 10.0, "tpr")
        assert [chip.levels for chip in chips] == levels_before

    def test_unknown_policy_raises(self, chips):
        with pytest.raises(KeyError):
            divide_budget(chips, 300.0, 10.0, "random")

    def test_empty_rack_raises(self):
        with pytest.raises(ValueError):
            divide_budget([], 300.0, 10.0)
