"""Integration tests for the rack day simulation."""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.rack.simulation import run_day_rack


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


@pytest.fixture(scope="module")
def rack_day(cfg):
    return run_day_rack(("H1", "L1", "ML2"), PHOENIX_AZ, 7, "tpr", config=cfg)


class TestRackDay:
    def test_consumption_bounded_by_farm(self, rack_day):
        solar = rack_day.on_solar
        assert np.all(rack_day.consumed_w[solar] <= rack_day.mpp_w[solar] + 1e-6)

    def test_per_chip_accounting(self, rack_day):
        assert len(rack_day.retired_ginst) == 3
        assert all(r > 0 for r in rack_day.retired_ginst)
        assert rack_day.total_ptp == pytest.approx(sum(rack_day.retired_ginst))

    def test_utilization_plausible(self, rack_day):
        assert 0.5 < rack_day.energy_utilization <= 1.0

    def test_tpr_beats_equal_division(self, cfg):
        mixes = ("H1", "L1", "ML2")
        equal = run_day_rack(mixes, PHOENIX_AZ, 7, "equal", config=cfg)
        tpr = run_day_rack(mixes, PHOENIX_AZ, 7, "tpr", config=cfg)
        assert tpr.total_ptp > equal.total_ptp

    def test_low_sun_site_falls_back(self, cfg):
        day = run_day_rack(("H1", "L1"), OAK_RIDGE_TN, 1, "tpr", config=cfg)
        assert day.effective_duration_fraction < 1.0

    def test_empty_rack_rejected(self, cfg):
        with pytest.raises(ValueError):
            run_day_rack((), PHOENIX_AZ, 7, config=cfg)

    def test_metadata(self, rack_day):
        assert rack_day.mix_names == ("H1", "L1", "ML2")
        assert rack_day.policy == "tpr"
        assert rack_day.location_code == "PFCI"
