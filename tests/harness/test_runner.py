"""Unit tests for the caching simulation runner."""

import dataclasses

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.runner import SimulationRunner, _config_key


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(SolarCoreConfig(step_minutes=10.0))


class TestCaching:
    def test_day_cached(self, runner):
        a = runner.day("L1", "AZ", 7, "MPPT&Opt")
        n = runner.cached_runs
        b = runner.day("L1", "AZ", 7, "MPPT&Opt")
        assert a is b
        assert runner.cached_runs == n

    def test_distinct_keys_distinct_runs(self, runner):
        a = runner.day("L1", "AZ", 7, "MPPT&Opt")
        b = runner.day("L1", "AZ", 7, "MPPT&RR")
        assert a is not b

    def test_fixed_cached(self, runner):
        a = runner.fixed_day("L1", "AZ", 7, 100.0)
        b = runner.fixed_day("L1", "AZ", 7, 100.0)
        assert a is b

    def test_battery_cached(self, runner):
        a = runner.battery_day("L1", "AZ", 7, 0.81)
        b = runner.battery_day("L1", "AZ", 7, 0.81)
        assert a is b

    def test_accepts_location_objects(self, runner):
        from repro.environment.locations import PHOENIX_AZ

        assert runner.day("L1", PHOENIX_AZ, 7) is runner.day("L1", "AZ", 7)


class TestSharedResultsAreReadOnly:
    def test_cached_arrays_reject_writes(self, runner):
        """Regression: a caller normalizing a cached series in place must
        fail instead of corrupting the result every later caller sees."""
        day = runner.day("L1", "AZ", 7, "MPPT&Opt")
        for name in ("minutes", "mpp_w", "consumed_w", "throughput_gips", "on_solar"):
            arr = getattr(day, name)
            assert not arr.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                arr[0] = arr[0]

    def test_fixed_day_arrays_frozen_too(self, runner):
        """Regression: _freeze must cover fixed-budget runs — every array,
        not just the plain policy-day fields."""
        day = runner.fixed_day("L1", "AZ", 7, 100.0)
        for name in ("minutes", "mpp_w", "consumed_w", "throughput_gips", "on_solar"):
            arr = getattr(day, name)
            assert not arr.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                arr[0] = arr[0]

    def test_cached_battery_results_reject_mutation(self, runner):
        """Regression: cached battery results are shared too; mutating any
        field of one must raise instead of corrupting later callers."""
        day = runner.battery_day("L1", "AZ", 7, 0.81)
        for f in dataclasses.fields(day):
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(day, f.name, getattr(day, f.name))

    def test_freeze_covers_every_array_field(self, runner):
        """_freeze discovers arrays by field introspection, so a DayResult
        gaining a new series stays covered without editing a name list."""
        import numpy as np

        day = runner.day("L1", "AZ", 7)
        arrays = [
            getattr(day, f.name)
            for f in dataclasses.fields(day)
            if isinstance(getattr(day, f.name), np.ndarray)
        ]
        assert arrays, "DayResult lost its array fields?"
        assert all(not arr.flags.writeable for arr in arrays)


class TestStats:
    def test_counts_hits_and_misses(self):
        r = SimulationRunner(SolarCoreConfig(step_minutes=10.0))
        assert r.stats() == {
            "hits": 0, "misses": 0, "cached_runs": 0, "hit_rate": 0.0,
        }
        r.day("L1", "AZ", 7)
        r.day("L1", "AZ", 7)
        r.day("L1", "AZ", 7)
        stats = r.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["cached_runs"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_telemetry_counters_track_cache_traffic(self):
        from repro.telemetry import telemetry_session

        r = SimulationRunner(SolarCoreConfig(step_minutes=10.0))
        with telemetry_session() as hub:
            r.day("L1", "AZ", 7)
            r.day("L1", "AZ", 7)
            counters = hub.snapshot()["counters"]
        assert counters["runner.cache_misses"] == 1
        assert counters["runner.cache_hits"] == 1


class TestConfigKey:
    def test_distinct_configs_distinct_keys(self):
        a = _config_key(SolarCoreConfig(step_minutes=1.0))
        b = _config_key(SolarCoreConfig(step_minutes=5.0))
        assert a != b
        assert hash(a) != hash(b)

    def test_unhashable_field_fails_loudly(self):
        """Regression: an unhashable config field must raise a TypeError
        naming the field, not a bare 'unhashable type' in a dict lookup."""
        cfg = SolarCoreConfig()
        bad = dataclasses.replace(cfg)
        object.__setattr__(bad, "step_minutes", [1.0])  # frozen dataclass
        with pytest.raises(TypeError, match="SolarCoreConfig.step_minutes"):
            _config_key(bad)
