"""Unit tests for the caching simulation runner."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.runner import SimulationRunner


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(SolarCoreConfig(step_minutes=10.0))


class TestCaching:
    def test_day_cached(self, runner):
        a = runner.day("L1", "AZ", 7, "MPPT&Opt")
        n = runner.cached_runs
        b = runner.day("L1", "AZ", 7, "MPPT&Opt")
        assert a is b
        assert runner.cached_runs == n

    def test_distinct_keys_distinct_runs(self, runner):
        a = runner.day("L1", "AZ", 7, "MPPT&Opt")
        b = runner.day("L1", "AZ", 7, "MPPT&RR")
        assert a is not b

    def test_fixed_cached(self, runner):
        a = runner.fixed_day("L1", "AZ", 7, 100.0)
        b = runner.fixed_day("L1", "AZ", 7, 100.0)
        assert a is b

    def test_battery_cached(self, runner):
        a = runner.battery_day("L1", "AZ", 7, 0.81)
        b = runner.battery_day("L1", "AZ", 7, 0.81)
        assert a is b

    def test_accepts_location_objects(self, runner):
        from repro.environment.locations import PHOENIX_AZ

        assert runner.day("L1", PHOENIX_AZ, 7) is runner.day("L1", "AZ", 7)
