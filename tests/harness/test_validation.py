"""The MPPT validation gate (the paper's Simulink-check equivalent)."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.validation import ValidationCase, validate_mppt


class TestValidateMPPT:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_mppt(mixes=("L1", "HM2"), policies=("MPPT&Opt",))

    def test_all_invariants_hold(self, report):
        assert report.all_pass, [
            (c.mix_name, c.irradiance, c.efficiency) for c in report.failures
        ]

    def test_case_count(self, report):
        assert len(report.cases) == 2 * 7  # mixes x conditions

    def test_mean_efficiency_in_margin_band(self, report):
        # Margin 5% + quantization: mean lands ~88-96% of MPP.
        assert 0.85 < report.mean_efficiency <= 1.0

    def test_all_policies_validate(self):
        report = validate_mppt(
            mixes=("HM2",),
            policies=("MPPT&IC", "MPPT&RR", "MPPT&Opt"),
            conditions=((800.0, 45.0), (400.0, 30.0)),
        )
        assert report.all_pass


class TestValidationCase:
    def make_case(self, **overrides) -> ValidationCase:
        defaults = dict(
            mix_name="L1", policy="MPPT&Opt", irradiance=800.0, cell_temp_c=40.0,
            mpp_power=100.0, tracked_power=93.0, rail_voltage=12.1,
            saturated=False, floor_limited=False, retrack_drift=1.0,
        )
        defaults.update(overrides)
        return ValidationCase(**defaults)

    def test_good_case_passes(self):
        assert self.make_case().passes(SolarCoreConfig())

    def test_overdraw_fails(self):
        assert not self.make_case(tracked_power=101.0).passes(SolarCoreConfig())

    def test_deep_undershoot_fails(self):
        assert not self.make_case(tracked_power=60.0).passes(SolarCoreConfig())

    def test_saturated_undershoot_allowed(self):
        case = self.make_case(tracked_power=60.0, saturated=True)
        assert case.passes(SolarCoreConfig())

    def test_floor_limited_low_rail_allowed(self):
        case = self.make_case(
            tracked_power=31.0, mpp_power=35.0, rail_voltage=9.6,
            floor_limited=True,
        )
        assert case.passes(SolarCoreConfig())

    def test_rail_excursion_fails(self):
        assert not self.make_case(rail_voltage=17.0).passes(SolarCoreConfig())

    def test_instability_fails(self):
        assert not self.make_case(retrack_drift=30.0).passes(SolarCoreConfig())
