"""Unit tests for the per-figure experiment functions (small grids)."""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.experiments import (
    fig01_fixed_load_utilization,
    fig04_cell_curves,
    fig06_module_irradiance_curves,
    fig07_module_temperature_curves,
    fig13_14_tracking,
    fig19_effective_duration,
    table7_tracking_error,
)
from repro.harness.runner import SimulationRunner


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(SolarCoreConfig(step_minutes=10.0))


class TestFig01:
    def test_mpp_match_at_reference(self):
        rows = fig01_fixed_load_utilization()
        assert rows[0][1] == pytest.approx(1.0, abs=1e-3)

    def test_paper_half_loss_at_400(self):
        rows = dict(fig01_fixed_load_utilization())
        assert rows[400.0] < 0.5  # the paper's ">50% energy loss"

    def test_monotone_decline(self):
        rows = fig01_fixed_load_utilization()
        utils = [u for _, u in rows]
        assert all(b < a for a, b in zip(utils, utils[1:]))


class TestDeviceCurves:
    def test_fig04_single_cell(self):
        curve = fig04_cell_curves(n_points=50)
        assert len(curve.voltage) == 50
        assert curve.voc < 1.0  # a single cell

    def test_fig06_isc_ordering(self):
        curves = fig06_module_irradiance_curves(n_points=50)
        iscs = [curves[g].isc for g in sorted(curves)]
        assert all(b > a for a, b in zip(iscs, iscs[1:]))

    def test_fig07_voc_ordering(self):
        curves = fig07_module_temperature_curves(n_points=50)
        vocs = [curves[t].voc for t in sorted(curves)]
        assert all(b < a for a, b in zip(vocs, vocs[1:]))


class TestTrackingExperiments:
    def test_fig13_traces(self, runner):
        traces = fig13_14_tracking(1, mixes=("L1",), runner=runner)
        trace = traces["L1"]
        assert len(trace.minutes) == len(trace.budget_w) == len(trace.actual_w)
        assert np.all(trace.actual_w <= trace.budget_w + 1e-6)
        assert 0.0 < trace.mean_error < 0.4

    def test_table7_subset(self, runner):
        table = table7_tracking_error(runner, mixes=("L1",), months=(7,))
        assert len(table) == 4  # four stations
        for row in table.values():
            assert 0.0 < row["L1"] < 0.4

    def test_fig19_duration_ordering(self, runner):
        durations = fig19_effective_duration(runner)
        az = np.mean([durations[("PFCI", m)] for m in (1, 4, 7, 10)])
        tn = np.mean([durations[("ORNL", m)] for m in (1, 4, 7, 10)])
        assert az > tn
