"""Concurrent writers against one ``DiskResultCache`` key.

The cache's documented contract is that its atomic tempfile +
``os.replace`` protocol is safe under concurrent writers: the worst case
is two processes computing the same entry and last-write-wins of
identical bytes.  The service leans on this (N servers may share one
cache directory), so the claim gets a real two-process race, not a
comment.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import pytest

from repro.harness.parallel import DiskResultCache

KEY = ("mppt", "HM2", "PFCI", 7, "MPPT&Opt", None, None)


@dataclass(frozen=True)
class Payload:
    """Small picklable stand-in for a day result."""

    writer: str
    value: float = 42.0


def _race_store(root, name, barrier, errors):
    try:
        cache = DiskResultCache(root, fingerprint="race-test")
        payload = Payload(writer=name)
        barrier.wait(timeout=30)
        # Both processes hit os.replace on the same destination at the
        # same moment, many times over to widen the window.
        for _ in range(50):
            cache.store(KEY, payload)
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        errors.put(f"{name}: {type(exc).__name__}: {exc}")


def _race_store_vs_load(root, name, barrier, errors):
    try:
        cache = DiskResultCache(root, fingerprint="race-test")
        payload = Payload(writer=name)
        barrier.wait(timeout=30)
        for _ in range(50):
            cache.store(KEY, payload)
            loaded = cache.load(KEY)
            # A reader may observe either writer's entry but never a
            # torn or half-written one.
            if loaded is not None and not isinstance(loaded, Payload):
                errors.put(f"{name}: read garbage {loaded!r}")
    except BaseException as exc:  # noqa: BLE001
        errors.put(f"{name}: {type(exc).__name__}: {exc}")


def _run_pair(target, tmp_path):
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    errors = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(str(tmp_path), name, barrier, errors))
        for name in ("alpha", "beta")
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0, f"racer died with exit code {p.exitcode}"
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures


def test_two_processes_racing_the_same_key_both_succeed(tmp_path):
    # Pre-create so the format-marker write is not part of the race.
    DiskResultCache(tmp_path, fingerprint="race-test")
    _run_pair(_race_store, tmp_path)

    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    result = cache.load(KEY)
    assert isinstance(result, Payload)
    assert result.writer in ("alpha", "beta")  # last write won, intact
    assert result.value == 42.0
    # No orphaned temp files: every mkstemp either replaced or unlinked.
    assert list(tmp_path.glob("*.tmp")) == []


def test_readers_racing_writers_never_see_torn_entries(tmp_path):
    DiskResultCache(tmp_path, fingerprint="race-test")
    _run_pair(_race_store_vs_load, tmp_path)
    assert list(tmp_path.glob("*.tmp")) == []


def test_interrupted_write_leaves_no_entry(tmp_path):
    # The single-process flavor of the same guarantee: a store that dies
    # mid-write (simulated via a pickling failure) leaves neither a
    # destination file nor a temp file behind.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")

    class Unpicklable:
        def __reduce__(self):
            raise RuntimeError("simulated mid-write death")

    with pytest.raises(RuntimeError, match="mid-write"):
        cache.store(KEY, Unpicklable())
    assert cache.load(KEY) is None
    assert list(tmp_path.glob("*.tmp")) == []


def test_corrupt_entry_is_deleted_and_recomputed_not_served(tmp_path):
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    cache.store(KEY, Payload(writer="good"))
    path = cache.path_for(KEY)
    # Truncate to model a crash after replace on a non-journaling fs.
    path.write_bytes(path.read_bytes()[:10])
    assert cache.load(KEY) is None
    assert not path.exists()


def test_store_bytes_are_stable_for_identical_results(tmp_path):
    # "Last-write-wins of identical bytes": two writers with the same
    # result really do produce byte-identical entries.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    cache.store(KEY, Payload(writer="same"))
    first = cache.path_for(KEY).read_bytes()
    cache.store(KEY, Payload(writer="same"))
    assert cache.path_for(KEY).read_bytes() == first
