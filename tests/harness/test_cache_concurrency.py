"""Concurrent writers against one ``DiskResultCache`` key.

The cache's documented contract is that its atomic tempfile +
``os.replace`` protocol is safe under concurrent writers: the worst case
is two processes computing the same entry and last-write-wins of
identical bytes.  The service leans on this (N servers may share one
cache directory), so the claim gets a real two-process race, not a
comment.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.harness.parallel import DiskResultCache

KEY = ("mppt", "HM2", "PFCI", 7, "MPPT&Opt", None, None)


@dataclass(frozen=True)
class Payload:
    """Small picklable stand-in for a day result."""

    writer: str
    value: float = 42.0


def _race_store(root, name, barrier, errors):
    try:
        cache = DiskResultCache(root, fingerprint="race-test")
        payload = Payload(writer=name)
        barrier.wait(timeout=30)
        # Both processes hit os.replace on the same destination at the
        # same moment, many times over to widen the window.
        for _ in range(50):
            cache.store(KEY, payload)
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        errors.put(f"{name}: {type(exc).__name__}: {exc}")


def _race_store_vs_load(root, name, barrier, errors):
    try:
        cache = DiskResultCache(root, fingerprint="race-test")
        payload = Payload(writer=name)
        barrier.wait(timeout=30)
        for _ in range(50):
            cache.store(KEY, payload)
            loaded = cache.load(KEY)
            # A reader may observe either writer's entry but never a
            # torn or half-written one.
            if loaded is not None and not isinstance(loaded, Payload):
                errors.put(f"{name}: read garbage {loaded!r}")
    except BaseException as exc:  # noqa: BLE001
        errors.put(f"{name}: {type(exc).__name__}: {exc}")


def _run_pair(target, tmp_path):
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    errors = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(str(tmp_path), name, barrier, errors))
        for name in ("alpha", "beta")
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0, f"racer died with exit code {p.exitcode}"
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures


def test_two_processes_racing_the_same_key_both_succeed(tmp_path):
    # Pre-create so the format-marker write is not part of the race.
    DiskResultCache(tmp_path, fingerprint="race-test")
    _run_pair(_race_store, tmp_path)

    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    result = cache.load(KEY)
    assert isinstance(result, Payload)
    assert result.writer in ("alpha", "beta")  # last write won, intact
    assert result.value == 42.0
    # No orphaned temp files: every mkstemp either replaced or unlinked.
    assert list(tmp_path.glob("*.tmp")) == []


def test_readers_racing_writers_never_see_torn_entries(tmp_path):
    DiskResultCache(tmp_path, fingerprint="race-test")
    _run_pair(_race_store_vs_load, tmp_path)
    assert list(tmp_path.glob("*.tmp")) == []


def test_interrupted_write_leaves_no_entry(tmp_path):
    # The single-process flavor of the same guarantee: a store that dies
    # mid-write (simulated via a pickling failure) leaves neither a
    # destination file nor a temp file behind.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")

    class Unpicklable:
        def __reduce__(self):
            raise RuntimeError("simulated mid-write death")

    with pytest.raises(RuntimeError, match="mid-write"):
        cache.store(KEY, Unpicklable())
    assert cache.load(KEY) is None
    assert list(tmp_path.glob("*.tmp")) == []


def test_corrupt_entry_is_deleted_and_recomputed_not_served(tmp_path):
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    cache.store(KEY, Payload(writer="good"))
    path = cache.path_for(KEY)
    # Truncate to model a crash after replace on a non-journaling fs.
    path.write_bytes(path.read_bytes()[:10])
    assert cache.load(KEY) is None
    assert not path.exists()


def test_store_bytes_are_stable_for_identical_results(tmp_path):
    # "Last-write-wins of identical bytes": two writers with the same
    # result really do produce byte-identical entries.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    cache.store(KEY, Payload(writer="same"))
    first = cache.path_for(KEY).read_bytes()
    cache.store(KEY, Payload(writer="same"))
    assert cache.path_for(KEY).read_bytes() == first


# ----------------------------------------------------------------------
# Cross-process compute leases
# ----------------------------------------------------------------------
def _lease_compute(root, name, barrier, errors, computes, compute_s):
    """One 'server process' racing load_or_compute on the shared key."""
    try:
        cache = DiskResultCache(root, fingerprint="race-test")

        def compute():
            with computes.get_lock():
                computes.value += 1
            time.sleep(compute_s)
            return Payload(writer=name)

        barrier.wait(timeout=30)
        result, _computed = cache.load_or_compute(
            KEY, compute, stale_after_s=5.0, poll_s=0.01
        )
        if not isinstance(result, Payload):
            errors.put(f"{name}: read garbage {result!r}")
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        errors.put(f"{name}: {type(exc).__name__}: {exc}")


def test_lease_race_two_processes_compute_exactly_once(tmp_path):
    DiskResultCache(tmp_path, fingerprint="race-test")
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    errors = ctx.Queue()
    computes = ctx.Value("i", 0)
    procs = [
        ctx.Process(
            target=_lease_compute,
            args=(str(tmp_path), name, barrier, errors, computes, 0.3),
        )
        for name in ("alpha", "beta")
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0, f"racer died with exit code {p.exitcode}"
    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert not failures, failures
    # The whole point: two processes, one compute.
    assert computes.value == 1
    # The winner released its lease and left no claim temp files.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    assert not cache.lease_path_for(KEY).exists()
    assert list(tmp_path.glob("*.lease-claim")) == []


def _lease_and_hang(root, ready):
    """Take the lease, signal the parent, then hang until SIGKILLed."""
    cache = DiskResultCache(root, fingerprint="race-test")
    lease = cache.try_lease(KEY, stale_after_s=30.0)
    assert lease is not None
    ready.set()
    time.sleep(300)


def test_stale_lease_takeover_after_sigkilled_owner(tmp_path):
    DiskResultCache(tmp_path, fingerprint="race-test")
    ctx = multiprocessing.get_context()
    ready = ctx.Event()
    owner = ctx.Process(target=_lease_and_hang, args=(str(tmp_path), ready))
    owner.start()
    try:
        assert ready.wait(timeout=30), "owner never took the lease"
        os.kill(owner.pid, signal.SIGKILL)
        owner.join(timeout=30)

        cache = DiskResultCache(tmp_path, fingerprint="race-test")
        # While the corpse's lease is fresh, we are a follower.
        assert cache.try_lease(KEY, stale_after_s=30.0) is None
        # Once its heartbeat age passes the staleness bound, takeover.
        time.sleep(0.6)
        result, computed = cache.load_or_compute(
            KEY, lambda: Payload(writer="successor"),
            stale_after_s=0.5, poll_s=0.01,
        )
        assert computed is True
        assert result.writer == "successor"
        assert not cache.lease_path_for(KEY).exists()
    finally:
        if owner.is_alive():
            owner.kill()
            owner.join(timeout=10)


def test_heartbeat_keeps_slow_compute_leased(tmp_path):
    # A compute slower than the staleness bound must NOT lose its lease,
    # because the heartbeat thread keeps touching the lease file.
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    other = DiskResultCache(tmp_path, fingerprint="race-test")
    observed = []

    def slow_compute():
        # 1.2s of compute against a 0.6s staleness bound: without
        # heartbeats the rival would see a stale lease and take over.
        for _ in range(4):
            time.sleep(0.3)
            observed.append(other.try_lease(KEY, stale_after_s=0.6))
        return Payload(writer="slow")

    result, computed = cache.load_or_compute(
        KEY, slow_compute, stale_after_s=0.6, heartbeat_s=0.1,
    )
    assert computed is True
    assert result.writer == "slow"
    # The rival never managed a takeover at any point during the compute.
    assert observed == [None, None, None, None]


def test_released_lease_is_immediately_reacquirable(tmp_path):
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    lease = cache.try_lease(KEY, stale_after_s=30.0)
    assert lease is not None
    lease.release()
    second = cache.try_lease(KEY, stale_after_s=30.0)
    assert second is not None
    second.release()


def test_deposed_lease_refuses_refresh_and_release(tmp_path):
    cache = DiskResultCache(tmp_path, fingerprint="race-test")
    original = cache.try_lease(KEY, stale_after_s=30.0)
    assert original is not None
    # Make the lease look dead, then let a rival take it over.
    old = time.time() - 60.0
    os.utime(cache.lease_path_for(KEY), (old, old))
    usurper = cache.try_lease(KEY, stale_after_s=0.5)
    assert usurper is not None
    # The deposed owner can no longer refresh, and its release must not
    # delete the usurper's lease out from under it.
    assert original.refresh() is False
    original.release()
    assert cache.lease_path_for(KEY).exists()
    assert usurper.refresh() is True
    usurper.release()
