"""Tests for the headline-claims capstone (small grid)."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.paper_summary import render_headlines, reproduce_headlines
from repro.harness.runner import SimulationRunner


@pytest.fixture(scope="module")
def claims():
    runner = SimulationRunner(SolarCoreConfig(step_minutes=10.0))
    return reproduce_headlines(runner, mixes=("L1", "HM2"), months=(7,))


class TestReproduceHeadlines:
    def test_seven_claims(self, claims):
        assert len(claims) == 7

    def test_fig1_claim_holds(self, claims):
        fig1 = claims[0]
        assert "Fig 1" in fig1.claim
        assert fig1.holds

    def test_policy_ordering_claims_hold(self, claims):
        by_claim = {c.claim: c for c in claims}
        assert by_claim["MPPT&Opt beats MPPT&RR (Fig 21)"].holds
        assert by_claim["MPPT&Opt beats MPPT&IC (Fig 21)"].holds

    def test_every_claim_has_both_sides(self, claims):
        for claim in claims:
            assert claim.paper_value
            assert claim.measured


class TestRenderHeadlines:
    def test_card_renders(self, claims):
        card = render_headlines(claims)
        assert "paper" in card
        assert "measured" in card
        assert card.count("\n") >= len(claims)
