"""Cross-process telemetry merge under retry waves: exactly-once metrics.

The contract under test: a task that fails and is recomputed by a retry
wave contributes its telemetry (counters, profile days) to the merged
parent snapshot exactly once — never zero times, never twice.  The
hazard is a task that fails *after* doing real work (it simulated the
day, then raised): a chunk-level hub would have absorbed that partial
work before the failure, and the retry would add it again.  The engine
therefore runs each task under a private hub and folds it into the
chunk snapshot only on success.

Workers fork on Linux, so in-process monkeypatches of
:func:`repro.harness.parallel.compute_task` reach them, and O_APPEND
marker files in ``tmp_path`` give exact cross-process attempt counts.
"""

from __future__ import annotations

import os

from repro.core.config import SolarCoreConfig
from repro.harness import parallel as parallel_mod
from repro.harness.parallel import SweepTask, run_parallel
from repro.telemetry import PhaseProfiler, Telemetry, telemetry_session

CFG = SolarCoreConfig(step_minutes=10.0)

GOOD_A = SweepTask("mppt", "L1", "AZ", 7)
GOOD_B = SweepTask("mppt", "H1", "AZ", 7)

real_compute = parallel_mod.compute_task


def attempts(log_path) -> int:
    if not os.path.exists(log_path):
        return 0
    with open(log_path) as handle:
        return len(handle.read().splitlines())


def fail_first_attempt_before_work(log_path, target):
    """Fail ``target``'s first attempt before any simulation runs."""

    def wrapper(task, config):
        if task == target:
            with open(log_path, "a") as handle:
                handle.write("attempt\n")
            if attempts(log_path) == 1:
                raise RuntimeError("transient, pre-work")
        return real_compute(task, config)

    return wrapper


def fail_first_attempt_after_work(log_path, target):
    """Fail ``target``'s first attempt *after* the day fully simulated.

    This is the double-counting trap: the failed attempt booked a full
    day of telemetry (sim.days, brentq counters, a profile day) into
    whatever hub was current before the exception surfaced.
    """

    def wrapper(task, config):
        result = real_compute(task, config)
        if task == target:
            with open(log_path, "a") as handle:
                handle.write("attempt\n")
            if attempts(log_path) == 1:
                raise RuntimeError("transient, post-work")
        return result

    return wrapper


def merge_all(snapshots, profiled=False) -> dict:
    hub = Telemetry(profiler=PhaseProfiler() if profiled else None)
    for snapshot in snapshots:
        hub.merge_snapshot(snapshot)
    return hub


class TestExactlyOnceCounters:
    def test_pre_work_failure_counts_once(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            parallel_mod, "compute_task",
            fail_first_attempt_before_work(tmp_path / "log", GOOD_A),
        )
        with telemetry_session():
            results, snapshots = run_parallel(
                [GOOD_A, GOOD_B], CFG, jobs=2,
                collect_telemetry=True, retries=2, retry_base_s=0.0,
            )
        assert set(results) == {GOOD_A, GOOD_B}
        assert attempts(tmp_path / "log") == 2
        merged = merge_all(snapshots)
        assert merged.snapshot()["counters"]["sim.days"] == 2

    def test_post_work_failure_counts_once(self, monkeypatch, tmp_path):
        """The sharper variant: the failed attempt did a full day of work
        before raising, so a naive chunk-wide hub would report 3 days."""
        monkeypatch.setattr(
            parallel_mod, "compute_task",
            fail_first_attempt_after_work(tmp_path / "log", GOOD_A),
        )
        with telemetry_session():
            results, snapshots = run_parallel(
                [GOOD_A, GOOD_B], CFG, jobs=2,
                collect_telemetry=True, retries=2, retry_base_s=0.0,
            )
        assert set(results) == {GOOD_A, GOOD_B}
        assert attempts(tmp_path / "log") == 2
        merged = merge_all(snapshots)
        counters = merged.snapshot()["counters"]
        assert counters["sim.days"] == 2
        # Spans fold the same way: one day span per retired task.
        spans = merged.snapshot()["spans"]
        assert spans["run_day"]["count"] == 2

    def test_no_retries_no_failures_counts_every_task(self, monkeypatch, tmp_path):
        with telemetry_session():
            _, snapshots = run_parallel(
                [GOOD_A, GOOD_B], CFG, jobs=2, collect_telemetry=True
            )
        merged = merge_all(snapshots)
        assert merged.snapshot()["counters"]["sim.days"] == 2


class TestExactlyOnceProfiles:
    def test_profile_days_exact_under_post_work_retry(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            parallel_mod, "compute_task",
            fail_first_attempt_after_work(tmp_path / "log", GOOD_A),
        )
        with telemetry_session():
            results, snapshots = run_parallel(
                [GOOD_A, GOOD_B], CFG, jobs=2,
                collect_telemetry=True, collect_profile=True,
                retries=2, retry_base_s=0.0,
            )
        assert set(results) == {GOOD_A, GOOD_B}
        assert attempts(tmp_path / "log") == 2
        merged = merge_all(snapshots, profiled=True)
        prof = merged.profile
        # Exactly one day profile per retired task, despite the extra
        # (discarded) attempt, and solver counters match.
        assert len(prof.days) == 2
        assert prof.counters["power.brentq_calls"] == sum(
            day.counters["power.brentq_calls"] for day in prof.days
        )

    def test_collect_profile_without_telemetry_flag(self):
        """``collect_profile`` alone is enough to ship profiles home."""
        with telemetry_session():
            _, snapshots = run_parallel(
                [GOOD_A], CFG, jobs=1, collect_profile=True
            )
        merged = merge_all(snapshots, profiled=True)
        assert len(merged.profile.days) == 1
