"""Unit tests for ASCII reporting."""

import pytest

from repro.harness.reporting import (
    format_series,
    format_table,
    render_table7,
    sparkline,
)


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        out = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[2].split() == ["1", "2"]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_pads_wide_cells(self):
        out = format_table(["x"], [["wide-cell"]])
        assert "wide-cell" in out


class TestFormatSeries:
    def test_label_and_points(self):
        out = format_series("budget", [(50, 0.5), (100, 0.25)])
        assert out.startswith("budget")
        assert "50:0.50" in out
        assert "100:0.25" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_peak_is_densest_char(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[-1] == "@"

    def test_downsamples_long_series(self):
        line = sparkline(range(1000), width=50)
        assert len(line) == 50

    def test_all_zero(self):
        assert set(sparkline([0.0, 0.0])) == {" "}


class TestRenderTable7:
    def test_renders_grid(self):
        table = {
            ("PFCI", 1): {"H1": 0.10, "L1": 0.08},
            ("ORNL", 7): {"H1": 0.13, "L1": 0.12},
        }
        out = render_table7(table)
        assert "PFCI" in out
        assert "10.0%" in out
        assert "H1" in out
