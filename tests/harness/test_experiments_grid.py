"""Small-grid tests of the heavier experiment functions (Figs 15-21)."""

import math

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.harness.experiments import (
    fig15_duration_vs_threshold,
    fig16_energy_vs_threshold,
    fig17_ptp_vs_threshold,
    fig18_energy_utilization,
    fig20_utilization_vs_duration,
    fig21_normalized_ptp,
)
from repro.harness.runner import SimulationRunner

LOCS = (PHOENIX_AZ, OAK_RIDGE_TN)
MONTHS = (7,)


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(SolarCoreConfig(step_minutes=10.0))


class TestFig15:
    def test_duration_monotone_non_increasing(self, runner):
        curves = fig15_duration_vs_threshold(
            budgets_w=(60.0, 100.0, 140.0),
            runner=runner, locations=LOCS, months=MONTHS,
        )
        assert len(curves) == 2
        for pts in curves.values():
            durations = [d for _, d in pts]
            assert all(b <= a + 1e-9 for a, b in zip(durations, durations[1:]))


class TestFig16And17:
    def test_fixed_never_beats_solarcore(self, runner):
        for fn in (fig16_energy_vs_threshold, fig17_ptp_vs_threshold):
            data = fn(
                budgets_w=(75.0, 100.0), mixes=("HM2",),
                runner=runner, locations=(PHOENIX_AZ,), months=MONTHS,
            )
            for per_month in data.values():
                for pts in per_month.values():
                    for _, ratio in pts:
                        assert 0.0 <= ratio < 1.0


class TestFig18:
    def test_structure_and_ordering(self, runner):
        data = fig18_energy_utilization(
            runner=runner, mixes=("HM2",), months=MONTHS, locations=LOCS,
        )
        assert set(data) == {"PFCI", "ORNL"}
        az = data["PFCI"]["HM2"]["MPPT&Opt"]
        tn = data["ORNL"]["HM2"]["MPPT&Opt"]
        assert az > tn


class TestFig20:
    def test_buckets_have_sane_values(self, runner):
        data = fig20_utilization_vs_duration(
            runner=runner, mixes=("HM2", "L1"), months=MONTHS, locations=LOCS,
        )
        values = [
            v
            for per_policy in data.values()
            for v in per_policy.values()
            if not math.isnan(v)
        ]
        assert values
        assert all(0.0 < v <= 1.0 for v in values)


class TestFig21:
    def test_policy_ordering_and_battery_bound(self, runner):
        data = fig21_normalized_ptp(
            runner=runner, mixes=("HM2",), months=MONTHS, locations=(PHOENIX_AZ,),
        )
        row = data[("PFCI", 7, "HM2")]
        assert row["Battery-L"] == 1.0
        assert row["Battery-U"] == pytest.approx(0.92 / 0.81, rel=0.02)
        assert row["MPPT&Opt"] >= row["MPPT&RR"] >= row["MPPT&IC"] * 0.99
