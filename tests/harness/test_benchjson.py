"""Bench trajectory: BENCH_*.json schema, comparator, regression gates.

``benchmarks/benchjson.py`` lives outside the package (it is both a
benchmark helper and a standalone CI comparator), so the tests load it
by path via importlib.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "benchjson.py"
)
_spec = importlib.util.spec_from_file_location("benchjson", _MODULE_PATH)
benchjson = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(benchjson)


def write(out_dir, name="sample", metrics=None, timings=None, **kwargs):
    return benchjson.write_bench_json(
        out_dir, name,
        metrics={"ptp": 0.85, "days": 8.0} if metrics is None else metrics,
        timings_s={"experiment": 1.2} if timings is None else timings,
        **kwargs,
    )


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        path = write(tmp_path, extra={"grid": "2x2"})
        assert path == tmp_path / "BENCH_sample.json"
        doc = benchjson.load_bench_json(path)
        assert doc["schema"] == benchjson.SCHEMA_VERSION
        assert doc["name"] == "sample"
        assert doc["metrics"] == {"ptp": 0.85, "days": 8.0}
        assert doc["timings_s"] == {"experiment": 1.2}
        assert doc["extra"] == {"grid": "2x2"}
        assert doc["host"]["cpu_count"] is not None

    def test_no_leftover_temp_files(self, tmp_path):
        write(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_values_coerced_to_float(self, tmp_path):
        path = write(tmp_path, metrics={"count": 7})
        assert benchjson.load_bench_json(path)["metrics"]["count"] == 7.0

    def test_non_finite_metric_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="finite"):
            write(tmp_path, metrics={"bad": float("nan")})

    def test_load_rejects_invalid_document(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text(json.dumps({"schema": 99, "name": ""}))
        with pytest.raises(ValueError, match="schema"):
            benchjson.load_bench_json(path)


class TestValidate:
    def test_bool_is_not_a_number(self):
        doc = {
            "schema": benchjson.SCHEMA_VERSION,
            "name": "x",
            "metrics": {"flag": True},
            "timings_s": {},
            "host": {},
        }
        (error,) = benchjson.validate(doc)
        assert "finite number" in error

    def test_missing_sections_reported(self):
        errors = benchjson.validate({})
        assert len(errors) == 5  # schema, name, metrics, timings_s, host


class TestCompare:
    def base(self):
        return {
            "schema": 1, "name": "fig01",
            "metrics": {"utilization_400": 0.44},
            "timings_s": {"experiment": 1.0},
            "host": {"cpu_count": 8},
        }

    def test_identical_documents_clean(self):
        failures, warnings = benchjson.compare(self.base(), self.base())
        assert failures == [] and warnings == []

    def test_injected_metric_regression_is_a_failure(self):
        """The acceptance gate: deterministic drift must hard-fail."""
        current = self.base()
        current["metrics"]["utilization_400"] = 0.47
        failures, warnings = benchjson.compare(self.base(), current)
        (failure,) = failures
        assert "utilization_400" in failure
        assert "0.44 -> 0.47" in failure
        assert warnings == []

    def test_tiny_float_noise_tolerated(self):
        current = self.base()
        current["metrics"]["utilization_400"] = 0.44 * (1 + 1e-9)
        failures, _ = benchjson.compare(self.base(), current)
        assert failures == []

    def test_disappeared_metric_is_a_failure(self):
        current = self.base()
        del current["metrics"]["utilization_400"]
        (failure,) = benchjson.compare(self.base(), current)[0]
        assert "disappeared" in failure

    def test_timing_regression_only_warns(self):
        current = self.base()
        current["timings_s"]["experiment"] = 2.0  # 2x > 1.5x tolerance
        failures, warnings = benchjson.compare(self.base(), current)
        assert failures == []
        (warning,) = warnings
        assert "regressed" in warning
        assert "8 cpus" in warning  # host context attached

    def test_timing_within_tolerance_silent(self):
        current = self.base()
        current["timings_s"]["experiment"] = 1.4
        assert benchjson.compare(self.base(), current) == ([], [])

    def test_new_entries_warn(self):
        current = self.base()
        current["metrics"]["fresh"] = 1.0
        current["timings_s"]["also_fresh"] = 0.5
        failures, warnings = benchjson.compare(self.base(), current)
        assert failures == []
        assert any("new metric 'fresh'" in w for w in warnings)
        assert any("new timing 'also_fresh'" in w for w in warnings)


class TestCompareDirs:
    def test_matched_directories_clean(self, tmp_path):
        write(tmp_path / "base")
        write(tmp_path / "cur")
        failures, warnings = benchjson.compare_dirs(
            tmp_path / "base", tmp_path / "cur"
        )
        assert failures == [] and warnings == []

    def test_missing_counterparts_warn(self, tmp_path):
        write(tmp_path / "base", name="only_base")
        write(tmp_path / "cur", name="only_cur")
        failures, warnings = benchjson.compare_dirs(
            tmp_path / "base", tmp_path / "cur"
        )
        assert failures == []
        assert any("did not run" in w for w in warnings)
        assert any("no committed baseline" in w for w in warnings)

    def test_invalid_current_document_fails(self, tmp_path):
        write(tmp_path / "base")
        (tmp_path / "cur").mkdir()
        (tmp_path / "cur" / "BENCH_sample.json").write_text("{}")
        failures, _ = benchjson.compare_dirs(tmp_path / "base", tmp_path / "cur")
        assert failures


class TestMain:
    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        write(tmp_path / "base")
        write(tmp_path / "cur")
        code = benchjson.main(
            ["compare", str(tmp_path / "base"), str(tmp_path / "cur")]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_metric_drift_exits_nonzero(self, tmp_path, capsys):
        write(tmp_path / "base", metrics={"ptp": 0.85})
        write(tmp_path / "cur", metrics={"ptp": 0.99})
        code = benchjson.main(
            ["compare", str(tmp_path / "base"), str(tmp_path / "cur")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out and "ptp" in out

    def test_rtol_flags_thread_through(self, tmp_path, capsys):
        write(tmp_path / "base", metrics={"ptp": 1.00})
        write(tmp_path / "cur", metrics={"ptp": 1.05})
        code = benchjson.main([
            "compare", str(tmp_path / "base"), str(tmp_path / "cur"),
            "--metric-rtol", "0.1",
        ])
        assert code == 0
