"""Resilient sweep execution: retries, salvage, timeouts, checkpoint-resume.

The worker pool uses the ``fork`` start method on Linux, so workers
inherit an in-process monkeypatch of
:func:`repro.harness.parallel.compute_task`.  The tests exploit that to
count cross-process invocations (one appended line per call in a shared
file) and to inject deterministic failures, crashes, and hangs.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import time

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness import parallel as parallel_mod
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.parallel import (
    SweepError,
    SweepFailureReport,
    SweepTask,
    TaskFailure,
    run_parallel,
    run_serial,
)
from repro.harness.runner import SimulationRunner
from repro.telemetry import telemetry_session

CFG = SolarCoreConfig(step_minutes=10.0)

GOOD_A = SweepTask("mppt", "L1", "AZ", 7)
GOOD_B = SweepTask("mppt", "H1", "AZ", 7)
#: "NOPE" is not a workload mix; computing this task raises in the worker.
BAD = SweepTask("mppt", "NOPE", "TN", 1)

real_compute = parallel_mod.compute_task


def counting_compute(log_path, inner=real_compute):
    """A compute_task that appends one line per invocation to ``log_path``.

    O_APPEND line writes are atomic across forked workers, so the line
    count is the exact cross-process invocation count.
    """

    def wrapper(task, config):
        with open(log_path, "a") as handle:
            handle.write(task.describe() + "\n")
        return inner(task, config)

    return wrapper


def invocations(log_path) -> list[str]:
    if not os.path.exists(log_path):
        return []
    with open(log_path) as handle:
        return handle.read().splitlines()


class TestSalvage:
    def test_parallel_salvage_returns_partial_results(self):
        results, _, report = run_parallel(
            [GOOD_A, BAD], CFG, jobs=2, salvage=True
        )
        assert GOOD_A in results and BAD not in results
        assert report
        (failure,) = report.failures
        assert failure.task == BAD
        assert failure.attempts == 1
        assert not failure.timed_out
        assert report.completed == 1 and report.attempted == 2
        assert "mix=NOPE" in report.summary()

    def test_serial_salvage_matches(self):
        results, report = run_serial([GOOD_A, BAD], CFG, salvage=True)
        assert GOOD_A in results and BAD not in results
        assert [f.task for f in report.failures] == [BAD]

    def test_salvage_counts_failures_in_telemetry(self):
        with telemetry_session() as tel:
            run_serial([BAD], CFG, salvage=True)
            snap = tel.snapshot()
        assert snap["counters"]["sweep.salvaged_failures"] == 1

    def test_worker_crash_is_contained(self, monkeypatch):
        """A worker dying mid-task (BrokenProcessPool) fails only its
        tasks; healthy cells complete via the fresh-pool retry wave."""

        def crashing(task, config):
            if task.mix_name == "NOPE":
                os._exit(13)
            return real_compute(task, config)

        monkeypatch.setattr(parallel_mod, "compute_task", crashing)
        # One worker: the healthy chunk finishes before the crasher kills
        # the pool, so only the crashing cell needs the retry wave.
        results, _, report = run_parallel(
            [GOOD_A, BAD], CFG, jobs=1, salvage=True,
            retries=1, retry_base_s=0.0,
        )
        assert GOOD_A in results
        (failure,) = report.failures
        assert failure.task == BAD
        assert failure.attempts == 2
        assert "BrokenProcessPool" in failure.error

    def test_without_salvage_the_sweep_raises(self):
        with pytest.raises(SweepError, match=r"serially.*mix=NOPE"):
            run_serial([GOOD_A, BAD], CFG)

    def test_empty_report_is_falsy(self):
        _, report = run_serial([GOOD_A], CFG, salvage=True)
        assert not report
        assert "all 1 task(s) succeeded" in report.summary()

    def test_failure_report_is_plain_data(self):
        report = SweepFailureReport(
            failures=[TaskFailure(task=BAD, error="KeyError: 'NOPE'", attempts=3)],
            completed=5,
            attempted=6,
        )
        assert "failed after 3 attempt(s)" in report.summary()


class TestRetries:
    def test_serial_transient_failure_recovers(self, monkeypatch):
        calls = {"n": 0}

        def flaky(task, config):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real_compute(task, config)

        monkeypatch.setattr(parallel_mod, "compute_task", flaky)
        with telemetry_session() as tel:
            results = run_serial([GOOD_A], CFG, retries=1, retry_base_s=0.0)
            snap = tel.snapshot()
        assert GOOD_A in results
        assert calls["n"] == 2
        assert snap["counters"]["sweep.retries"] == 1

    def test_parallel_transient_failure_recovers(self, monkeypatch, tmp_path):
        log_path = tmp_path / "calls.log"

        def flaky(task, config):
            with open(log_path, "a") as handle:
                handle.write(task.describe() + "\n")
            if len(invocations(log_path)) == 1:
                raise RuntimeError("transient")
            return real_compute(task, config)

        monkeypatch.setattr(parallel_mod, "compute_task", flaky)
        results, _ = run_parallel(
            [GOOD_A], CFG, jobs=2, retries=2, retry_base_s=0.0
        )
        assert GOOD_A in results
        assert len(invocations(log_path)) == 2

    def test_retries_exhausted_reports_attempt_count(self):
        _, report = run_serial(
            [BAD], CFG, retries=2, retry_base_s=0.0, salvage=True
        )
        assert report.failures[0].attempts == 3

    def test_negative_retries_rejected_by_runner(self):
        with pytest.raises(ValueError, match="retries"):
            SimulationRunner(CFG, retries=-1)


class TestTaskTimeout:
    def test_hung_task_times_out_and_is_reported(self, monkeypatch):
        def hang(task, config):
            time.sleep(30.0)
            return real_compute(task, config)

        monkeypatch.setattr(parallel_mod, "compute_task", hang)
        start = time.monotonic()
        with telemetry_session() as tel:
            results, _, report = run_parallel(
                [GOOD_A], CFG, jobs=1, salvage=True, task_timeout=0.2
            )
            snap = tel.snapshot()
        assert time.monotonic() - start < 15.0, "the sweep must not hang"
        assert results == {}
        (failure,) = report.failures
        assert failure.timed_out
        assert "timed out" in failure.error
        assert snap["counters"]["sweep.timeouts"] == 1

    def test_fast_tasks_unaffected_by_generous_timeout(self):
        results, _ = run_parallel([GOOD_A], CFG, jobs=1, task_timeout=120.0)
        assert GOOD_A in results


class TestCheckpointResume:
    """The --resume acceptance contract: completed cells are restored
    from the checkpoint file and only the remainder is recomputed —
    proven by counting cross-process compute_task invocations."""

    def test_resume_recomputes_only_missing_cells(self, monkeypatch, tmp_path):
        log_path = tmp_path / "calls.log"
        monkeypatch.setattr(
            parallel_mod, "compute_task", counting_compute(log_path)
        )
        ck_path = tmp_path / "sweep.ckpt"

        first = SweepCheckpoint(ck_path, CFG, flush_every=1)
        results, report = run_serial(
            [GOOD_A, GOOD_B, BAD], CFG, salvage=True, checkpoint=first
        )
        assert set(results) == {GOOD_A, GOOD_B}
        assert len(invocations(log_path)) == 3  # two successes + one failure

        # "Crash"; a new process resumes from the file.
        resumed = SweepCheckpoint(ck_path, CFG, flush_every=1)
        assert resumed.load() == 2
        results, report = run_serial(
            [GOOD_A, GOOD_B, BAD], CFG, salvage=True, checkpoint=resumed
        )
        assert set(results) == {GOOD_A, GOOD_B}
        assert [f.task for f in report.failures] == [BAD]
        # Only the failed cell was recomputed.
        assert len(invocations(log_path)) == 4
        assert invocations(log_path)[-1] == BAD.describe()

    def test_parallel_resume_skips_completed_cells(self, monkeypatch, tmp_path):
        log_path = tmp_path / "calls.log"
        monkeypatch.setattr(
            parallel_mod, "compute_task", counting_compute(log_path)
        )
        ck_path = tmp_path / "sweep.ckpt"

        first = SweepCheckpoint(ck_path, CFG, flush_every=1)
        run_parallel([GOOD_A], CFG, jobs=2, checkpoint=first)
        assert len(invocations(log_path)) == 1

        resumed = SweepCheckpoint(ck_path, CFG, flush_every=1)
        assert resumed.load() == 1
        with telemetry_session() as tel:
            results, _ = run_parallel(
                [GOOD_A, GOOD_B], CFG, jobs=2, checkpoint=resumed
            )
            snap = tel.snapshot()
        assert set(results) == {GOOD_A, GOOD_B}
        assert len(invocations(log_path)) == 2  # GOOD_A restored, not re-run
        assert snap["counters"]["sweep.checkpoint_skips"] == 1

    def test_unloaded_checkpoint_recomputes_everything(self, monkeypatch, tmp_path):
        """A fresh campaign over an existing file must overwrite, never
        silently resume: load() is the explicit opt-in."""
        log_path = tmp_path / "calls.log"
        monkeypatch.setattr(
            parallel_mod, "compute_task", counting_compute(log_path)
        )
        ck_path = tmp_path / "sweep.ckpt"
        run_serial([GOOD_A], CFG, checkpoint=SweepCheckpoint(ck_path, CFG))

        fresh = SweepCheckpoint(ck_path, CFG)  # no load()
        run_serial([GOOD_A], CFG, checkpoint=fresh)
        assert len(invocations(log_path)) == 2


class TestSweepCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ck = SweepCheckpoint(path, CFG)
        result = real_compute(GOOD_A, CFG)
        ck.record(GOOD_A, result)
        ck.flush()

        warm = SweepCheckpoint(path, CFG)
        assert warm.load() == 1
        assert warm.restored == 1
        restored = warm.get(GOOD_A)
        assert restored.retired_ginst_total == result.retired_ginst_total
        assert warm.get(GOOD_B) is None

    def test_flush_every_triggers_automatic_flush(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ck = SweepCheckpoint(path, CFG, flush_every=1)
        ck.record(GOOD_A, real_compute(GOOD_A, CFG))
        assert path.exists()

    def test_missing_file_is_clean_start(self, tmp_path):
        assert SweepCheckpoint(tmp_path / "absent.ckpt", CFG).load() == 0

    def test_corrupt_file_ignored_loudly(self, tmp_path, caplog):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"not a pickle")
        ck = SweepCheckpoint(path, CFG)
        with caplog.at_level(logging.WARNING, logger="repro.harness.checkpoint"):
            assert ck.load() == 0
        assert "unusable checkpoint" in caplog.text

    def test_code_fingerprint_mismatch_ignored(self, tmp_path):
        path = tmp_path / "c.ckpt"
        old = SweepCheckpoint(path, CFG, fingerprint="code-v1")
        old.record(GOOD_A, real_compute(GOOD_A, CFG))
        old.flush()
        new = SweepCheckpoint(path, CFG, fingerprint="code-v2")
        assert new.load() == 0

    def test_config_mismatch_ignored(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ck = SweepCheckpoint(path, CFG)
        ck.record(GOOD_A, real_compute(GOOD_A, CFG))
        ck.flush()
        other = SweepCheckpoint(
            path, dataclasses.replace(CFG, step_minutes=5.0)
        )
        assert other.load() == 0

    def test_rejects_bad_flush_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            SweepCheckpoint(tmp_path / "c.ckpt", CFG, flush_every=0)


class TestRunnerIntegration:
    def test_salvaging_runner_exposes_failure_report(self):
        runner = SimulationRunner(CFG, jobs=2, salvage=True, retries=1)
        results = runner.prefetch([GOOD_A, BAD])
        assert set(results) == {GOOD_A}
        assert runner.last_failure_report
        assert [f.task for f in runner.last_failure_report.failures] == [BAD]

    def test_salvaging_runner_reports_clean_run(self):
        runner = SimulationRunner(CFG, salvage=True)
        runner.prefetch([GOOD_A])
        assert runner.last_failure_report is not None
        assert not runner.last_failure_report

    def test_runner_threads_checkpoint_through_prefetch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ck = SweepCheckpoint(path, CFG, flush_every=1)
        runner = SimulationRunner(CFG, checkpoint=ck)
        runner.prefetch([GOOD_A])
        assert SweepCheckpoint(path, CFG).load() == 1
