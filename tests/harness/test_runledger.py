"""Run provenance ledger: manifest assembly, atomic record/load, diff."""

from __future__ import annotations

import json

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.parallel import code_fingerprint, config_key
from repro.harness.runledger import (
    MANIFEST_SCHEMA_VERSION,
    RunLedger,
    build_manifest,
    diff_manifests,
    host_info,
    render_manifest,
    render_run_list,
)
from repro.telemetry import PhaseProfiler, Telemetry, telemetry_session

CFG = SolarCoreConfig(step_minutes=10.0)


def simulated_manifest(**overrides):
    """A manifest built from a real profiled day, for realistic sections."""
    hub = Telemetry(profiler=PhaseProfiler())
    with telemetry_session(hub):
        run_day("HM2", PHOENIX_AZ, 7, config=CFG)
    kwargs = dict(
        command="simulate",
        argv=["--mix", "HM2", "--site", "AZ"],
        config=CFG,
        seeds=[None],
        faults=None,
        jobs=1,
        duration_s=1.5,
        telemetry=hub,
    )
    kwargs.update(overrides)
    return build_manifest(**kwargs)


class TestBuildManifest:
    def test_identity_fields(self):
        manifest = simulated_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["command"] == "simulate"
        assert manifest["argv"] == ["--mix", "HM2", "--site", "AZ"]
        assert manifest["code_fingerprint"] == code_fingerprint()
        assert manifest["config_key"] == repr(config_key(CFG))
        assert manifest["host"] == host_info()
        assert manifest["host"]["cpu_count"] is not None

    def test_execution_sections(self):
        manifest = simulated_manifest()
        assert manifest["days"] == 1
        assert manifest["duration_s"] == 1.5
        assert manifest["phases"]  # profiler was armed
        assert all(
            set(data) == {"count", "total_s"}
            for data in manifest["phases"].values()
        )
        assert manifest["solver"]["power.brentq_calls"] > 0

    def test_null_hub_contributes_empty_sections(self):
        manifest = build_manifest("simulate", config=CFG)
        assert manifest["cache"] == {}
        assert manifest["sweep"] == {}
        assert manifest["phases"] == {}
        assert manifest["days"] == 0.0

    def test_counter_prefixes_are_stripped(self):
        hub = Telemetry()
        hub.count("runner.computes", 4.0)
        hub.count("sweep.retries", 2.0)
        hub.count("unrelated.counter", 9.0)
        manifest = build_manifest("sweep", telemetry=hub)
        assert manifest["cache"] == {"computes": 4.0}
        assert manifest["sweep"] == {"retries": 2.0}

    def test_extra_fields_ride_along(self):
        manifest = build_manifest("campaign", extra={"figure": "fig13"})
        assert manifest["extra"] == {"figure": "fig13"}

    def test_manifest_is_json_serializable(self):
        manifest = simulated_manifest()
        assert json.loads(json.dumps(manifest)) == manifest


class TestRunLedger:
    def test_record_load_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        manifest = simulated_manifest()
        path = ledger.record(manifest)
        assert path.is_file()
        (run_id,) = ledger.run_ids()
        loaded = ledger.load(run_id)
        assert loaded["run_id"] == run_id
        assert loaded["command"] == "simulate"
        assert loaded["config_key"] == manifest["config_key"]

    def test_record_does_not_mutate_input(self, tmp_path):
        manifest = build_manifest("simulate")
        RunLedger(tmp_path).record(manifest)
        assert "run_id" not in manifest

    def test_same_second_runs_get_unique_ids(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for _ in range(3):
            ledger.record(build_manifest("simulate"))
        ids = ledger.run_ids()
        assert len(set(ids)) == 3

    def test_no_leftover_temp_files(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(build_manifest("simulate"))
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_unknown_run_names_known_ids(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(build_manifest("simulate"))
        (known,) = ledger.run_ids()
        with pytest.raises(FileNotFoundError, match=known):
            ledger.load("nonexistent")

    def test_load_empty_ledger(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="none recorded"):
            RunLedger(tmp_path / "absent").load("anything")

    def test_schema_mismatch_refused(self, tmp_path):
        ledger = RunLedger(tmp_path)
        path = ledger.record(build_manifest("simulate"))
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema 99"):
            ledger.load(path.stem)

    def test_latest_returns_newest_first(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(build_manifest("simulate"))
        ledger.record(build_manifest("sweep"))
        newest, older = ledger.latest(2)
        assert newest["run_id"] == ledger.run_ids()[-1]
        assert older["run_id"] == ledger.run_ids()[0]
        (only,) = ledger.latest(1)
        assert only["run_id"] == newest["run_id"]

    def test_empty_ledger_lists_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-created")
        assert ledger.run_ids() == []
        assert ledger.latest() == []


class TestRendering:
    def test_run_list_table(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(simulated_manifest())
        text = render_run_list(ledger.latest(5))
        assert "simulate" in text
        assert "run" in text and "days" in text

    def test_render_manifest_sections(self):
        text = render_manifest(simulated_manifest())
        assert "command   simulate --mix HM2 --site AZ" in text
        assert "config    (" in text
        assert "cpus=" in text
        assert "solver" in text
        assert "phases" in text
        assert "step.policy" in text

    def test_render_manifest_minimal(self):
        text = render_manifest(build_manifest("simulate"))
        assert "seeds     [standard trace]" in text
        assert "faults    -" in text
        assert "phases" not in text


class TestDiff:
    def test_identical_runs_all_same(self):
        manifest = simulated_manifest()
        text = diff_manifests(manifest, manifest)
        assert "DIFFERS" not in text
        assert "same" in text

    def test_identity_change_flagged(self):
        a = simulated_manifest()
        b = dict(a, code_fingerprint="f" * 64, run_id="later")
        text = diff_manifests(a, b)
        assert "DIFFERS" in text
        assert "ffffffffffffffff" in text  # truncated to 16 chars

    def test_numeric_delta_rendered(self):
        a = simulated_manifest(duration_s=2.0)
        b = dict(simulated_manifest(duration_s=3.0), run_id="b")
        text = diff_manifests(a, b)
        assert "+50.0%" in text

    def test_section_keys_union(self):
        a = build_manifest("sweep")
        hub = Telemetry()
        hub.count("sweep.retries", 2.0)
        b = build_manifest("sweep", telemetry=hub)
        text = diff_manifests(a, b)
        assert "sweep.retries" in text
