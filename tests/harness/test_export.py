"""Unit tests for CSV/JSON export."""

import csv
import io
import json

import numpy as np
import pytest

from repro.core.simulation import DayResult
from repro.harness.export import day_to_csv, day_to_json, table_to_csv


@pytest.fixture
def day():
    n = 5
    return DayResult(
        mix_name="L1",
        location_code="PFCI",
        month=7,
        policy="MPPT&Opt",
        minutes=np.arange(450.0, 450.0 + n),
        mpp_w=np.linspace(50, 90, n),
        consumed_w=np.linspace(45, 85, n),
        throughput_gips=np.full(n, 6.5),
        on_solar=np.array([True, True, False, True, True]),
        retired_ginst_solar=1000.0,
        retired_ginst_total=1200.0,
        utility_wh=30.0,
        tracking_events=2,
    )


class TestDayToCSV:
    def test_roundtrip(self, day):
        buffer = io.StringIO()
        day_to_csv(day, buffer)
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows[0] == ["minute", "mpp_w", "consumed_w", "throughput_gips", "on_solar"]
        assert len(rows) == 6
        assert float(rows[1][1]) == pytest.approx(50.0)
        assert rows[3][4] == "0"  # the utility-powered sample

    def test_writes_to_path(self, day, tmp_path):
        path = tmp_path / "day.csv"
        day_to_csv(day, path)
        assert path.read_text().startswith("minute,")


class TestDayToJSON:
    def test_structure(self, day):
        payload = json.loads(day_to_json(day))
        assert payload["mix"] == "L1"
        assert payload["metrics"]["ptp_ginst"] == 1000.0
        assert len(payload["series"]["minute"]) == 5
        assert payload["series"]["on_solar"][2] is False

    def test_metrics_match_properties(self, day):
        payload = json.loads(day_to_json(day))
        assert payload["metrics"]["energy_utilization"] == pytest.approx(
            day.energy_utilization
        )

    def test_writes_to_path(self, day, tmp_path):
        path = tmp_path / "day.json"
        day_to_json(day, path)
        assert json.loads(path.read_text())["location"] == "PFCI"


class TestTableToCSV:
    def test_nested_mapping(self):
        table = {
            ("PFCI", 1): {"H1": 0.10, "L1": 0.08},
            ("ORNL", 7): {"H1": 0.13, "L1": 0.12},
        }
        buffer = io.StringIO()
        table_to_csv(table, buffer, key_names=("site", "month"))
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows[0] == ["site", "month", "H1", "L1"]
        assert ["PFCI", "1", "0.1", "0.08"] in rows

    def test_scalar_values(self):
        table = {("PFCI", 7): 0.85}
        buffer = io.StringIO()
        table_to_csv(table, buffer, key_names=("site", "month"))
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows[0] == ["site", "month", "value"]

    def test_key_arity_checked(self):
        with pytest.raises(ValueError, match="parts"):
            table_to_csv({("a", "b"): 1.0}, io.StringIO(), key_names=("k",))
