"""Golden serial-vs-parallel-vs-disk-cache equivalence suite.

The parallel sweep engine's contract is *bit-identical determinism*: a
grid computed serially, fanned out over worker processes, or read back
from the persistent disk cache must produce byte-identical
:class:`DayResult` arrays and identical scalar metrics.  These tests are
the enforcement mechanism, alongside the cache-invalidation rules (a
bumped code fingerprint recomputes; a corrupt entry recomputes loudly,
never silently returns garbage) and the worker-failure contract (a
failing task names its grid coordinates).
"""

from __future__ import annotations

import dataclasses
import logging
import pickle

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.config import SolarCoreConfig
from repro.core.simulation import BatteryDayResult, DayResult
from repro.environment.locations import location_by_code
from repro.harness.parallel import (
    CACHE_FORMAT_VERSION,
    DiskResultCache,
    SweepError,
    SweepTask,
    config_key,
    grid_tasks,
    run_parallel,
)
from repro.harness.runner import SimulationRunner
from repro.telemetry import telemetry_session

#: Coarse steps keep one day cheap; the determinism contract is
#: resolution-independent.
CFG = SolarCoreConfig(step_minutes=10.0)

#: The acceptance grid: 2 locations x 2 months x 2 mixes.
GRID_MIXES = ("H1", "L1")
GRID_LOCATIONS = ("AZ", "TN")
GRID_MONTHS = (1, 7)

#: MPPT grid plus one fixed-budget and one battery task per cell, so all
#: three simulation kinds cross the worker/disk boundary.
ALL_TASKS = grid_tasks(
    GRID_MIXES, GRID_LOCATIONS, GRID_MONTHS,
    budgets_w=(75.0,), deratings=(0.81,),
)

ARRAY_FIELDS = ("minutes", "mpp_w", "consumed_w", "throughput_gips", "on_solar")


def assert_identical(a, b) -> None:
    """Byte-identical arrays and exactly equal scalars."""
    assert type(a) is type(b)
    if isinstance(a, BatteryDayResult):
        assert a == b
        return
    assert isinstance(a, DayResult)
    for name in ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert left.tobytes() == right.tobytes(), name
    for name in (
        "mix_name", "location_code", "month", "policy",
        "retired_ginst_solar", "retired_ginst_total", "utility_wh",
        "tracking_events", "dvfs_transitions", "dvfs_transition_volts",
    ):
        assert getattr(a, name) == getattr(b, name), name


@pytest.fixture(scope="module")
def serial_results():
    """The golden reference: the grid computed serially in-process."""
    return SimulationRunner(CFG).prefetch(ALL_TASKS)


class TestGoldenEquivalence:
    def test_parallel_matches_serial_byte_for_byte(self, serial_results):
        parallel = SimulationRunner(CFG, jobs=4).prefetch(ALL_TASKS)
        assert set(parallel) == set(serial_results)
        for task in ALL_TASKS:
            assert_identical(serial_results[task], parallel[task])

    def test_disk_cache_roundtrip_byte_for_byte(self, serial_results, tmp_path):
        cold = SimulationRunner(CFG, cache_dir=tmp_path)
        cold.prefetch(ALL_TASKS)
        assert cold.disk.misses > 0 and cold.disk.hits == 0

        warm = SimulationRunner(CFG, cache_dir=tmp_path)
        results = warm.prefetch(ALL_TASKS)
        assert warm.disk.hits == len(ALL_TASKS)
        assert warm.disk.misses == 0
        for task in ALL_TASKS:
            assert_identical(serial_results[task], results[task])

    def test_parallel_workers_populate_disk_cache(self, tmp_path):
        first = SimulationRunner(CFG, jobs=2, cache_dir=tmp_path)
        first.prefetch(ALL_TASKS)
        warm = SimulationRunner(CFG, cache_dir=tmp_path)
        warm.prefetch(ALL_TASKS)
        assert warm.disk.hits == len(ALL_TASKS)

    def test_cached_results_are_frozen_on_every_path(self, tmp_path):
        day_task = ALL_TASKS[0]
        for runner in (
            SimulationRunner(CFG, jobs=2),
            SimulationRunner(CFG, cache_dir=tmp_path),
            SimulationRunner(CFG, cache_dir=tmp_path),  # warm disk read
        ):
            day = runner.prefetch([day_task])[day_task]
            assert not day.mpp_w.flags.writeable

    def test_campaign_aggregates_identical(self):
        locations = [location_by_code(code) for code in GRID_LOCATIONS]
        serial = run_campaign(
            "H1", locations, (7,), days_per_cell=2, config=CFG,
        )
        parallel = run_campaign(
            "H1", locations, (7,), days_per_cell=2,
            runner=SimulationRunner(CFG, jobs=2),
        )
        assert serial.overall_utilization == parallel.overall_utilization
        for cell_s, cell_p in zip(serial.cells, parallel.cells):
            assert (cell_s.location_code, cell_s.month) == (
                cell_p.location_code, cell_p.month)
            for attribute in ("energy_utilization", "ptp", "utility_wh"):
                assert cell_s.mean(attribute) == cell_p.mean(attribute)
                assert cell_s.std(attribute) == cell_p.std(attribute)
            for day_s, day_p in zip(cell_s.days, cell_p.days):
                assert_identical(day_s, day_p)

    def test_campaign_rejects_conflicting_config(self):
        locations = [location_by_code("AZ")]
        with pytest.raises(ValueError, match="conflicting config"):
            run_campaign(
                "H1", locations, (7,), days_per_cell=1,
                config=SolarCoreConfig(step_minutes=5.0),
                runner=SimulationRunner(CFG),
            )


class TestCacheInvalidation:
    TASK = SweepTask("battery", "L1", "AZ", 7, derating=0.81)

    def test_bumped_code_fingerprint_recomputes(self, tmp_path):
        old = DiskResultCache(tmp_path, fingerprint="code-v1")
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        old.store(key, result)
        assert old.load(key) == result

        new = DiskResultCache(tmp_path, fingerprint="code-v2")
        assert new.load(key) is None  # different address: cold cache
        assert new.stats()["misses"] == 1

    def test_corrupt_entry_recomputes_loudly(self, tmp_path, caplog):
        cache = DiskResultCache(tmp_path)
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        path = cache.store(key, result)

        path.write_bytes(b"not a pickle at all")
        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            assert cache.load(key) is None
        assert "corrupt disk-cache entry" in caplog.text
        assert not path.exists(), "corrupt entry must be deleted"

        # The runner recomputes and repairs the entry.
        runner = SimulationRunner(CFG, cache_dir=tmp_path)
        assert runner.battery_day("L1", "AZ", 7, 0.81) == result
        assert path.exists()

    def test_wrong_key_payload_rejected(self, tmp_path):
        """A hash collision / tampered file cannot serve a wrong result."""
        cache = DiskResultCache(tmp_path)
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        path = cache.store(key, result)
        entry = pickle.loads(path.read_bytes())
        entry["key"] = ("battery", "H1", "AZ", 7, 0.81, None, config_key(CFG))
        path.write_bytes(pickle.dumps(entry))
        assert cache.load(key) is None

    def test_stale_format_version_rejected(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        path = cache.store(key, result)
        entry = pickle.loads(path.read_bytes())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(entry))
        assert cache.load(key) is None

    def test_pre_v2_cache_directory_purged_loudly(self, tmp_path, caplog):
        """A warm pre-refactor cache (no format marker) is deleted, not served.

        Format-v1 entries live at different content addresses, so without
        the marker sweep they would be silently orphaned on disk and — had
        the addresses collided — silently served.  The constructor must
        instead purge them with a warning and stamp the directory.
        """
        (tmp_path / "deadbeef01.pkl").write_bytes(b"pre-refactor entry")
        (tmp_path / "deadbeef02.pkl").write_bytes(b"pre-refactor entry")

        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            cache = DiskResultCache(tmp_path)

        assert not list(tmp_path.glob("*.pkl")), "stale entries must be deleted"
        assert "deleting 2 stale entr" in caplog.text
        marker = tmp_path / "CACHE_FORMAT"
        assert marker.read_text().strip() == str(CACHE_FORMAT_VERSION)

        # The purged directory is immediately usable again.
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        cache.store(key, result)
        assert cache.load(key) == result

    def test_mismatched_format_marker_purged_loudly(self, tmp_path, caplog):
        (tmp_path / "CACHE_FORMAT").write_text("1\n")
        (tmp_path / "deadbeef01.pkl").write_bytes(b"format-1 entry")

        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            DiskResultCache(tmp_path)

        assert not list(tmp_path.glob("*.pkl"))
        assert "written by format 1" in caplog.text
        assert (tmp_path / "CACHE_FORMAT").read_text().strip() == str(
            CACHE_FORMAT_VERSION
        )

    def test_current_format_marker_preserves_entries(self, tmp_path, caplog):
        key = self.TASK.cache_key(config_key(CFG))
        result = SimulationRunner(CFG).battery_day("L1", "AZ", 7, 0.81)
        DiskResultCache(tmp_path).store(key, result)

        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            warm = DiskResultCache(tmp_path)
        assert caplog.text == ""
        assert warm.load(key) == result

    def test_config_change_addresses_different_entry(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        a = self.TASK.cache_key(config_key(CFG))
        b = self.TASK.cache_key(config_key(SolarCoreConfig(step_minutes=5.0)))
        assert cache.path_for(a) != cache.path_for(b)


class TestWorkerFailures:
    def test_worker_exception_names_grid_coordinates(self):
        # "AZ" canonicalizes to station code "PFCI" at task construction.
        bad = SweepTask("mppt", "NOPE", "AZ", 7)
        with pytest.raises(
            SweepError, match=r"mix=NOPE location=PFCI month=7"
        ):
            run_parallel([bad], CFG, jobs=2)

    def test_prefetch_surfaces_worker_failure(self):
        runner = SimulationRunner(CFG, jobs=2)
        with pytest.raises(SweepError, match=r"location=ORNL month=1"):
            runner.prefetch([SweepTask("mppt", "NOPE", "TN", 1)])


class TestSweepTask:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SweepTask("warp", "H1", "AZ", 7)

    def test_fixed_requires_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            SweepTask("fixed", "H1", "AZ", 7)

    def test_battery_requires_derating(self):
        with pytest.raises(ValueError, match="derating"):
            SweepTask("battery", "H1", "AZ", 7)

    def test_station_aliases_canonicalize_to_one_identity(self):
        """Regression: 'AZ' is an alias of station 'PFCI'; a task built from
        either name must hash to the same cache entry, or alias-addressed
        and runner-addressed caches silently diverge."""
        alias = SweepTask("mppt", "H1", "AZ", 7)
        canonical = SweepTask("mppt", "H1", "PFCI", 7)
        assert alias == canonical
        assert alias.cache_key(config_key(CFG)) == canonical.cache_key(config_key(CFG))

    def test_unknown_location_rejected_at_construction(self):
        with pytest.raises(KeyError, match="ZZZ"):
            SweepTask("mppt", "H1", "ZZZ", 7)

    def test_cache_key_distinguishes_every_coordinate(self):
        cfg_key = config_key(CFG)
        base = SweepTask("mppt", "H1", "AZ", 7, policy="MPPT&Opt", seed=3)
        variants = [
            SweepTask("mppt", "L1", "AZ", 7, policy="MPPT&Opt", seed=3),
            SweepTask("mppt", "H1", "TN", 7, policy="MPPT&Opt", seed=3),
            SweepTask("mppt", "H1", "AZ", 1, policy="MPPT&Opt", seed=3),
            SweepTask("mppt", "H1", "AZ", 7, policy="MPPT&RR", seed=3),
            SweepTask("mppt", "H1", "AZ", 7, policy="MPPT&Opt", seed=4),
            SweepTask("mppt", "H1", "AZ", 7, policy="MPPT&Opt", seed=None),
            SweepTask("fixed", "H1", "AZ", 7, budget_w=75.0, seed=3),
            SweepTask("battery", "H1", "AZ", 7, derating=0.81, seed=3),
        ]
        keys = {v.cache_key(cfg_key) for v in variants}
        keys.add(base.cache_key(cfg_key))
        assert len(keys) == len(variants) + 1


class TestTelemetryFromWorkers:
    def test_worker_counters_and_spans_reach_parent_summary(self):
        tasks = grid_tasks(("L1",), ("AZ", "TN"), (7,))
        with telemetry_session() as tel:
            SimulationRunner(CFG, jobs=2).prefetch(tasks)
            snapshot = tel.snapshot()
        assert snapshot["counters"]["sim.days"] == len(tasks)
        assert snapshot["spans"]["run_day"]["count"] == len(tasks)
        assert snapshot["spans"]["run_day"]["total_s"] > 0.0

    def test_workers_stay_silent_when_parent_hub_disabled(self):
        tasks = [SweepTask("mppt", "L1", "AZ", 7)]
        _, snapshots = run_parallel(tasks, CFG, jobs=2, collect_telemetry=False)
        assert snapshots == []


class TestConfigKeyRoundTrip:
    #: A valid alternate value per SolarCoreConfig field.  The coverage
    #: assertion below makes a newly added config field fail this test
    #: until it gets an alternate — the cache key must cover every field.
    ALTERNATES = {
        "rail_voltage": 1.3,
        "rail_tolerance_v": 0.5,
        "tracking_interval_min": 15.0,
        "supply_change_fraction": 0.2,
        "power_margin": 0.08,
        "max_track_iterations": 65,
        "step_minutes": 2.5,
        "ats_margin": 0.07,
        "utility_level": 3,
        "sensor_averaging": 2,
        "adaptive_margin": True,
        "adaptive_margin_floor": 0.02,
        "realloc_after_track": True,
        "enable_pcpg": False,
        "sensor_staleness_min": 8.0,
        "degraded_budget_fraction": 0.4,
        "solver": "table",
        "chip_spec": "biglittle",
    }

    def test_every_field_alters_the_key(self):
        base_cfg = SolarCoreConfig()
        base_key = config_key(base_cfg)
        field_names = [f.name for f in dataclasses.fields(SolarCoreConfig)]
        assert set(field_names) == set(self.ALTERNATES), (
            "SolarCoreConfig fields changed; update ALTERNATES so the "
            "cache key is proven to cover every field"
        )
        for name in field_names:
            alternate = self.ALTERNATES[name]
            assert alternate != getattr(base_cfg, name), name
            changed = dataclasses.replace(base_cfg, **{name: alternate})
            assert config_key(changed) != base_key, (
                f"changing SolarCoreConfig.{name} must change the cache key"
            )

    def test_equal_configs_equal_keys(self):
        assert config_key(SolarCoreConfig()) == config_key(SolarCoreConfig())


class TestPrefetchIsIdempotent:
    def test_second_prefetch_runs_nothing(self):
        runner = SimulationRunner(CFG, jobs=2)
        tasks = grid_tasks(("L1",), ("AZ",), (7,))
        first = runner.prefetch(tasks)
        cached = runner.cached_runs
        second = runner.prefetch(tasks)
        assert runner.cached_runs == cached
        for task in tasks:
            assert first[task] is second[task]

    def test_mixed_warm_and_cold_tasks(self, tmp_path):
        runner = SimulationRunner(CFG, jobs=2, cache_dir=tmp_path)
        warm_task = SweepTask("mppt", "L1", "AZ", 7)
        runner.prefetch([warm_task])
        cold_task = SweepTask("mppt", "H1", "AZ", 7)
        results = runner.prefetch([warm_task, cold_task])
        assert set(results) == {warm_task, cold_task}

    def test_numpy_arrays_intact_after_pickle_roundtrip(self, tmp_path):
        """The disk format must preserve dtype and bytes exactly."""
        runner = SimulationRunner(CFG, cache_dir=tmp_path)
        day = runner.day("L1", "AZ", 7)
        warm = SimulationRunner(CFG, cache_dir=tmp_path).day("L1", "AZ", 7)
        for name in ARRAY_FIELDS:
            assert getattr(day, name).dtype == getattr(warm, name).dtype
        assert isinstance(warm.on_solar[0], np.bool_)
