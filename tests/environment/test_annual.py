"""Unit tests for year-round environment interpolation."""

import pytest

from repro.environment.annual import (
    annual_insolation,
    generate_month_trace,
    interpolated_regime,
    interpolated_temps,
)
from repro.environment.locations import GOLDEN_CO, PHOENIX_AZ


class TestInterpolatedRegime:
    def test_anchor_months_pass_through(self):
        for month in (1, 4, 7, 10):
            assert interpolated_regime(PHOENIX_AZ, month) is PHOENIX_AZ.regimes[month]

    def test_midpoint_blend(self):
        # February/March sit between the Jan and Apr anchors.
        jan = PHOENIX_AZ.regimes[1]
        apr = PHOENIX_AZ.regimes[4]
        feb = interpolated_regime(PHOENIX_AZ, 2)
        lo, hi = sorted((jan.events_per_hour, apr.events_per_hour))
        assert lo <= feb.events_per_hour <= hi

    def test_wraparound_months(self):
        # November/December blend October toward January.
        oct_r = PHOENIX_AZ.regimes[10]
        jan_r = PHOENIX_AZ.regimes[1]
        dec = interpolated_regime(PHOENIX_AZ, 12)
        lo, hi = sorted((oct_r.base_clearness, jan_r.base_clearness))
        assert lo <= dec.base_clearness <= hi

    def test_rejects_bad_month(self):
        with pytest.raises(ValueError):
            interpolated_regime(PHOENIX_AZ, 13)


class TestInterpolatedTemps:
    def test_anchor_passthrough(self):
        assert interpolated_temps(GOLDEN_CO, 7) == GOLDEN_CO.temps_c[7]

    def test_summer_warmer_than_winter(self):
        t_min_jun, t_max_jun = interpolated_temps(GOLDEN_CO, 6)
        t_min_dec, t_max_dec = interpolated_temps(GOLDEN_CO, 12)
        assert t_max_jun > t_max_dec
        assert t_min_jun > t_min_dec

    def test_ordering_preserved(self):
        for month in range(1, 13):
            t_min, t_max = interpolated_temps(GOLDEN_CO, month)
            assert t_min < t_max


class TestGenerateMonthTrace:
    def test_anchor_months_match_standard_generator(self):
        from repro.environment.irradiance import generate_trace
        import numpy as np

        a = generate_month_trace(PHOENIX_AZ, 7, step_minutes=5.0)
        b = generate_trace(PHOENIX_AZ, 7, step_minutes=5.0)
        assert np.array_equal(a.irradiance, b.irradiance)

    def test_interpolated_month_generates(self):
        trace = generate_month_trace(PHOENIX_AZ, 6, step_minutes=5.0)
        assert trace.daily_insolation_kwh_m2() > 3.0


class TestAnnualInsolation:
    def test_twelve_months(self):
        yearly = annual_insolation(PHOENIX_AZ, step_minutes=10.0)
        assert sorted(yearly) == list(range(1, 13))
        assert all(v > 0 for v in yearly.values())

    def test_summer_beats_winter_at_phoenix(self):
        yearly = annual_insolation(PHOENIX_AZ, step_minutes=10.0)
        assert max(yearly[5], yearly[6], yearly[7]) > yearly[12]
