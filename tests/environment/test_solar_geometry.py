"""Unit tests for solar geometry and clear-sky irradiance."""

import math

import pytest

from repro.environment.solar_geometry import (
    air_mass,
    clear_sky_ghi,
    clear_sky_poa,
    cos_incidence_tilted,
    cos_zenith,
    declination_deg,
    hour_angle_deg,
    mid_month_day_of_year,
)


class TestDeclination:
    def test_summer_solstice_near_positive_max(self):
        # Around June 21 (day 172) declination approaches +23.45.
        assert declination_deg(172) == pytest.approx(23.45, abs=0.2)

    def test_winter_solstice_near_negative_max(self):
        assert declination_deg(355) == pytest.approx(-23.45, abs=0.2)

    def test_equinox_near_zero(self):
        assert abs(declination_deg(81)) < 1.5  # around March 22


class TestHourAngle:
    def test_zero_at_solar_noon(self):
        assert hour_angle_deg(12.0) == 0.0

    def test_fifteen_degrees_per_hour(self):
        assert hour_angle_deg(13.0) == 15.0
        assert hour_angle_deg(10.0) == -30.0


class TestCosZenith:
    def test_highest_at_noon(self):
        noon = cos_zenith(33.45, 196, 12.0)
        morning = cos_zenith(33.45, 196, 8.0)
        assert noon > morning

    def test_negative_at_night(self):
        assert cos_zenith(33.45, 196, 0.0) < 0.0

    def test_higher_latitude_lower_sun_in_winter(self):
        low_lat = cos_zenith(25.0, 15, 12.0)
        high_lat = cos_zenith(45.0, 15, 12.0)
        assert low_lat > high_lat


class TestAirMass:
    def test_unity_at_zenith(self):
        assert air_mass(1.0) == pytest.approx(1.0, rel=0.01)

    def test_infinite_below_horizon(self):
        assert air_mass(0.0) == math.inf
        assert air_mass(-0.5) == math.inf

    def test_increases_toward_horizon(self):
        assert air_mass(0.2) > air_mass(0.8)


class TestClearSky:
    def test_zero_at_night(self):
        assert clear_sky_ghi(33.45, 196, 2.0) == 0.0
        assert clear_sky_poa(33.45, 196, 2.0) == 0.0

    def test_summer_noon_ghi_plausible(self):
        ghi = clear_sky_ghi(33.45, 196, 12.0)
        assert 850.0 < ghi < 1100.0

    def test_poa_beats_ghi_in_winter(self):
        # Latitude tilt strongly boosts winter collection.
        ghi = clear_sky_ghi(40.0, 15, 12.0)
        poa = clear_sky_poa(40.0, 15, 12.0)
        assert poa > ghi * 1.3

    def test_tilt_defaults_to_latitude(self):
        explicit = clear_sky_poa(33.45, 196, 12.0, tilt_deg=33.45)
        default = clear_sky_poa(33.45, 196, 12.0)
        assert default == pytest.approx(explicit)

    def test_incidence_cosine_is_effective_latitude_zenith(self):
        assert cos_incidence_tilted(40.0, 40.0, 105, 10.0) == pytest.approx(
            cos_zenith(0.0, 105, 10.0)
        )


class TestMidMonthDay:
    def test_known_months(self):
        assert mid_month_day_of_year(1) == 15
        assert mid_month_day_of_year(7) == 196

    def test_rejects_invalid_month(self):
        with pytest.raises(ValueError):
            mid_month_day_of_year(13)
