"""Unit tests for the day-trace generator (the MIDC substitute)."""

import numpy as np
import pytest

from repro.environment.irradiance import default_seed, generate_trace
from repro.environment.locations import ALL_LOCATIONS, PHOENIX_AZ, OAK_RIDGE_TN
from repro.environment.trace import DAYTIME_END_MIN, DAYTIME_START_MIN


class TestGenerateTrace:
    def test_covers_daytime_window(self):
        trace = generate_trace(PHOENIX_AZ, 7)
        assert trace.minutes[0] == DAYTIME_START_MIN
        assert trace.minutes[-1] == pytest.approx(DAYTIME_END_MIN)

    def test_default_one_minute_cadence(self):
        trace = generate_trace(PHOENIX_AZ, 7)
        assert trace.step_minutes == 1.0
        assert len(trace.minutes) == 601

    def test_deterministic_default_seed(self):
        a = generate_trace(PHOENIX_AZ, 1)
        b = generate_trace(PHOENIX_AZ, 1)
        assert np.array_equal(a.irradiance, b.irradiance)
        assert np.array_equal(a.ambient_c, b.ambient_c)

    def test_explicit_seed_changes_weather(self):
        a = generate_trace(PHOENIX_AZ, 1, seed=1)
        b = generate_trace(PHOENIX_AZ, 1, seed=2)
        assert not np.array_equal(a.irradiance, b.irradiance)

    def test_default_seed_distinct_per_station_month(self):
        seeds = {
            default_seed(loc, month)
            for loc in ALL_LOCATIONS
            for month in (1, 4, 7, 10)
        }
        assert len(seeds) == 16

    def test_rejects_unknown_month(self):
        with pytest.raises(ValueError, match="month"):
            generate_trace(PHOENIX_AZ, 13)
        with pytest.raises(ValueError, match="month"):
            generate_trace(PHOENIX_AZ, 0)

    def test_non_anchor_month_interpolates(self):
        trace = generate_trace(PHOENIX_AZ, 6)
        assert trace.peak_irradiance() > 0.0
        # June's regime blends the April and July anchors.
        regime = PHOENIX_AZ.regime_for(6)
        lo = min(PHOENIX_AZ.regimes[4].base_clearness,
                 PHOENIX_AZ.regimes[7].base_clearness)
        hi = max(PHOENIX_AZ.regimes[4].base_clearness,
                 PHOENIX_AZ.regimes[7].base_clearness)
        assert lo <= regime.base_clearness <= hi

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError, match="step_minutes"):
            generate_trace(PHOENIX_AZ, 7, step_minutes=0.0)

    def test_custom_step_minutes(self):
        trace = generate_trace(PHOENIX_AZ, 7, step_minutes=5.0)
        assert trace.step_minutes == 5.0

    def test_summer_noon_irradiance_realistic(self):
        trace = generate_trace(PHOENIX_AZ, 7)
        assert 700.0 < trace.peak_irradiance() < 1150.0

    def test_resource_ordering_matches_table2(self):
        """Averaged over the evaluated months, station insolation follows
        the paper's Table 2 resource classes."""
        means = []
        for loc in ALL_LOCATIONS:
            vals = [
                generate_trace(loc, m).daily_insolation_kwh_m2()
                for m in (1, 4, 7, 10)
            ]
            means.append(float(np.mean(vals)))
        assert means[0] > means[1] > means[3]  # AZ > CO > TN
        assert means[2] > means[3]  # NC > TN

    def test_oak_ridge_is_low_resource(self):
        vals = [
            generate_trace(OAK_RIDGE_TN, m).daily_insolation_kwh_m2()
            for m in (1, 4, 7, 10)
        ]
        assert float(np.mean(vals)) < 4.0

    def test_label_mentions_station(self):
        trace = generate_trace(PHOENIX_AZ, 7)
        assert "PFCI" in trace.label
