"""Unit tests for the stochastic cloud field generator."""

import numpy as np
import pytest

from repro.environment.locations import CloudRegime
from repro.environment.weather import clearness_series


def minutes_axis():
    return np.arange(450.0, 1050.0, 1.0)


class TestClearnessSeries:
    def test_bounded(self):
        regime = CloudRegime(0.8, 2.0, 0.7, 30.0, 0.1)
        rng = np.random.default_rng(7)
        series = clearness_series(minutes_axis(), regime, rng)
        assert np.all(series >= 0.05)
        assert np.all(series <= 1.0)

    def test_deterministic_for_seed(self):
        regime = CloudRegime(0.9, 1.0, 0.5, 20.0, 0.05)
        a = clearness_series(minutes_axis(), regime, np.random.default_rng(42))
        b = clearness_series(minutes_axis(), regime, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        regime = CloudRegime(0.9, 1.0, 0.5, 20.0, 0.05)
        a = clearness_series(minutes_axis(), regime, np.random.default_rng(1))
        b = clearness_series(minutes_axis(), regime, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_clear_regime_stays_near_base(self):
        regime = CloudRegime(0.99, 0.0, 0.3, 15.0, 0.0)
        series = clearness_series(minutes_axis(), regime, np.random.default_rng(3))
        assert np.all(series == pytest.approx(0.99))

    def test_cloudier_regime_lower_mean(self):
        clear = CloudRegime(0.95, 0.2, 0.4, 15.0, 0.02)
        cloudy = CloudRegime(0.75, 2.0, 0.7, 35.0, 0.08)
        mean_clear = np.mean(
            clearness_series(minutes_axis(), clear, np.random.default_rng(5))
        )
        mean_cloudy = np.mean(
            clearness_series(minutes_axis(), cloudy, np.random.default_rng(5))
        )
        assert mean_cloudy < mean_clear

    def test_volatility_raises_variability(self):
        calm = CloudRegime(0.9, 0.0, 0.5, 20.0, 0.0)
        jittery = CloudRegime(0.9, 0.0, 0.5, 20.0, 0.1)
        std_calm = np.std(
            clearness_series(minutes_axis(), calm, np.random.default_rng(9))
        )
        std_jittery = np.std(
            clearness_series(minutes_axis(), jittery, np.random.default_rng(9))
        )
        assert std_jittery > std_calm
