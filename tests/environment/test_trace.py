"""Unit tests for the environment trace container."""

import numpy as np
import pytest

from repro.environment.trace import (
    DAYTIME_END_MIN,
    DAYTIME_START_MIN,
    EnvironmentTrace,
)


def make_trace(n=11):
    minutes = np.linspace(0, 100, n)
    irr = np.linspace(0, 500, n)
    temp = np.full(n, 20.0)
    return EnvironmentTrace(minutes, irr, temp, label="test")


class TestValidation:
    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            EnvironmentTrace(np.array([0.0]), np.array([1.0]), np.array([20.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            EnvironmentTrace(
                np.array([0.0, 1.0]), np.array([1.0]), np.array([20.0, 20.0])
            )

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            EnvironmentTrace(
                np.array([0.0, 0.0]), np.array([1.0, 1.0]), np.array([20.0, 20.0])
            )

    def test_rejects_negative_irradiance(self):
        with pytest.raises(ValueError, match="non-negative"):
            EnvironmentTrace(
                np.array([0.0, 1.0]), np.array([-1.0, 1.0]), np.array([20.0, 20.0])
            )


class TestAccessors:
    def test_step_and_duration(self):
        trace = make_trace()
        assert trace.step_minutes == pytest.approx(10.0)
        assert trace.duration_minutes == pytest.approx(100.0)

    def test_sample_interpolates(self):
        trace = make_trace()
        g, t = trace.sample(5.0)
        assert g == pytest.approx(25.0)
        assert t == pytest.approx(20.0)

    def test_sample_outside_raises(self):
        trace = make_trace()
        with pytest.raises(ValueError, match="outside"):
            trace.sample(-1.0)
        with pytest.raises(ValueError, match="outside"):
            trace.sample(101.0)

    def test_daily_insolation(self):
        # Constant 600 W/m^2 over 60 minutes = 0.6 kWh/m^2.
        minutes = np.array([0.0, 30.0, 60.0])
        trace = EnvironmentTrace(minutes, np.full(3, 600.0), np.full(3, 20.0))
        assert trace.daily_insolation_kwh_m2() == pytest.approx(0.6)

    def test_peak_irradiance(self):
        assert make_trace().peak_irradiance() == pytest.approx(500.0)

    def test_daytime_window_constants(self):
        assert DAYTIME_START_MIN == 450
        assert DAYTIME_END_MIN == 1050


class TestSampleBoundaries:
    def test_endpoints_are_inclusive(self):
        trace = make_trace()
        assert trace.sample(0.0) == (pytest.approx(0.0), pytest.approx(20.0))
        assert trace.sample(100.0) == (pytest.approx(500.0), pytest.approx(20.0))

    def test_error_message_names_the_range(self):
        with pytest.raises(ValueError, match=r"\[0\.0, 100\.0\]"):
            make_trace().sample(100.5)
