"""Unit tests for the diurnal temperature model."""

import numpy as np
import pytest

from repro.environment.temperature import diurnal_temperature


class TestDiurnalTemperature:
    def test_minimum_at_six_am(self):
        minutes = np.array([6 * 60.0])
        t = diurnal_temperature(minutes, 5.0, 25.0)
        assert t[0] == pytest.approx(5.0)

    def test_maximum_at_three_pm(self):
        minutes = np.array([15 * 60.0])
        t = diurnal_temperature(minutes, 5.0, 25.0)
        assert t[0] == pytest.approx(25.0)

    def test_monotone_rise_through_morning(self):
        minutes = np.arange(6 * 60.0, 15 * 60.0, 30.0)
        t = diurnal_temperature(minutes, 5.0, 25.0)
        assert all(b > a for a, b in zip(t, t[1:]))

    def test_bounded_by_min_max(self):
        minutes = np.arange(450.0, 1050.0, 1.0)
        t = diurnal_temperature(minutes, -3.0, 17.0)
        assert np.all(t >= -3.0 - 1e-9)
        assert np.all(t <= 17.0 + 1e-9)

    def test_cloud_damping_reduces_peak(self):
        minutes = np.array([15 * 60.0])
        clear = diurnal_temperature(minutes, 5.0, 25.0, mean_clearness=1.0)
        overcast = diurnal_temperature(minutes, 5.0, 25.0, mean_clearness=0.0)
        assert overcast[0] < clear[0]

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            diurnal_temperature(np.array([600.0]), 25.0, 5.0)
