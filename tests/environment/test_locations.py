"""Unit tests for the MIDC station definitions."""

import pytest

from repro.environment.locations import (
    ALL_LOCATIONS,
    EVALUATED_MONTHS,
    CloudRegime,
    Location,
    location_by_code,
)


class TestCloudRegime:
    def test_rejects_bad_clearness(self):
        with pytest.raises(ValueError):
            CloudRegime(0.0, 1.0, 0.5, 20.0, 0.05)
        with pytest.raises(ValueError):
            CloudRegime(1.5, 1.0, 0.5, 20.0, 0.05)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            CloudRegime(0.9, 1.0, 1.5, 20.0, 0.05)


class TestLocations:
    def test_four_stations(self):
        assert len(ALL_LOCATIONS) == 4
        assert [loc.code for loc in ALL_LOCATIONS] == ["PFCI", "BMS", "ECSU", "ORNL"]

    def test_every_station_covers_evaluated_months(self):
        for loc in ALL_LOCATIONS:
            for month in EVALUATED_MONTHS:
                assert month in loc.regimes
                assert month in loc.temps_c

    def test_potential_ordering_matches_table2(self):
        potentials = [loc.potential for loc in ALL_LOCATIONS]
        assert potentials == ["Excellent", "Good", "Moderate", "Low"]

    def test_lookup_by_code_and_state(self):
        assert location_by_code("PFCI").name == "Phoenix, AZ"
        assert location_by_code("az").code == "PFCI"
        assert location_by_code("TN").code == "ORNL"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown station"):
            location_by_code("XYZ")

    def test_location_validation_rejects_missing_month(self):
        loc = ALL_LOCATIONS[0]
        partial = {m: r for m, r in loc.regimes.items() if m != 7}
        with pytest.raises(ValueError, match="missing cloud regime"):
            Location("X", "X", 30.0, "Low", partial, loc.temps_c)
