"""Unit tests for the NREL MIDC CSV loader."""

import io

import pytest

from repro.environment.midc import MIDCFormatError, load_midc_csv

GOOD_CSV = """DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]
1/15/2009,7:30,102.4,3.2
1/15/2009,7:31,105.1,3.3
1/15/2009,7:32,108.0,3.4
1/15/2009,12:00,655.0,11.8
1/15/2009,17:30,88.2,9.1
1/15/2009,18:30,0.0,8.0
"""


class TestLoadMIDC:
    def test_loads_good_csv(self):
        trace = load_midc_csv(io.StringIO(GOOD_CSV), label="ORNL 1/15")
        assert trace.label == "ORNL 1/15"
        assert trace.minutes[0] == 450.0
        assert trace.irradiance[0] == pytest.approx(102.4)
        assert trace.ambient_c[0] == pytest.approx(3.2)

    def test_clips_to_daytime_window(self):
        trace = load_midc_csv(io.StringIO(GOOD_CSV))
        # The 18:30 row (minute 1110) is outside the 450-1050 window.
        assert trace.minutes[-1] == 1050.0

    def test_no_clip(self):
        trace = load_midc_csv(io.StringIO(GOOD_CSV), clip_window=None)
        assert trace.minutes[-1] == 1110.0

    def test_negative_ghi_clamped(self):
        csv_text = (
            "MST,Global Horizontal [W/m^2],Air Temp [C]\n"
            "7:30,-2.0,5.0\n7:40,50.0,5.5\n"
        )
        trace = load_midc_csv(io.StringIO(csv_text))
        assert trace.irradiance[0] == 0.0

    def test_loads_from_path(self, tmp_path):
        path = tmp_path / "midc.csv"
        path.write_text(GOOD_CSV)
        trace = load_midc_csv(path)
        assert len(trace.minutes) >= 2

    def test_feeds_simulation(self):
        from repro.core.config import SolarCoreConfig
        from repro.core.simulation import run_day
        from repro.environment.locations import OAK_RIDGE_TN

        rows = ["MST,Global Horizontal [W/m^2],Air Temp [C]"]
        for minute in range(450, 1051, 10):
            rows.append(f"{minute // 60}:{minute % 60:02d},400.0,10.0")
        trace = load_midc_csv(io.StringIO("\n".join(rows)))
        day = run_day(
            "L1", OAK_RIDGE_TN, 1, "MPPT&Opt",
            config=SolarCoreConfig(step_minutes=10.0), trace=trace,
        )
        assert day.energy_utilization > 0.5

    @pytest.mark.parametrize("text,match", [
        ("", "empty"),
        ("A,B,C\n1,2,3\n", "columns"),
        ("MST,Global,Temp\nxx:yy,1,2\n1:00,3,4\n", "bad row"),
        ("MST,Global,Temp\n7:30,1,2\n", "fewer than two"),
        ("MST,Global,Temp\n25:00,1,2\n8:00,3,4\n", "bad row"),
    ])
    def test_rejects_malformed(self, text, match):
        with pytest.raises(MIDCFormatError, match=match):
            load_midc_csv(io.StringIO(text))

    def test_rejects_empty_window(self):
        csv_text = "MST,Global,Temp\n3:00,0,1\n4:00,0,1\n"
        with pytest.raises(MIDCFormatError, match="window"):
            load_midc_csv(io.StringIO(csv_text))

    def test_skips_blank_lines(self):
        csv_text = "MST,Global,Temp\n7:30,10,5\n\n8:30,20,6\n"
        trace = load_midc_csv(io.StringIO(csv_text))
        assert len(trace.minutes) == 2
