"""Unit tests for EPI measurement (the Table 5 methodology closure)."""

import pytest

from repro.multicore.dvfs import default_dvfs_table
from repro.multicore.power_model import CorePowerModel
from repro.workloads.benchmarks import BENCHMARKS, EPI_CLASSES, benchmark
from repro.workloads.characterization import characterize, measure_epi


@pytest.fixture(scope="module")
def model():
    return CorePowerModel(table=default_dvfs_table())


class TestMeasureEPI:
    def test_measured_epi_matches_configured(self, model):
        """The measurement loop recovers the configured EPI: energy and
        instructions both integrate the same phase trace, so the quotient
        is exact regardless of phase behaviour."""
        for name in ("art", "gcc", "swim"):
            measurement = measure_epi(benchmark(name), model)
            assert measurement.epi_nj == pytest.approx(
                benchmark(name).epi_nj, rel=1e-9
            )

    def test_mean_ipc_near_base(self, model):
        measurement = measure_epi(benchmark("gcc"), model, interval_minutes=400.0)
        assert measurement.mean_ipc == pytest.approx(
            benchmark("gcc").base_ipc, rel=0.25
        )

    def test_rejects_bad_interval(self, model):
        with pytest.raises(ValueError):
            measure_epi(benchmark("gcc"), model, interval_minutes=0.0)


class TestCharacterize:
    def test_reproduces_table5_classes(self, model):
        """Measured classification equals the paper's Table 5 groupings."""
        measurements = characterize(model)
        for cls, names in EPI_CLASSES.items():
            for name in names:
                assert measurements[name].epi_class == cls, name

    def test_covers_all_benchmarks(self, model):
        assert set(characterize(model)) == set(BENCHMARKS)
