"""Unit tests for the Table 5 multi-programmed mixes."""

import pytest

from repro.workloads.benchmarks import EPI_CLASSES
from repro.workloads.mixes import ALL_MIX_NAMES, MIXES, mix


class TestMixDefinitions:
    def test_ten_mixes(self):
        assert len(MIXES) == 10
        assert set(ALL_MIX_NAMES) == set(MIXES)

    def test_every_mix_has_eight_cores(self):
        for name in ALL_MIX_NAMES:
            assert mix(name).n_cores == 8

    def test_homogeneous_mixes(self):
        assert mix("H1").is_homogeneous
        assert mix("M1").is_homogeneous
        assert mix("L1").is_homogeneous
        assert not mix("H2").is_homogeneous
        assert not mix("HM2").is_homogeneous

    def test_h1_is_art_times_8(self):
        assert [b.name for b in mix("H1").benchmarks] == ["art"] * 8

    def test_hm2_composition(self):
        names = [b.name for b in mix("HM2").benchmarks]
        assert names == ["bzip", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"]

    def test_ml2_composition(self):
        names = [b.name for b in mix("ML2").benchmarks]
        assert names == ["gcc", "mcf", "gap", "vpr", "mesa", "equake", "lucas", "swim"]

    def test_class_pure_mixes_use_their_class(self):
        for prefix, cls in (("H", "high"), ("M", "moderate"), ("L", "low")):
            for variant in ("1", "2"):
                for bench in mix(prefix + variant).benchmarks:
                    assert bench.epi_class == cls

    def test_hm1_is_half_high_half_moderate(self):
        classes = [b.epi_class for b in mix("HM1").benchmarks]
        assert classes == ["high"] * 4 + ["moderate"] * 4

    def test_lookup_case_insensitive(self):
        assert mix("hm2").name == "HM2"

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError, match="unknown mix"):
            mix("XL9")
