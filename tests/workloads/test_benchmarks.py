"""Unit tests for the SPEC2000-class benchmark definitions."""

import pytest

from repro.workloads.benchmarks import (
    BENCHMARKS,
    EPI_CLASSES,
    Benchmark,
    benchmark,
    epi_class_of,
)


class TestEPIClassification:
    def test_thresholds(self):
        assert epi_class_of(15.0) == "high"
        assert epi_class_of(14.9) == "moderate"
        assert epi_class_of(8.1) == "moderate"
        assert epi_class_of(8.0) == "low"

    def test_paper_groupings(self):
        for cls, names in EPI_CLASSES.items():
            for name in names:
                assert benchmark(name).epi_class == cls, name


class TestBenchmarkSet:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARKS) == 12

    def test_lookup_by_name(self):
        assert benchmark("art").name == "art"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark("doom")

    def test_high_epi_swing_more_than_low(self):
        high_var = min(benchmark(n).ipc_variability for n in EPI_CLASSES["high"])
        low_var = max(benchmark(n).ipc_variability for n in EPI_CLASSES["low"])
        assert high_var > low_var

    def test_low_epi_benchmarks_more_efficient(self):
        """Throughput per watt at max V/F ranks low < moderate < high EPI."""

        def perf_per_watt(name: str) -> float:
            b = benchmark(name)
            return (b.base_ipc * 2.5) / (b.epi_nj * b.base_ipc * 2.5)

        assert perf_per_watt("mesa") > perf_per_watt("gcc") > perf_per_watt("art")


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"epi_nj": 0.0, "base_ipc": 1.0, "ipc_variability": 0.1},
        {"epi_nj": 10.0, "base_ipc": 0.0, "ipc_variability": 0.1},
        {"epi_nj": 10.0, "base_ipc": 1.0, "ipc_variability": 1.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Benchmark("x", **kwargs)
