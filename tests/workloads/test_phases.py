"""Unit tests for the phase-level IPC trace generator."""

import pytest

from repro.workloads.benchmarks import benchmark
from repro.workloads.phases import PhaseTrace


class TestPhaseTrace:
    def test_deterministic_for_seed(self):
        a = PhaseTrace(benchmark("art"), seed=5)
        b = PhaseTrace(benchmark("art"), seed=5)
        for minute in (0.0, 17.0, 123.0, 599.0):
            assert a.ipc_at(minute) == b.ipc_at(minute)

    def test_default_seed_stable_per_benchmark(self):
        a = PhaseTrace(benchmark("gcc"))
        b = PhaseTrace(benchmark("gcc"))
        assert a.ipc_at(42.0) == b.ipc_at(42.0)

    def test_different_seeds_differ(self):
        a = PhaseTrace(benchmark("art"), seed=1)
        b = PhaseTrace(benchmark("art"), seed=2)
        samples_a = [a.ipc_at(m) for m in range(0, 600, 20)]
        samples_b = [b.ipc_at(m) for m in range(0, 600, 20)]
        assert samples_a != samples_b

    def test_ipc_positive_and_bounded(self):
        trace = PhaseTrace(benchmark("art"), seed=3)
        base = benchmark("art").base_ipc
        for minute in range(0, 600, 5):
            ipc = trace.ipc_at(float(minute))
            assert 0.2 * base <= ipc <= 2.0 * base

    def test_piecewise_constant_within_phase(self):
        trace = PhaseTrace(benchmark("swim"), seed=9)
        # Sample very close together: overwhelmingly the same phase.
        assert trace.ipc_at(100.0) == trace.ipc_at(100.001)

    def test_clamps_beyond_duration(self):
        trace = PhaseTrace(benchmark("gcc"), duration_minutes=50.0, seed=1)
        assert trace.ipc_at(1e6) == trace.ipc_at(49.999) or trace.ipc_at(1e6) > 0

    def test_rejects_negative_time(self):
        trace = PhaseTrace(benchmark("gcc"), seed=1)
        with pytest.raises(ValueError):
            trace.ipc_at(-1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            PhaseTrace(benchmark("gcc"), duration_minutes=0.0)

    def test_variability_drives_spread(self):
        import numpy as np

        art = PhaseTrace(benchmark("art"), seed=4)  # variability 0.28
        mesa = PhaseTrace(benchmark("mesa"), seed=4)  # variability 0.08
        art_vals = np.array([art.ipc_at(float(m)) for m in range(0, 600, 2)])
        mesa_vals = np.array([mesa.ipc_at(float(m)) for m in range(0, 600, 2)])
        assert (art_vals.std() / art_vals.mean()) > (
            mesa_vals.std() / mesa_vals.mean()
        )

    def test_phase_count_positive(self):
        assert PhaseTrace(benchmark("gcc"), seed=1).n_phases > 10
