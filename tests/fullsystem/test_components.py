"""Unit tests for the full-system tunable components."""

import pytest

from repro.fullsystem.disk import DRPMDisk
from repro.fullsystem.memory import DRAMSystem, MemoryState
from repro.fullsystem.nic import LinkRate, NetworkInterface


class TestMemory:
    def test_default_ladder(self):
        mem = DRAMSystem()
        assert mem.n_levels == 5
        assert mem.level == mem.n_levels - 1  # starts fully active

    def test_power_monotone_in_level(self):
        mem = DRAMSystem()
        powers = [mem.power_at_level(i) for i in range(mem.n_levels)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_service_capped_by_demand(self):
        mem = DRAMSystem(demand_gbs=2.0)
        assert mem.service_at_level(mem.n_levels - 1) == pytest.approx(2.0)

    def test_self_refresh_serves_nothing(self):
        mem = DRAMSystem()
        assert mem.service_at_level(0) == 0.0

    def test_activity_energy_added(self):
        lazy = DRAMSystem(energy_per_gb_j=0.0)
        busy = DRAMSystem(energy_per_gb_j=1.0)
        top = lazy.n_levels - 1
        assert busy.power_at_level(top) > lazy.power_at_level(top)

    def test_rejects_single_state(self):
        with pytest.raises(ValueError):
            DRAMSystem(states=[MemoryState("only", 1.0, 1.0)])

    def test_level_bounds(self):
        mem = DRAMSystem()
        with pytest.raises(IndexError):
            mem.set_level(99)


class TestDisk:
    def test_cubic_spindle_power(self):
        disk = DRPMDisk()
        # Half speed -> spindle power falls by ~8x.
        full = disk.power_at_level(disk.n_levels - 1) - disk.idle_electronics_w
        half_rpm_ratio = disk.rpm_levels[1] / disk.rpm_levels[-1]
        expected = full * half_rpm_ratio**3
        measured = disk.power_at_level(1) - disk.idle_electronics_w
        assert measured == pytest.approx(expected)

    def test_transfer_scales_with_rpm(self):
        disk = DRPMDisk(demand_mbs=1000.0)  # never capped by demand
        services = [disk.service_at_level(i) for i in range(disk.n_levels)]
        assert all(b > a for a, b in zip(services, services[1:]))

    def test_service_capped_by_demand(self):
        disk = DRPMDisk(demand_mbs=10.0)
        assert disk.service_at_level(disk.n_levels - 1) == pytest.approx(10.0)

    @pytest.mark.parametrize("kwargs", [
        {"rpm_levels": (7200,)},
        {"rpm_levels": (7200, 5400)},
        {"power_at_max_w": 1.0, "idle_electronics_w": 2.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DRPMDisk(**kwargs)


class TestNIC:
    def test_default_rates(self):
        nic = NetworkInterface()
        assert nic.n_levels == 3

    def test_power_monotone(self):
        nic = NetworkInterface()
        powers = [nic.power_at_level(i) for i in range(nic.n_levels)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_service_capped_by_link(self):
        nic = NetworkInterface(demand_mbps=400.0)
        assert nic.service_at_level(0) == pytest.approx(10.0)
        assert nic.service_at_level(2) == pytest.approx(400.0)

    def test_rejects_descending_rates(self):
        with pytest.raises(ValueError):
            NetworkInterface(rates=(LinkRate(1000, 2.0), LinkRate(100, 0.5)))


class TestRatios:
    def test_upgrade_ratio_none_at_top(self):
        mem = DRAMSystem()
        mem.set_level(mem.n_levels - 1)
        assert mem.upgrade_ratio() is None

    def test_downgrade_ratio_none_at_bottom(self):
        mem = DRAMSystem()
        mem.set_level(0)
        assert mem.downgrade_ratio() is None

    def test_ratios_positive_midrange(self):
        disk = DRPMDisk()
        disk.set_level(2)
        assert disk.upgrade_ratio() > 0
        assert disk.downgrade_ratio() > 0
