"""Integration tests for the full-system day simulation."""

import numpy as np
import pytest

from repro.core.config import SolarCoreConfig
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.fullsystem.simulation import default_server, run_day_fullsystem
from repro.workloads.mixes import mix


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


@pytest.fixture(scope="module")
def az_day(cfg):
    return run_day_fullsystem("ML2", PHOENIX_AZ, 7, config=cfg)


class TestFullSystemDay:
    def test_consumption_bounded_by_budget(self, az_day):
        solar = az_day.on_solar
        assert np.all(az_day.consumed_w[solar] <= az_day.mpp_w[solar] + 1e-6)

    def test_grid_power_zero_on_solar(self, az_day):
        assert np.all(az_day.utility_w[az_day.on_solar] == 0.0)

    def test_utilization_reasonable(self, az_day):
        assert 0.5 < az_day.energy_utilization <= 1.0

    def test_utility_metric_tracks_supply(self, az_day):
        """System service level rises and falls with the solar budget."""
        mask = az_day.on_solar
        corr = np.corrcoef(az_day.mpp_w[mask], az_day.system_utility[mask])[0, 1]
        assert corr > 0.5

    def test_low_resource_site_worse(self, cfg):
        az = run_day_fullsystem("ML2", PHOENIX_AZ, 7, config=cfg)
        tn = run_day_fullsystem("ML2", OAK_RIDGE_TN, 1, config=cfg)
        assert tn.effective_duration_fraction < az.effective_duration_fraction

    def test_custom_server_used(self, cfg):
        server = default_server(mix("ML2"))
        day = run_day_fullsystem("ML2", PHOENIX_AZ, 7, config=cfg, server=server)
        # The simulation drove the provided server object.
        assert server.chip.retired_ginst > 0.0

    def test_metadata(self, az_day):
        assert az_day.mix_name == "ML2"
        assert az_day.location_code == "PFCI"
        assert az_day.step_minutes == 5.0
