"""Unit tests for full-system load coordination."""

import pytest

from repro.fullsystem.disk import DRPMDisk
from repro.fullsystem.memory import DRAMSystem
from repro.fullsystem.nic import NetworkInterface
from repro.fullsystem.system import FullSystemLoad, SystemTuner
from repro.multicore.chip import MultiCoreChip
from repro.workloads.mixes import mix


@pytest.fixture
def system():
    chip = MultiCoreChip(mix("ML2"))
    chip.set_all_levels(0)
    server = FullSystemLoad(
        chip, [DRAMSystem(), DRPMDisk(), NetworkInterface()]
    )
    for component in server.components:
        component.set_level(0)
    return server


class TestFullSystemLoad:
    def test_total_power_sums_components(self, system):
        expected = system.chip.total_power_at(0.0) + sum(
            c.power for c in system.components
        )
        assert system.total_power_at(0.0) == pytest.approx(expected)

    def test_floor_power(self, system):
        floor = system.floor_power_at(0.0)
        assert floor < system.total_power_at(0.0) + 1e-9
        assert floor > system.chip.floor_power_at(0.0)

    def test_effective_resistance(self, system):
        r = system.effective_resistance(0.0)
        assert r == pytest.approx(144.0 / system.total_power_at(0.0))

    def test_duplicate_component_names_rejected(self):
        chip = MultiCoreChip(mix("H1"))
        with pytest.raises(ValueError, match="duplicate"):
            FullSystemLoad(chip, [DRPMDisk(), DRPMDisk()])

    def test_utility_increases_with_levels(self, system):
        low = system.utility_at(0.0)
        system.chip.set_all_levels(5)
        for component in system.components:
            component.set_level(component.n_levels - 1)
        assert system.utility_at(0.0) > low

    def test_utility_bounded_by_weight_sum(self, system):
        system.chip.set_all_levels(5)
        for component in system.components:
            component.set_level(component.n_levels - 1)
        assert system.utility_at(0.0) <= sum(system.weights.values()) + 1e-6


class TestSystemTuner:
    def test_increase_moves_exactly_one_knob(self, system):
        tuner = SystemTuner()
        chip_levels = system.chip.levels
        comp_levels = [c.level for c in system.components]
        assert tuner.increase(system, 0.0)
        chip_moves = sum(
            b - a for a, b in zip(chip_levels, system.chip.levels)
        )
        comp_moves = sum(
            c.level - before
            for c, before in zip(system.components, comp_levels)
        )
        assert chip_moves + comp_moves == 1

    def test_repeated_increase_saturates(self, system):
        tuner = SystemTuner()
        moves = 0
        while tuner.increase(system, 0.0):
            moves += 1
            assert moves < 200
        assert system.chip.levels == (5,) * 8
        assert all(c.level == c.n_levels - 1 for c in system.components)

    def test_decrease_reverses(self, system):
        tuner = SystemTuner()
        for _ in range(5):
            tuner.increase(system, 0.0)
        p_high = system.total_power_at(0.0)
        assert tuner.decrease(system, 0.0)
        assert system.total_power_at(0.0) < p_high

    def test_decrease_false_at_floor(self, system):
        tuner = SystemTuner()
        assert not tuner.decrease(system, 0.0)

    def test_components_prioritized_over_last_core_steps(self, system):
        """Waking platform components buys far more utility per watt than
        pushing already-fast cores to their top level — the first increases
        all land on components."""
        tuner = SystemTuner()
        system.chip.set_all_levels(4)
        levels_before = system.chip.levels
        for _ in range(3):
            tuner.increase(system, 0.0)
        assert system.chip.levels == levels_before  # no core moved yet
        assert sum(c.level for c in system.components) == 3
