"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mix == "HM2"
        assert args.site == "AZ"
        assert args.policy == "MPPT&Opt"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "PFCI" in out
        assert "HM2" in out
        assert "MPPT&Opt" in out

    def test_panel(self, capsys):
        assert main(["panel", "--irradiance", "800", "--temperature", "40"]) == 0
        out = capsys.readouterr().out
        assert "Pmax" in out
        assert "BP3180N" in out

    def test_trace(self, capsys):
        assert main(["trace", "--site", "AZ", "--month", "7"]) == 0
        out = capsys.readouterr().out
        assert "kWh/m^2" in out

    def test_trace_unknown_site(self):
        with pytest.raises(KeyError):
            main(["trace", "--site", "XX"])

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "irradiance" in capsys.readouterr().out

    def test_panel_shading(self, capsys):
        assert main(["panel", "--shading", "1.0,0.4"]) == 0
        out = capsys.readouterr().out
        assert "global MPP" in out
        assert "2-module string" in out


class TestSlowCommands:
    """Commands that run full-resolution day simulations."""

    def test_simulate_and_export(self, capsys, tmp_path):
        csv_path = tmp_path / "day.csv"
        json_path = tmp_path / "day.json"
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--export-csv", str(csv_path), "--export-json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert csv_path.read_text().startswith("minute,")
        import json

        payload = json.loads(json_path.read_text())
        assert payload["mix"] == "L1"

    def test_simulate_fixed_budget(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--fixed-budget", "100",
        ]) == 0
        assert "Fixed-100W" in capsys.readouterr().out

    def test_simulate_battery(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--battery-derating", "0.92",
        ]) == 0
        assert "battery system" in capsys.readouterr().out

    def test_rack(self, capsys):
        assert main([
            "rack", "--mixes", "H1", "L1", "--site", "AZ", "--month", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "rack PTP" in out
        assert "chip H1" in out

    def test_simulate_with_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "day.jsonl"
        assert main([
            "simulate", "--mix", "mixed", "--location", "PFCI", "--month", "6",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tracking_events" in out
        assert "telemetry counters" in out
        assert "span timings" in out
        assert str(trace_path) in out

        from repro.telemetry import current, NULL_TELEMETRY, read_jsonl_events

        # The hub is uninstalled once the command finishes.
        assert current() is NULL_TELEMETRY
        events = list(read_jsonl_events(str(trace_path)))
        tracking = [e for e in events if e.type_tag == "tracking"]
        reported = int(out.split("tracking_events")[1].split()[0])
        assert len(tracking) == reported > 0

    def test_simulate_telemetry_without_trace_file(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry counters" in out
        assert "sim.tracking_events" in out

    def test_log_level_flag(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--log-level", "warning",
        ]) == 0
        assert "utilization" in capsys.readouterr().out

    def test_campaign(self, capsys):
        assert main([
            "campaign", "--mix", "L1", "--sites", "AZ", "--months", "7",
            "--days", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "carbon" in out
        assert "overall utilization" in out
