"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mix == "HM2"
        assert args.site == "AZ"
        assert args.policy == "MPPT&Opt"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "PFCI" in out
        assert "HM2" in out
        assert "MPPT&Opt" in out

    def test_panel(self, capsys):
        assert main(["panel", "--irradiance", "800", "--temperature", "40"]) == 0
        out = capsys.readouterr().out
        assert "Pmax" in out
        assert "BP3180N" in out

    def test_trace(self, capsys):
        assert main(["trace", "--site", "AZ", "--month", "7"]) == 0
        out = capsys.readouterr().out
        assert "kWh/m^2" in out

    def test_trace_unknown_site(self):
        with pytest.raises(KeyError):
            main(["trace", "--site", "XX"])

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "irradiance" in capsys.readouterr().out

    def test_panel_shading(self, capsys):
        assert main(["panel", "--shading", "1.0,0.4"]) == 0
        out = capsys.readouterr().out
        assert "global MPP" in out
        assert "2-module string" in out


class TestSlowCommands:
    """Commands that run full-resolution day simulations."""

    def test_simulate_and_export(self, capsys, tmp_path):
        csv_path = tmp_path / "day.csv"
        json_path = tmp_path / "day.json"
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--export-csv", str(csv_path), "--export-json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert csv_path.read_text().startswith("minute,")
        import json

        payload = json.loads(json_path.read_text())
        assert payload["mix"] == "L1"

    def test_simulate_fixed_budget(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--fixed-budget", "100",
        ]) == 0
        assert "Fixed-100W" in capsys.readouterr().out

    def test_simulate_battery(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--battery-derating", "0.92",
        ]) == 0
        assert "battery system" in capsys.readouterr().out

    def test_rack(self, capsys):
        assert main([
            "rack", "--mixes", "H1", "L1", "--site", "AZ", "--month", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "rack PTP" in out
        assert "chip H1" in out

    def test_simulate_with_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "day.jsonl"
        assert main([
            "simulate", "--mix", "mixed", "--location", "PFCI", "--month", "6",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tracking_events" in out
        assert "telemetry counters" in out
        assert "span timings" in out
        assert str(trace_path) in out

        from repro.telemetry import current, NULL_TELEMETRY, read_jsonl_events

        # The hub is uninstalled once the command finishes.
        assert current() is NULL_TELEMETRY
        events = list(read_jsonl_events(str(trace_path)))
        tracking = [e for e in events if e.type_tag == "tracking"]
        reported = int(out.split("tracking_events")[1].split()[0])
        assert len(tracking) == reported > 0

    def test_simulate_telemetry_without_trace_file(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry counters" in out
        assert "sim.tracking_events" in out

    def test_log_level_flag(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--log-level", "warning",
        ]) == 0
        assert "utilization" in capsys.readouterr().out

    def test_campaign(self, capsys):
        assert main([
            "campaign", "--mix", "L1", "--sites", "AZ", "--months", "7",
            "--days", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "carbon" in out
        assert "overall utilization" in out


class TestProfile:
    def test_profile_command_prints_phase_report(self, capsys):
        assert main([
            "profile", "--mix", "L1", "--site", "AZ", "--month", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiled 1 x" in out
        assert "step.policy" in out
        assert "power.brentq_calls" in out
        assert "attributed" in out

    def test_profile_flag_on_simulate(self, capsys):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "step.mpp_solve" in out

    def test_profile_flag_without_simulation_explains(self, capsys):
        assert main(["list", "--profile"]) == 0
        assert "no phases profiled" in capsys.readouterr().out

    def test_hub_uninstalled_after_profile(self):
        from repro.telemetry import NULL_TELEMETRY, current

        main(["profile", "--mix", "L1", "--site", "AZ", "--month", "7"])
        assert current() is NULL_TELEMETRY


class TestRuns:
    def run_with_ledger(self, tmp_path):
        assert main([
            "simulate", "--mix", "L1", "--site", "AZ", "--month", "7",
            "--ledger", "--runs-dir", str(tmp_path),
        ]) == 0

    def test_ledger_flag_records_manifest(self, capsys, tmp_path):
        self.run_with_ledger(tmp_path)
        out = capsys.readouterr().out
        assert "recorded run manifest" in out
        (manifest,) = tmp_path.glob("*.json")
        import json

        doc = json.loads(manifest.read_text())
        assert doc["command"] == "simulate"
        assert doc["days"] == 1
        assert doc["host"]["cpu_count"] is not None

    def test_ledger_ignored_on_non_simulating_commands(self, tmp_path):
        assert main(["list", "--ledger", "--runs-dir", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*.json"))

    def test_runs_list_empty(self, capsys, tmp_path):
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_runs_list_and_show(self, capsys, tmp_path):
        self.run_with_ledger(tmp_path)
        capsys.readouterr()

        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "simulate" in out

        # show defaults to the most recent run
        assert main(["runs", "show", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "command   simulate" in out
        assert "cpus=" in out

    def test_runs_show_unknown_run_exits_2(self, capsys, tmp_path):
        assert main([
            "runs", "show", "nonexistent", "--runs-dir", str(tmp_path),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_runs_diff(self, capsys, tmp_path):
        self.run_with_ledger(tmp_path)
        self.run_with_ledger(tmp_path)
        capsys.readouterr()
        run_a, run_b = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert main([
            "runs", "diff", run_a, run_b, "--runs-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "same" in out
        assert "DIFFERS" not in out  # identical code/config/seeds
        assert "duration_s" in out
