"""Unit tests for PV parameter sets and validation."""

import math

import pytest

from repro.pv.params import (
    CellParameters,
    ModuleParameters,
    bp3180n,
    celsius_to_kelvin,
)


class TestCellParameters:
    def test_valid_construction(self):
        p = CellParameters(isc_ref=5.0, voc_ref=0.6)
        assert p.isc_ref == 5.0
        assert p.voc_ref == 0.6

    @pytest.mark.parametrize("field,value", [
        ("isc_ref", 0.0),
        ("isc_ref", -1.0),
        ("voc_ref", 0.0),
        ("ideality", 0.0),
        ("series_resistance", -1e-3),
    ])
    def test_rejects_invalid(self, field, value):
        kwargs = {"isc_ref": 5.0, "voc_ref": 0.6, field: value}
        with pytest.raises(ValueError):
            CellParameters(**kwargs)

    def test_thermal_voltage_scales_with_temperature(self):
        p = CellParameters(isc_ref=5.0, voc_ref=0.6, ideality=1.0)
        vt25 = p.thermal_voltage(25.0)
        vt75 = p.thermal_voltage(75.0)
        assert vt75 > vt25
        # kT/q at 25 C is ~25.7 mV for n=1.
        assert vt25 == pytest.approx(0.0257, rel=0.01)

    def test_thermal_voltage_scales_with_ideality(self):
        base = CellParameters(isc_ref=5.0, voc_ref=0.6, ideality=1.0)
        doubled = CellParameters(isc_ref=5.0, voc_ref=0.6, ideality=2.0)
        assert doubled.thermal_voltage(25.0) == pytest.approx(
            2.0 * base.thermal_voltage(25.0)
        )


class TestModuleParameters:
    def test_bp3180n_datasheet_values(self):
        params = bp3180n()
        assert params.name == "BP3180N"
        assert params.cells_series == 72
        assert params.voc_ref == pytest.approx(43.6, rel=1e-6)
        assert params.isc_ref == pytest.approx(5.4)

    def test_module_scaling_properties(self):
        cell = CellParameters(isc_ref=5.0, voc_ref=0.6)
        params = ModuleParameters("X", cell, cells_series=10, cells_parallel=3)
        assert params.voc_ref == pytest.approx(6.0)
        assert params.isc_ref == pytest.approx(15.0)

    @pytest.mark.parametrize("series,parallel", [(0, 1), (1, 0), (-1, 1)])
    def test_rejects_invalid_counts(self, series, parallel):
        cell = CellParameters(isc_ref=5.0, voc_ref=0.6)
        with pytest.raises(ValueError):
            ModuleParameters("X", cell, cells_series=series, cells_parallel=parallel)


def test_celsius_to_kelvin():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert celsius_to_kelvin(25.0) == pytest.approx(298.15)
    assert celsius_to_kelvin(-273.15) == pytest.approx(0.0)
