"""Unit tests for exact MPP solving."""

import numpy as np
import pytest

from repro.pv.mpp import find_mpp
from repro.pv.module import PVModule


class TestFindMPP:
    def test_dark_panel_yields_zero_mpp(self, module: PVModule):
        mpp = find_mpp(module, 0.0, 25.0)
        assert mpp.power == 0.0
        assert mpp.voltage == 0.0
        assert mpp.current == 0.0

    def test_mpp_is_interior(self, module: PVModule):
        mpp = find_mpp(module, 1000.0, 25.0)
        voc = module.open_circuit_voltage(1000.0, 25.0)
        assert 0.0 < mpp.voltage < voc

    def test_mpp_power_consistent(self, module: PVModule):
        mpp = find_mpp(module, 800.0, 40.0)
        assert mpp.power == pytest.approx(mpp.voltage * mpp.current)

    def test_mpp_dominates_grid_sample(self, module: PVModule):
        mpp = find_mpp(module, 800.0, 40.0)
        voc = module.open_circuit_voltage(800.0, 40.0)
        for v in np.linspace(0.01, voc * 0.999, 200):
            assert module.power(float(v), 800.0, 40.0) <= mpp.power + 1e-6

    def test_mpp_power_monotone_in_irradiance(self, module: PVModule):
        powers = [find_mpp(module, g, 25.0).power for g in (200, 400, 600, 800, 1000)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_mpp_power_monotone_decreasing_in_temperature(self, module: PVModule):
        powers = [find_mpp(module, 1000.0, t).power for t in (0, 25, 50, 75)]
        assert all(b < a for a, b in zip(powers, powers[1:]))

    def test_metadata_recorded(self, module: PVModule):
        mpp = find_mpp(module, 650.0, 33.0)
        assert mpp.irradiance == 650.0
        assert mpp.temperature_c == 33.0
