"""Unit tests for the PV array model."""

import pytest

from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp


class TestArrayConstruction:
    def test_defaults_to_single_bp3180n(self):
        array = PVArray()
        assert array.modules_series == 1
        assert array.modules_parallel == 1
        assert array.module.params.name == "BP3180N"

    @pytest.mark.parametrize("series,parallel", [(0, 1), (1, 0)])
    def test_rejects_invalid_counts(self, series, parallel):
        with pytest.raises(ValueError):
            PVArray(modules_series=series, modules_parallel=parallel)


class TestArrayScaling:
    def test_series_scales_voltage(self):
        single = PVArray()
        double = PVArray(modules_series=2)
        assert double.open_circuit_voltage(1000.0, 25.0) == pytest.approx(
            2.0 * single.open_circuit_voltage(1000.0, 25.0)
        )

    def test_parallel_scales_current(self):
        single = PVArray()
        double = PVArray(modules_parallel=2)
        assert double.short_circuit_current(1000.0, 25.0) == pytest.approx(
            2.0 * single.short_circuit_current(1000.0, 25.0)
        )

    def test_power_scales_with_module_count(self):
        single_mpp = find_mpp(PVArray(), 1000.0, 25.0)
        quad_mpp = find_mpp(PVArray(modules_series=2, modules_parallel=2), 1000.0, 25.0)
        assert quad_mpp.power == pytest.approx(4.0 * single_mpp.power, rel=1e-6)

    def test_voltage_inverse_roundtrip(self):
        array = PVArray(modules_series=2)
        i = array.current(60.0, 900.0, 35.0)
        assert array.voltage(i, 900.0, 35.0) == pytest.approx(60.0, abs=1e-6)

    def test_cell_temperature_passthrough(self):
        array = PVArray()
        assert array.cell_temperature_from_ambient(
            800.0, 20.0
        ) == array.module.cell_temperature_from_ambient(800.0, 20.0)
