"""Vectorized-PV vs scalar-PV agreement (promised by ``repro.pv.vector``).

The vectorized evaluators re-state the scalar single-diode math as array
programs; these tests pin the agreement to float64 round-off across the
whole operating envelope, and pin :func:`device_scaling`'s by-design
rejection of wrappers and subclasses.
"""

import numpy as np
import pytest

from repro.pv.array import PVArray
from repro.pv.cell import PVCell
from repro.pv.module import PVModule
from repro.pv.shading import ShadedSeriesString
from repro.pv.vector import VectorizedDevice, device_scaling, lambertw_of_exp_array

#: Agreement bar: the vector path runs the same Newton iteration to the
#: same tolerance, so differences are pure summation-order round-off.
RTOL = 1e-12

IRRADIANCES = (5.0, 120.0, 480.0, 1000.0, 1350.0)
TEMPERATURES = (-20.0, 0.0, 25.0, 55.0, 85.0)


@pytest.fixture(scope="module", params=["cell", "module", "array"])
def pair(request):
    """(scalar device, vectorized twin) for each supported composition."""
    from repro.pv.params import bp3180n

    device = {
        "cell": lambda: PVCell(bp3180n().cell),
        "module": lambda: PVModule(bp3180n()),
        "array": PVArray,
    }[request.param]()
    vd = device_scaling(device)
    assert vd is not None
    return device, vd


class TestLambertW:
    def test_matches_scalar_kernel(self):
        from repro.pv.cell import lambertw_of_exp

        args = np.linspace(-40.0, 120.0, 400)
        vec = lambertw_of_exp_array(args)
        for y, w in zip(args, vec):
            assert w == pytest.approx(lambertw_of_exp(float(y)), rel=1e-12)

    def test_satisfies_defining_equation(self):
        args = np.linspace(-20.0, 60.0, 200)
        w = lambertw_of_exp_array(args)
        # w * exp(w) = exp(y)  =>  ln(w) + w = y
        assert np.allclose(np.log(w) + w, args, rtol=1e-10, atol=1e-10)


class TestAgreement:
    def test_open_circuit_voltage(self, pair):
        device, vd = pair
        for g in IRRADIANCES:
            for t in TEMPERATURES:
                scalar = device.open_circuit_voltage(g, t)
                vector = float(vd.open_circuit_voltage(np.array(g), np.array(t)))
                assert vector == pytest.approx(scalar, rel=RTOL)

    def test_current_over_the_iv_curve(self, pair):
        device, vd = pair
        for g in IRRADIANCES:
            for t in TEMPERATURES:
                voc = device.open_circuit_voltage(g, t)
                voltages = np.linspace(voc * 1e-3, voc * 0.999, 40)
                vector = vd.current(voltages, np.float64(g), np.float64(t))
                for v, iv in zip(voltages, vector):
                    assert iv == pytest.approx(
                        device.current(float(v), g, t), rel=1e-9, abs=1e-12
                    )

    def test_power_consistency(self, pair):
        device, vd = pair
        voc = device.open_circuit_voltage(800.0, 40.0)
        voltages = np.linspace(voc * 0.1, voc * 0.95, 25)
        p_vec = vd.power(voltages, np.float64(800.0), np.float64(40.0))
        i_vec = vd.current(voltages, np.float64(800.0), np.float64(40.0))
        assert np.allclose(p_vec, voltages * i_vec, rtol=0, atol=0)

    def test_cell_temperature_from_ambient(self, pair):
        device, vd = pair
        if not hasattr(device, "cell_temperature_from_ambient"):
            pytest.skip("bare cell has no NOCT conversion")
        for g in (0.0, 200.0, 1000.0):
            scalar = device.cell_temperature_from_ambient(g, 25.0)
            vector = float(
                vd.cell_temperature_from_ambient(np.array(g), np.array(25.0))
            )
            assert vector == pytest.approx(scalar, rel=RTOL)

    def test_dark_device_is_exactly_zero(self, pair):
        _, vd = pair
        g = np.array([0.0, -5.0])
        t = np.array([25.0, 25.0])
        assert np.all(vd.open_circuit_voltage(g, t) == 0.0)
        assert np.all(vd.photocurrent(g, t) == 0.0)


class TestDeviceScaling:
    def test_rejects_shaded_string(self):
        assert device_scaling(ShadedSeriesString((1.0, 0.4))) is None

    def test_rejects_subclasses(self):
        class TamperedArray(PVArray):
            pass

        assert device_scaling(TamperedArray()) is None

    def test_rejects_arbitrary_objects(self):
        assert device_scaling(object()) is None

    def test_describe_separates_distinct_devices(self):
        one = device_scaling(PVArray())
        two = device_scaling(PVArray(modules_series=2))
        assert isinstance(one, VectorizedDevice)
        assert one.describe() != two.describe()

    def test_array_scaling_counts(self):
        array = PVArray()
        vd = device_scaling(array)
        assert vd.ns_total == array.modules_series * array.module.params.cells_series
        assert (
            vd.np_total
            == array.modules_parallel * array.module.params.cells_parallel
        )
