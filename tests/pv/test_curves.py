"""Unit tests for I-V curve sampling."""

import numpy as np
import pytest

from repro.pv.curves import sample_iv_curve
from repro.pv.module import PVModule
from repro.pv.params import bp3180n


@pytest.fixture
def curve(module: PVModule):
    return sample_iv_curve(module, 1000.0, 25.0, n_points=100)


class TestSampleIVCurve:
    def test_spans_zero_to_voc(self, module, curve):
        assert curve.voltage[0] == 0.0
        assert curve.voltage[-1] == pytest.approx(
            module.open_circuit_voltage(1000.0, 25.0)
        )

    def test_requested_point_count(self, curve):
        assert len(curve.voltage) == 100
        assert len(curve.current) == 100

    def test_landmark_accessors(self, module, curve):
        assert curve.isc == pytest.approx(module.short_circuit_current(1000.0, 25.0))
        assert curve.voc == pytest.approx(module.open_circuit_voltage(1000.0, 25.0))

    def test_currents_non_negative(self, curve):
        assert np.all(curve.current >= 0.0)

    def test_power_property(self, curve):
        assert curve.power == pytest.approx(curve.voltage * curve.current)

    def test_approximate_mpp_close_to_exact(self, module, curve):
        from repro.pv.mpp import find_mpp

        v, i, p = curve.approximate_mpp
        exact = find_mpp(module, 1000.0, 25.0)
        assert p == pytest.approx(exact.power, rel=0.01)
        assert v == pytest.approx(exact.voltage, rel=0.05)

    def test_rejects_dark_panel(self, module):
        with pytest.raises(ValueError, match="irradiance"):
            sample_iv_curve(module, 0.0, 25.0)

    def test_rejects_too_few_points(self, module):
        with pytest.raises(ValueError, match="n_points"):
            sample_iv_curve(module, 1000.0, 25.0, n_points=1)

    def test_metadata_recorded(self, curve):
        assert curve.irradiance == 1000.0
        assert curve.temperature_c == 25.0


class TestCurveShapeVsConditions:
    """The paper's Figures 6/7 qualitative behaviours."""

    def test_higher_irradiance_raises_isc_and_mpp(self, module):
        low = sample_iv_curve(module, 400.0, 25.0)
        high = sample_iv_curve(module, 1000.0, 25.0)
        assert high.isc > low.isc
        assert high.approximate_mpp[2] > low.approximate_mpp[2]

    def test_higher_temperature_lowers_voc_and_power(self, module):
        cold = sample_iv_curve(module, 1000.0, 0.0)
        hot = sample_iv_curve(module, 1000.0, 75.0)
        assert hot.voc < cold.voc
        assert hot.approximate_mpp[2] < cold.approximate_mpp[2]

    def test_higher_temperature_raises_isc_slightly(self, module):
        cold = sample_iv_curve(module, 1000.0, 0.0)
        hot = sample_iv_curve(module, 1000.0, 75.0)
        assert hot.isc > cold.isc

    def test_mpp_voltage_shifts_left_with_temperature(self, module):
        cold = sample_iv_curve(module, 1000.0, 0.0)
        hot = sample_iv_curve(module, 1000.0, 75.0)
        assert hot.approximate_mpp[0] < cold.approximate_mpp[0]
