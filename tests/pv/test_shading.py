"""Unit tests for partial shading and global MPP search."""

import numpy as np
import pytest

from repro.pv.mpp import find_mpp
from repro.pv.shading import ShadedSeriesString, find_global_mpp
from repro.telemetry import PhaseProfiler, Telemetry, telemetry_session


@pytest.fixture
def shaded():
    return ShadedSeriesString((1.0, 0.4))


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShadedSeriesString(())

    @pytest.mark.parametrize("factors", [(0.0, 1.0), (1.2,), (-0.5, 0.5)])
    def test_rejects_bad_factors(self, factors):
        with pytest.raises(ValueError):
            ShadedSeriesString(factors)


class TestStringPhysics:
    def test_uniform_string_matches_series_modules(self):
        """With no shading, the string is just N modules in series."""
        from repro.pv.array import PVArray

        uniform = ShadedSeriesString((1.0, 1.0))
        reference = PVArray(modules_series=2)
        for v in (20.0, 50.0, 70.0):
            assert uniform.current(v, 900.0, 40.0) == pytest.approx(
                reference.current(v, 900.0, 40.0), abs=1e-5
            )

    def test_voltage_non_increasing_in_current(self, shaded):
        currents = np.linspace(0.0, shaded.max_string_current(900.0, 40.0), 30)
        voltages = [shaded.string_voltage(float(i), 900.0, 40.0) for i in currents]
        assert all(b <= a + 1e-9 for a, b in zip(voltages, voltages[1:]))

    def test_current_at_voc_is_zero(self, shaded):
        voc = shaded.open_circuit_voltage(900.0, 40.0)
        assert shaded.current(voc, 900.0, 40.0) == pytest.approx(0.0, abs=1e-6)

    def test_max_current_set_by_brightest(self, shaded):
        i_max = shaded.max_string_current(900.0, 40.0)
        assert i_max == pytest.approx(
            shaded.module.short_circuit_current(900.0, 40.0)
        )

    def test_bypass_enables_high_current(self, shaded):
        """At currents above the shaded module's capability the string still
        conducts — the bypass diode carries it at a small negative drop."""
        shaded_isc = shaded.module.short_circuit_current(0.4 * 900.0, 40.0)
        v = shaded.string_voltage(shaded_isc * 1.3, 900.0, 40.0)
        assert v > 0.0  # bright module still delivers voltage

    def test_dark_string(self, shaded):
        assert shaded.current(10.0, 0.0, 25.0) == 0.0
        assert shaded.open_circuit_voltage(0.0, 25.0) == 0.0

    def test_rejects_negative_current(self, shaded):
        with pytest.raises(ValueError):
            shaded.string_voltage(-1.0, 900.0, 40.0)


class TestMultiPeak:
    def test_pv_curve_has_two_peaks(self, shaded):
        voc = shaded.open_circuit_voltage(900.0, 40.0)
        voltages = np.linspace(1.0, voc * 0.999, 80)
        powers = np.array(
            [shaded.power(float(v), 900.0, 40.0) for v in voltages]
        )
        peaks = [
            i
            for i in range(1, len(powers) - 1)
            if powers[i] > powers[i - 1] and powers[i] > powers[i + 1]
        ]
        assert len(peaks) >= 2

    def test_global_mpp_dominates_samples(self, shaded):
        gm = find_global_mpp(shaded, 900.0, 40.0)
        voc = shaded.open_circuit_voltage(900.0, 40.0)
        for v in np.linspace(1.0, voc * 0.999, 150):
            assert shaded.power(float(v), 900.0, 40.0) <= gm.power + 1e-3

    def test_global_beats_deep_shade_naive(self):
        """Deep shading where the bounded (unimodal) search can stall on
        the wrong peak: the global sweep must never be worse."""
        for factors in ((1.0, 0.3), (1.0, 0.6, 0.3), (1.0, 0.8, 0.25)):
            string = ShadedSeriesString(factors)
            gm = find_global_mpp(string, 950.0, 45.0)
            naive = find_mpp(string, 950.0, 45.0)
            assert gm.power >= naive.power - 1e-6

    def test_unshaded_global_equals_unimodal(self):
        string = ShadedSeriesString((1.0, 1.0))
        gm = find_global_mpp(string, 900.0, 40.0)
        um = find_mpp(string, 900.0, 40.0)
        assert gm.power == pytest.approx(um.power, rel=1e-3)


class TestSolverAccounting:
    """The string's root-finds follow the shared solver contract.

    Regression: :meth:`ShadedSeriesString.current` used to call scipy's
    ``brentq`` raw, bypassing both the ``power.brentq_*`` profiler
    counters and the :class:`OperatingPointError` wrapping every other
    solver in the repo honours.
    """

    def test_string_current_books_brentq_counters(self, shaded):
        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            shaded.current(30.0, 900.0, 40.0)
        assert hub.profile.counters["power.brentq_calls"] >= 1
        assert (
            hub.profile.counters["power.brentq_iterations"]
            >= hub.profile.counters["power.brentq_calls"]
        )

    def test_partial_shading_day_books_solver_calls(self):
        """A whole simulated day on a shaded string lands on the counters."""
        from repro.core.config import SolarCoreConfig
        from repro.core.simulation import run_day
        from repro.environment.locations import location_by_code

        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            run_day(
                "HM2", location_by_code("AZ"), 7,
                config=SolarCoreConfig(step_minutes=10.0),
                array=ShadedSeriesString((1.0, 0.4)),
            )
        assert hub.profile.counters["power.brentq_calls"] > 0
        assert hub.profile.counters["power.brentq_iterations"] > 0

    def test_unbracketable_solve_raises_operating_point_error(
        self, shaded, monkeypatch
    ):
        from repro.power.operating_point import OperatingPointError

        monkeypatch.setattr(
            shaded, "string_voltage",
            lambda i, g, t: float("nan") if i > 0 else 100.0,
        )
        with pytest.raises(OperatingPointError, match="shaded-string"):
            shaded.current(30.0, 900.0, 40.0)

    def test_profiling_off_leaves_result_unchanged(self, shaded):
        quiet = shaded.current(30.0, 900.0, 40.0)
        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            profiled = shaded.current(30.0, 900.0, 40.0)
        assert profiled == quiet
