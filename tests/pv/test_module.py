"""Unit tests for the PV module model (BP3180N)."""

import pytest

from repro.pv.module import PVModule
from repro.pv.params import bp3180n


class TestThermalModel:
    def test_no_heating_in_darkness(self, module: PVModule):
        assert module.cell_temperature_from_ambient(0.0, 20.0) == 20.0

    def test_noct_point(self, module: PVModule):
        # At 800 W/m^2 and 20 C ambient the cell sits exactly at NOCT.
        t = module.cell_temperature_from_ambient(800.0, 20.0)
        assert t == pytest.approx(module.params.noct_c)

    def test_heating_scales_with_irradiance(self, module: PVModule):
        low = module.cell_temperature_from_ambient(200.0, 25.0)
        high = module.cell_temperature_from_ambient(1000.0, 25.0)
        assert high > low


class TestModuleScaling:
    def test_stc_datasheet_match(self, module: PVModule):
        # BP3180N: Voc 43.6 V, Isc 5.4 A at STC.
        assert module.open_circuit_voltage(1000.0, 25.0) == pytest.approx(43.6, rel=1e-3)
        assert module.short_circuit_current(1000.0, 25.0) == pytest.approx(5.4, rel=1e-3)

    def test_stc_max_power_near_180w(self, module: PVModule):
        from repro.pv.mpp import find_mpp

        mpp = find_mpp(module, 1000.0, 25.0)
        assert mpp.power == pytest.approx(180.0, rel=0.02)
        assert mpp.voltage == pytest.approx(35.8, rel=0.02)
        assert mpp.current == pytest.approx(5.03, rel=0.02)

    def test_voltage_inverse_roundtrip(self, module: PVModule):
        i = module.current(30.0, 800.0, 40.0)
        assert module.voltage(i, 800.0, 40.0) == pytest.approx(30.0, abs=1e-6)

    def test_power_is_v_times_i(self, module: PVModule):
        v = 30.0
        assert module.power(v, 1000.0, 25.0) == pytest.approx(
            v * module.current(v, 1000.0, 25.0)
        )

    def test_currents_vectorized_matches_scalar(self, module: PVModule):
        import numpy as np

        voltages = np.array([0.0, 10.0, 20.0, 30.0, 40.0])
        vector = module.currents(voltages, 1000.0, 25.0)
        scalar = [module.current(float(v), 1000.0, 25.0) for v in voltages]
        assert vector == pytest.approx(scalar)

    def test_dark_module_voc_zero(self, module: PVModule):
        assert module.open_circuit_voltage(0.0, 25.0) == 0.0

    def test_parallel_strings_scale_current(self):
        params = bp3180n()
        single = PVModule(params)
        from dataclasses import replace

        double = PVModule(replace(params, cells_parallel=2))
        v = 20.0
        assert double.current(v, 1000.0, 25.0) == pytest.approx(
            2.0 * single.current(v, 1000.0, 25.0)
        )
