"""Unit tests for the single-diode PV cell model."""

import math

import numpy as np
import pytest

from repro.pv.cell import PVCell, lambertw_of_exp
from repro.pv.params import CellParameters, bp3180n


@pytest.fixture
def cell() -> PVCell:
    return PVCell(bp3180n().cell)


class TestLambertWOfExp:
    @pytest.mark.parametrize("y", [-50.0, -5.0, -1.0, 0.0, 1.0, 5.0, 50.0, 400.0])
    def test_matches_scipy(self, y):
        from scipy.special import lambertw

        expected = float(lambertw(math.exp(y)).real)
        assert lambertw_of_exp(y) == pytest.approx(expected, rel=1e-10)

    @pytest.mark.parametrize("y", [800.0, 5000.0, 1e6])
    def test_overflow_region_satisfies_defining_equation(self, y):
        w = lambertw_of_exp(y)
        assert w + math.log(w) == pytest.approx(y, rel=1e-9)

    def test_monotone_increasing(self):
        ys = np.linspace(-10, 10, 100)
        ws = [lambertw_of_exp(float(y)) for y in ys]
        assert all(b > a for a, b in zip(ws, ws[1:]))


class TestPhotocurrent:
    def test_zero_in_darkness(self, cell):
        assert cell.photocurrent(0.0, 25.0) == 0.0
        assert cell.photocurrent(-5.0, 25.0) == 0.0

    def test_proportional_to_irradiance(self, cell):
        half = cell.photocurrent(500.0, 25.0)
        full = cell.photocurrent(1000.0, 25.0)
        assert full == pytest.approx(2.0 * half)

    def test_stc_equals_isc_ref(self, cell):
        assert cell.photocurrent(1000.0, 25.0) == pytest.approx(
            cell.params.isc_ref, rel=1e-9
        )

    def test_increases_with_temperature(self, cell):
        assert cell.photocurrent(1000.0, 50.0) > cell.photocurrent(1000.0, 25.0)


class TestSaturationCurrent:
    def test_strongly_increases_with_temperature(self, cell):
        i0_25 = cell.saturation_current(25.0)
        i0_50 = cell.saturation_current(50.0)
        # Roughly doubles every ~10 C for silicon.
        assert i0_50 / i0_25 > 5.0

    def test_positive(self, cell):
        assert cell.saturation_current(0.0) > 0.0


class TestIVCharacteristic:
    def test_calibrated_voc_at_stc(self, cell):
        assert cell.open_circuit_voltage(1000.0, 25.0) == pytest.approx(
            cell.params.voc_ref, rel=1e-6
        )

    def test_isc_close_to_photocurrent(self, cell):
        isc = cell.short_circuit_current(1000.0, 25.0)
        assert isc == pytest.approx(cell.params.isc_ref, rel=1e-3)

    def test_current_decreases_with_voltage(self, cell):
        voltages = np.linspace(0.0, cell.params.voc_ref, 50)
        currents = cell.currents(voltages, 1000.0, 25.0)
        assert all(b < a for a, b in zip(currents, currents[1:]))

    def test_voltage_is_exact_inverse_of_current(self, cell):
        for v in (0.1, 0.3, 0.5, 0.55):
            i = cell.current(v, 1000.0, 25.0)
            assert cell.voltage(i, 1000.0, 25.0) == pytest.approx(v, abs=1e-9)

    def test_negative_current_beyond_voc(self, cell):
        voc = cell.open_circuit_voltage(1000.0, 25.0)
        assert cell.current(voc * 1.05, 1000.0, 25.0) < 0.0

    def test_voltage_rejects_impossible_current(self, cell):
        isc = cell.short_circuit_current(1000.0, 25.0)
        with pytest.raises(ValueError, match="exceeds"):
            cell.voltage(isc * 1.5, 1000.0, 25.0)

    def test_voc_decreases_with_temperature(self, cell):
        voc_cold = cell.open_circuit_voltage(1000.0, 0.0)
        voc_hot = cell.open_circuit_voltage(1000.0, 75.0)
        assert voc_hot < voc_cold

    def test_dark_cell_produces_no_open_circuit_voltage(self, cell):
        assert cell.open_circuit_voltage(0.0, 25.0) == 0.0

    def test_power_at_landmarks_is_zero(self, cell):
        voc = cell.open_circuit_voltage(1000.0, 25.0)
        assert cell.power(0.0, 1000.0, 25.0) == 0.0
        assert cell.power(voc, 1000.0, 25.0) == pytest.approx(0.0, abs=1e-6)

    def test_zero_series_resistance_branch(self):
        params = CellParameters(isc_ref=5.4, voc_ref=0.6, series_resistance=0.0)
        cell = PVCell(params)
        # With Rs = 0, I(V) is the pure diode equation.
        assert cell.current(0.0, 1000.0, 25.0) == pytest.approx(5.4)
        assert cell.open_circuit_voltage(1000.0, 25.0) == pytest.approx(0.6, rel=1e-6)
