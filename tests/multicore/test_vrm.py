"""Unit tests for the on-chip VRM model."""

import pytest

from repro.multicore.dvfs import default_dvfs_table
from repro.multicore.vrm import VRMBank, VRMParameters, VoltageRegulator


@pytest.fixture
def vrm():
    return VoltageRegulator(default_dvfs_table())


class TestEfficiency:
    def test_bounded_between_floor_and_peak(self, vrm):
        p = vrm.params
        for load in (0.0, 1.0, 5.0, 15.0, 40.0):
            eff = vrm.efficiency(load)
            assert p.light_load_efficiency <= eff <= p.peak_efficiency

    def test_monotone_in_load(self, vrm):
        effs = [vrm.efficiency(w) for w in (0.5, 2.0, 8.0, 15.0, 30.0)]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_rejects_negative_load(self, vrm):
        with pytest.raises(ValueError):
            vrm.efficiency(-1.0)

    def test_input_power_exceeds_load(self, vrm):
        assert vrm.input_power(10.0) > 10.0

    def test_zero_load_zero_input(self, vrm):
        assert vrm.input_power(0.0) == 0.0


class TestTransitions:
    def test_latency_scales_with_swing(self, vrm):
        short, _ = vrm.transition(2, 3)  # 0.1 V swing
        long, _ = vrm.transition(0, 5)  # 0.5 V swing
        assert long > short

    def test_energy_scales_with_swing(self, vrm):
        _, small = vrm.transition(2, 3)
        _, big = vrm.transition(0, 5)
        assert big == pytest.approx(5.0 * small)

    def test_accounting(self, vrm):
        vrm.transition(0, 5)
        vrm.transition(5, 0)
        assert vrm.transitions == 2
        assert vrm.transition_energy_j > 0.0

    def test_same_level_transition_costs_vid_only(self, vrm):
        latency, energy = vrm.transition(3, 3)
        assert latency == pytest.approx(vrm.params.vid_latency_us)
        assert energy == 0.0


class TestParameters:
    @pytest.mark.parametrize("kwargs", [
        {"peak_efficiency": 0.0},
        {"peak_efficiency": 1.1},
        {"light_load_efficiency": 0.95, "peak_efficiency": 0.9},
        {"design_load_w": 0.0},
        {"ramp_v_per_us": 0.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VRMParameters(**kwargs)


class TestBank:
    def test_one_regulator_per_core(self):
        bank = VRMBank(8, default_dvfs_table())
        assert len(bank) == 8
        assert bank[0] is not bank[1]

    def test_rail_power_sums(self):
        bank = VRMBank(2, default_dvfs_table())
        loads = [10.0, 5.0]
        expected = bank[0].input_power(10.0) + bank[1].input_power(5.0)
        assert bank.rail_power(loads) == pytest.approx(expected)

    def test_rail_power_length_checked(self):
        bank = VRMBank(2, default_dvfs_table())
        with pytest.raises(ValueError):
            bank.rail_power([1.0])

    def test_conversion_loss_positive(self):
        bank = VRMBank(4, default_dvfs_table())
        loss = bank.conversion_loss([10.0] * 4)
        assert loss > 0.0

    def test_aggregate_transition_accounting(self):
        bank = VRMBank(3, default_dvfs_table())
        bank[0].transition(0, 5)
        bank[2].transition(1, 2)
        assert bank.total_transitions == 2
        assert bank.total_transition_energy_j > 0.0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            VRMBank(0, default_dvfs_table())
