"""Unit tests for the multi-core chip."""

import pytest

from repro.multicore.chip import NOMINAL_RAIL_V, MultiCoreChip
from repro.workloads.mixes import mix


class TestConstruction:
    def test_eight_cores(self, chip_hm2: MultiCoreChip):
        assert chip_hm2.n_cores == 8

    def test_benchmarks_assigned_in_order(self, chip_hm2):
        names = [core.bench.name for core in chip_hm2.cores]
        assert names == ["bzip", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"]

    def test_rejects_negative_uncore(self):
        with pytest.raises(ValueError):
            MultiCoreChip(mix("H1"), uncore_power_w=-1.0)


class TestLevelManagement:
    def test_set_all_levels(self, chip_hm2):
        chip_hm2.set_all_levels(2)
        assert chip_hm2.levels == (2,) * 8

    def test_set_levels_vector(self, chip_hm2):
        chip_hm2.set_levels([0, 1, 2, 3, 4, 5, 0, 1])
        assert chip_hm2.levels == (0, 1, 2, 3, 4, 5, 0, 1)

    def test_set_levels_length_checked(self, chip_hm2):
        with pytest.raises(ValueError):
            chip_hm2.set_levels([0, 1])


class TestAggregates:
    def test_total_power_includes_uncore(self, chip_hm2):
        per_core = sum(core.power_at(0.0) for core in chip_hm2.cores)
        assert chip_hm2.total_power_at(0.0) == pytest.approx(
            per_core + chip_hm2.uncore_power_w
        )

    def test_power_ordering(self, chip_hm2):
        assert (
            chip_hm2.floor_power_at(0.0)
            <= chip_hm2.min_power_at(0.0)
            <= chip_hm2.max_power_at(0.0)
        )

    def test_floor_with_gating_is_one_core(self, chip_hm2):
        cheapest = min(
            core.power_at_level(0, 0.0) for core in chip_hm2.cores
        )
        assert chip_hm2.floor_power_at(0.0, with_gating=True) == pytest.approx(
            chip_hm2.uncore_power_w + cheapest
        )

    def test_floor_without_gating_is_min_power(self, chip_hm2):
        assert chip_hm2.floor_power_at(0.0, with_gating=False) == pytest.approx(
            chip_hm2.min_power_at(0.0)
        )

    def test_gating_reduces_power_and_throughput(self, chip_hm2):
        p_before = chip_hm2.total_power_at(0.0)
        t_before = chip_hm2.total_throughput_at(0.0)
        chip_hm2.cores[0].gate()
        assert chip_hm2.total_power_at(0.0) < p_before
        assert chip_hm2.total_throughput_at(0.0) < t_before

    def test_ungate_all(self, chip_hm2):
        for core in chip_hm2.cores[:4]:
            core.gate()
        chip_hm2.ungate_all()
        assert len(chip_hm2.active_cores()) == 8


class TestElectricalView:
    def test_effective_resistance(self, chip_hm2):
        r = chip_hm2.effective_resistance(0.0)
        assert r == pytest.approx(
            NOMINAL_RAIL_V**2 / chip_hm2.total_power_at(0.0)
        )

    def test_resistance_rejects_bad_rail(self, chip_hm2):
        with pytest.raises(ValueError):
            chip_hm2.effective_resistance(0.0, rail_v=0.0)

    def test_raising_levels_lowers_impedance(self, chip_hm2):
        """Paper Section 2.3: higher clock -> lower impedance."""
        chip_hm2.set_all_levels(0)
        r_low = chip_hm2.effective_resistance(0.0)
        chip_hm2.set_all_levels(5)
        r_high = chip_hm2.effective_resistance(0.0)
        assert r_high < r_low


class TestChipPowerCalibration:
    """The chip must live in the BP3180N panel's power envelope."""

    @pytest.mark.parametrize("mix_name", ["H1", "M1", "L1", "HM2", "ML2"])
    def test_max_power_within_panel_reach(self, mix_name):
        chip = MultiCoreChip(mix(mix_name))
        pmax = chip.max_power_at(100.0)
        assert 120.0 < pmax < 220.0

    @pytest.mark.parametrize("mix_name", ["H1", "M1", "L1"])
    def test_min_power_allows_morning_engagement(self, mix_name):
        chip = MultiCoreChip(mix(mix_name))
        assert chip.floor_power_at(100.0) < 60.0

    def test_advance_totals_cores(self, chip_h1):
        total = chip_h1.advance(0.0, 1.0)
        assert total == pytest.approx(chip_h1.retired_ginst)
        assert total > 0.0
