"""Unit tests for the single-core model."""

import pytest

from repro.multicore.core import Core
from repro.multicore.dvfs import default_dvfs_table
from repro.multicore.power_model import CorePowerModel
from repro.workloads.benchmarks import benchmark


@pytest.fixture
def core():
    model = CorePowerModel(table=default_dvfs_table())
    return Core(0, benchmark("gcc"), model, seed=7)


class TestDVFSState:
    def test_starts_at_top_level(self, core):
        assert core.level == core.table.max_level

    def test_set_level_validates(self, core):
        core.set_level(2)
        assert core.level == 2
        with pytest.raises(IndexError):
            core.set_level(17)

    def test_initial_level_override(self):
        model = CorePowerModel(table=default_dvfs_table())
        core = Core(0, benchmark("art"), model, initial_level=1)
        assert core.level == 1


class TestGating:
    def test_gated_core_draws_nothing(self, core):
        core.gate()
        assert core.power_at(10.0) == 0.0
        assert core.throughput_at(10.0) == 0.0

    def test_ungate_restores(self, core):
        level = core.level
        core.gate()
        core.ungate()
        assert core.level == level
        assert core.power_at(10.0) > 0.0


class TestObservables:
    def test_power_positive_when_active(self, core):
        assert core.power_at(0.0) > 0.0

    def test_predictions_match_actuals(self, core):
        for level in range(len(core.table)):
            core.set_level(level)
            assert core.power_at_level(level, 5.0) == pytest.approx(core.power_at(5.0))
            assert core.throughput_at_level(level, 5.0) == pytest.approx(
                core.throughput_at(5.0)
            )

    def test_throughput_rises_with_level(self, core):
        values = []
        for level in range(len(core.table)):
            core.set_level(level)
            values.append(core.throughput_at(3.0))
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_power_rises_with_level(self, core):
        values = []
        for level in range(len(core.table)):
            core.set_level(level)
            values.append(core.power_at(3.0))
        assert all(b > a for a, b in zip(values, values[1:]))


class TestProgress:
    def test_advance_accumulates(self, core):
        retired = core.advance(0.0, 1.0)
        assert retired > 0.0
        assert core.retired_ginst == pytest.approx(retired)
        core.advance(1.0, 1.0)
        assert core.retired_ginst > retired

    def test_advance_matches_throughput(self, core):
        expected = core.throughput_at(0.0) * 60.0  # GIPS * seconds
        assert core.advance(0.0, 1.0) == pytest.approx(expected)

    def test_gated_core_retires_nothing(self, core):
        core.gate()
        assert core.advance(0.0, 1.0) == 0.0

    def test_rejects_negative_dt(self, core):
        with pytest.raises(ValueError):
            core.advance(0.0, -1.0)
