"""Unit tests for the core thermal model."""

import pytest

from repro.multicore.thermal import CoreThermalModel, ThermalParameters


@pytest.fixture
def model():
    return CoreThermalModel()


class TestLeakageMultiplier:
    def test_unity_at_reference(self, model):
        assert model.leakage_multiplier(model.params.t_ref_c) == pytest.approx(1.0)

    def test_doubles_per_doubling_constant(self, model):
        p = model.params
        assert model.leakage_multiplier(p.t_ref_c + p.leak_doubling_c) == pytest.approx(2.0)

    def test_halves_below(self, model):
        p = model.params
        assert model.leakage_multiplier(p.t_ref_c - p.leak_doubling_c) == pytest.approx(0.5)


class TestFixedPoint:
    def test_hotter_than_ambient(self, model):
        t, _ = model.solve(dynamic_w=15.0, leakage_ref_w=1.0, ambient_c=35.0)
        assert t > 35.0

    def test_satisfies_balance(self, model):
        t, leak = model.solve(dynamic_w=15.0, leakage_ref_w=1.0, ambient_c=35.0)
        assert t == pytest.approx(
            35.0 + model.params.r_th_c_per_w * (15.0 + leak), abs=1e-4
        )

    def test_leakage_grows_with_power(self, model):
        _, leak_cool = model.solve(3.0, 1.0, 35.0)
        _, leak_hot = model.solve(17.0, 1.0, 35.0)
        assert leak_hot > leak_cool

    def test_reduced_vf_runs_cooler(self, model):
        """SolarCore's supply matching keeps cores cooler: the thermal
        side benefit of running at mid V/F instead of peak."""
        t_full, _ = model.solve(17.3, 1.0, 40.0)
        t_matched, _ = model.solve(8.0, 0.7, 40.0)
        assert t_matched < t_full

    def test_zero_power_at_ambient(self, model):
        t, leak = model.solve(0.0, 0.0, 25.0)
        assert t == pytest.approx(25.0)
        assert leak == 0.0

    def test_thermal_runaway_detected(self):
        # Absurd package: loop gain >= 1 must raise, not hang or lie.
        model = CoreThermalModel(
            ThermalParameters(r_th_c_per_w=50.0, leak_doubling_c=5.0)
        )
        with pytest.raises(RuntimeError, match="converge"):
            model.solve(dynamic_w=20.0, leakage_ref_w=5.0, ambient_c=45.0)

    def test_rejects_negative_power(self, model):
        with pytest.raises(ValueError):
            model.solve(-1.0, 0.0, 25.0)


class TestThrottle:
    def test_throttle_limit(self, model):
        assert model.is_throttled(model.params.t_max_c + 1.0)
        assert not model.is_throttled(model.params.t_max_c - 1.0)
