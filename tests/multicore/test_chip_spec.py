"""ChipSpec canonicalization, identity, and cache-key behaviour.

The spec string is part of every cache identity (config key, disk-cache
path, run manifest, service job), so this suite pins the properties the
caches lean on: canonical strings round-trip through ``parse``, the
sha256 identity is stable across spellings and releases, and any change
to the mix or tech node shifts the disk-cache address.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.config import SolarCoreConfig
from repro.harness.parallel import (
    CACHE_FORMAT_VERSION,
    DiskResultCache,
    config_key,
)
from repro.multicore.dvfs import default_dvfs_table
from repro.multicore.spec import (
    CHIP_PRESETS,
    CORE_TYPES,
    DEFAULT_CHIP_SPEC_NAME,
    ChipSpec,
    CoreTypeSpec,
    default_chip_spec,
    dvfs_table_for,
    power_model_for,
    resolve_chip_spec,
)
from repro.multicore.techscale import tech_scaling


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(CHIP_PRESETS))
    def test_preset_names_round_trip(self, name):
        spec = ChipSpec.parse(name)
        assert spec.canonical() == name
        assert ChipSpec.parse(spec.canonical()) == spec

    @pytest.mark.parametrize("name", sorted(CHIP_PRESETS))
    def test_explicit_form_round_trips_to_the_same_spec(self, name):
        spec = CHIP_PRESETS[name]
        reparsed = ChipSpec.parse(spec.explicit())
        assert reparsed == spec
        # ...and the compact canonical form recovers the preset name.
        assert reparsed.canonical() == name

    def test_grammar_round_trip_with_tech_node_and_uncore(self):
        spec = ChipSpec.parse("big*2+little*6@45nm:cons;uncore=30")
        assert spec.tech_nm == 45
        assert spec.tech_model == "cons"
        assert spec.uncore_power_w == 30.0
        assert spec.n_cores == 8
        assert ChipSpec.parse(spec.explicit()) == spec
        assert ChipSpec.parse(spec.canonical()) == spec

    def test_inline_custom_type_round_trips(self):
        spec = ChipSpec.parse("tiny[f=0.5-1.2/4,v=0.8-1.0,ipc=0.5]*6")
        (entry,) = spec.mix
        ct, count = entry
        assert (ct.name, count) == ("tiny", 6)
        assert ct.n_levels == 4
        assert ct.ipc_scale == 0.5
        # Unspecified parameters keep the alpha defaults.
        assert ct.epi_scale == CORE_TYPES["alpha"].epi_scale
        assert ChipSpec.parse(spec.explicit()) == spec

    def test_count_defaults_to_one_and_whitespace_is_tolerated(self):
        spec = ChipSpec.parse(" big + little*3 @ 65nm ")
        assert spec.mix[0][1] == 1
        assert spec.mix[1][1] == 3
        assert spec.tech_nm == 65

    @pytest.mark.parametrize("bad, fragment", [
        ("", "empty"),
        ("warp*8", "unknown core type"),
        ("alpha*x", "bad core count"),
        ("alpha*8@13nm", "chip spec"),
        ("alpha*8@45nm:wild", "chip spec"),
        ("alpha*8;uncore=-5", "uncore"),
        ("alpha*8;turbo=1", "unknown chip-spec option"),
        ("tiny[f=0.5]*2", "expected f=lo-hi"),
        ("tiny[warp=3]*2", "unknown core-type parameter"),
    ])
    def test_malformed_specs_fail_loudly(self, bad, fragment):
        with pytest.raises(ValueError) as excinfo:
            ChipSpec.parse(bad)
        assert fragment in str(excinfo.value)

    def test_resolve_accepts_spec_string_none(self):
        assert resolve_chip_spec(None) == default_chip_spec()
        assert resolve_chip_spec("biglittle") == CHIP_PRESETS["biglittle"]
        spec = CHIP_PRESETS["hetero3"]
        assert resolve_chip_spec(spec) is spec
        with pytest.raises(TypeError):
            resolve_chip_spec(8)


class TestIdentity:
    # Pinned digests: the spec identity is carried by run manifests and
    # job records across releases, so it must never drift silently.  If
    # this test fails you changed the canonical explicit form — that is
    # a cache-breaking change and needs a CACHE_FORMAT_VERSION bump.
    PINNED = {
        "alpha8": "7c78103285f73e4cbf571983ae65452026eb4b7c"
                  "59e7ede168d3952e4ca7bf90",
        "biglittle": "1a656104fc3471f5e4f925ca1ba290fd7e6ef73f"
                     "c848f81f9ff72915c4d78e07",
        "hetero3": "9d5ef66f4fa3213d3b1831deeae5e78ccc5be403"
                   "a002c1a82dbb71363da0c57e",
        "little8": "cf772400f08f52d43c0311519bbf801a71cc8505"
                   "61ec8fb97b72d37abef05780",
    }

    @pytest.mark.parametrize("name", sorted(CHIP_PRESETS))
    def test_identity_is_pinned(self, name):
        assert CHIP_PRESETS[name].identity() == self.PINNED[name]

    def test_identity_hashes_contents_not_the_preset_name(self):
        spec = CHIP_PRESETS["alpha8"]
        explicit_twin = ChipSpec.parse(spec.explicit())
        assert explicit_twin.identity() == spec.identity()

    def test_identity_separates_every_axis(self):
        base = CHIP_PRESETS["alpha8"]
        variants = [
            ChipSpec.parse("alpha*7"),
            ChipSpec.parse("alpha*8@45nm"),
            ChipSpec.parse("alpha*8@90nm:cons"),
            ChipSpec.parse("alpha*8;uncore=44"),
            ChipSpec.parse("little*8"),
        ]
        identities = {base.identity(), *(v.identity() for v in variants)}
        assert len(identities) == len(variants) + 1

    def test_default_spec_is_the_paper_chip(self):
        spec = default_chip_spec()
        assert spec.canonical() == DEFAULT_CHIP_SPEC_NAME == "alpha8"
        assert spec.homogeneous
        assert spec.n_cores == 8
        assert spec.scaling().is_base
        # The alpha table at the base node IS the pre-ChipSpec table.
        table = dvfs_table_for(CORE_TYPES["alpha"], spec.scaling())
        assert list(table) == list(default_dvfs_table())

    def test_tables_and_models_are_built_once_per_spec(self):
        ct = CORE_TYPES["big"]
        scaling = tech_scaling(45, "itrs")
        assert dvfs_table_for(ct, scaling) is dvfs_table_for(ct, scaling)
        assert power_model_for(ct, scaling) is power_model_for(ct, scaling)


class TestCacheKeyDrift:
    def test_changed_mix_or_node_misses_the_disk_cache(self, tmp_path):
        cache = DiskResultCache(tmp_path, fingerprint="fixed")
        paths = {
            chip: cache.path_for(config_key(SolarCoreConfig(chip_spec=chip)))
            for chip in (
                "alpha8", "biglittle", "alpha*8@45nm", "alpha*8@90nm:cons",
            )
        }
        assert len(set(paths.values())) == len(paths)

    def test_default_spec_keys_like_the_seed_config(self, tmp_path):
        # chip_spec canonicalizes on construction, so every spelling of
        # the default chip shares one cache entry with the plain config.
        cache = DiskResultCache(tmp_path, fingerprint="fixed")
        default = cache.path_for(config_key(SolarCoreConfig()))
        named = cache.path_for(
            config_key(SolarCoreConfig(chip_spec="alpha8"))
        )
        explicit = cache.path_for(config_key(
            SolarCoreConfig(chip_spec=CHIP_PRESETS["alpha8"].explicit())
        ))
        assert default == named == explicit

    def test_format_version_covers_the_chip_spec_field(self):
        # The chip_spec field changed every config-key layout; the bump
        # to v3 is what purges pre-spec caches.  Bump again if the key
        # layout changes — do not lower this.
        assert CACHE_FORMAT_VERSION >= 3

    def test_pre_spec_cache_is_purged_loudly(self, tmp_path, caplog):
        stale = tmp_path / "deadbeef.pkl"
        stale.write_bytes(b"pre-spec entry")
        (tmp_path / "CACHE_FORMAT").write_text("2\n")
        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            DiskResultCache(tmp_path, fingerprint="fixed")
        assert not stale.exists()
        assert any(
            "stale" in rec.getMessage() and "format 2" in rec.getMessage()
            for rec in caplog.records
        )
        marker = (tmp_path / "CACHE_FORMAT").read_text().strip()
        assert marker == str(CACHE_FORMAT_VERSION)
