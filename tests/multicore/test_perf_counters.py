"""Unit tests for performance-counter profiling."""

import pytest

from repro.multicore.perf_counters import profile_chip


class TestProfileChip:
    def test_one_profile_per_core(self, chip_hm2):
        profiles = profile_chip(chip_hm2, 10.0)
        assert len(profiles) == 8
        assert [p.core_id for p in profiles] == list(range(8))

    def test_profiles_match_core_state(self, chip_hm2):
        chip_hm2.set_all_levels(3)
        for profile, core in zip(profile_chip(chip_hm2, 5.0), chip_hm2.cores):
            assert profile.level == 3
            assert profile.ipc == pytest.approx(core.ipc_at(5.0))
            assert profile.power_w == pytest.approx(core.power_at(5.0))
            assert profile.throughput_gips == pytest.approx(core.throughput_at(5.0))

    def test_gated_core_profile(self, chip_hm2):
        chip_hm2.cores[2].gate()
        profiles = profile_chip(chip_hm2, 5.0)
        assert profiles[2].gated
        assert profiles[2].power_w == 0.0
        assert profiles[2].throughput_gips == 0.0
