"""Unit tests for the DVFS operating-point table."""

import pytest

from repro.multicore.dvfs import DVFSTable, OperatingPoint, default_dvfs_table


class TestOperatingPoint:
    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            OperatingPoint(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1.0, 0.0)


class TestDefaultTable:
    def test_paper_configuration(self):
        table = default_dvfs_table()
        assert len(table) == 6
        assert table.max_frequency == pytest.approx(2.5)
        assert table.frequency(0) == pytest.approx(1.0)
        assert table.max_voltage == pytest.approx(1.45)
        assert table.voltage(0) == pytest.approx(0.95)

    def test_300mhz_and_100mv_steps(self):
        table = default_dvfs_table()
        for level in range(5):
            assert table.frequency(level + 1) - table.frequency(level) == pytest.approx(0.3)
            assert table.voltage(level + 1) - table.voltage(level) == pytest.approx(0.1)

    def test_voltage_linear_in_frequency(self):
        """Paper assumption 1: V scales ~linearly with f."""
        table = default_dvfs_table(12)
        slopes = [
            (table.voltage(i + 1) - table.voltage(i))
            / (table.frequency(i + 1) - table.frequency(i))
            for i in range(11)
        ]
        assert max(slopes) == pytest.approx(min(slopes))

    def test_granularity_refinement(self):
        table = default_dvfs_table(32)
        assert len(table) == 32
        assert table.frequency(0) == pytest.approx(1.0)
        assert table.max_frequency == pytest.approx(2.5)

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            default_dvfs_table(1)


class TestTableValidation:
    def test_rejects_unordered_points(self):
        with pytest.raises(ValueError, match="ascending"):
            DVFSTable([OperatingPoint(2.0, 1.2), OperatingPoint(1.0, 0.9)])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(ValueError, match="distinct"):
            DVFSTable([OperatingPoint(1.0, 0.9), OperatingPoint(1.0, 1.0)])

    def test_level_bounds_checked(self):
        table = default_dvfs_table()
        with pytest.raises(IndexError):
            table[6]
        with pytest.raises(IndexError):
            table[-1]


class TestVID:
    def test_six_levels_need_three_bits(self):
        assert default_dvfs_table(6).vid_bits() == 3

    def test_32_levels_need_five_bits(self):
        assert default_dvfs_table(32).vid_bits() == 5

    def test_vid_roundtrip(self):
        table = default_dvfs_table()
        for level in range(len(table)):
            assert table.level_of_vid(table.vid_of(level)) == level
