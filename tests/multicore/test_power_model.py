"""Unit tests for the core power model (the Wattch/CACTI substitute)."""

import pytest

from repro.multicore.dvfs import default_dvfs_table
from repro.multicore.power_model import CorePowerModel


@pytest.fixture
def model():
    return CorePowerModel(table=default_dvfs_table(), leakage_ref_w=1.0)


class TestDynamicPower:
    def test_dimensional_sanity_at_top(self, model):
        # 16.5 nJ * 0.42 IPC * 2.5 GHz = 17.3 W.
        power = model.dynamic_power(5, epi_nj=16.5, ipc=0.42)
        assert power == pytest.approx(16.5 * 0.42 * 2.5)

    def test_scales_linearly_with_ipc(self, model):
        assert model.dynamic_power(3, 10.0, 0.8) == pytest.approx(
            2.0 * model.dynamic_power(3, 10.0, 0.4)
        )

    def test_scales_linearly_with_epi(self, model):
        assert model.dynamic_power(3, 16.0, 0.5) == pytest.approx(
            2.0 * model.dynamic_power(3, 8.0, 0.5)
        )

    def test_voltage_squared_scaling(self, model):
        table = model.table
        low = model.dynamic_power(0, 10.0, 0.5)
        high = model.dynamic_power(5, 10.0, 0.5)
        expected_ratio = (
            (table.voltage(5) / table.voltage(0)) ** 2
            * table.frequency(5)
            / table.frequency(0)
        )
        assert high / low == pytest.approx(expected_ratio)

    def test_approximately_cubic_in_voltage(self, model):
        """Paper assumption 2: total core power ~ c * V^3."""
        table = model.table
        p0 = model.dynamic_power(0, 10.0, 0.5)
        p5 = model.dynamic_power(5, 10.0, 0.5)
        v_ratio_cubed = (table.voltage(5) / table.voltage(0)) ** 3
        # Within 2x of the pure cubic (f is affine, not proportional, in V).
        assert 0.5 < (p5 / p0) / v_ratio_cubed < 2.0


class TestLeakage:
    def test_reference_at_top_voltage(self, model):
        assert model.leakage_power(5) == pytest.approx(1.0)

    def test_scales_down_with_voltage(self, model):
        assert model.leakage_power(0) < model.leakage_power(5)


class TestThroughput:
    def test_proportional_to_frequency(self, model):
        t0 = model.throughput_gips(0, 1.0)
        t5 = model.throughput_gips(5, 1.0)
        assert t5 / t0 == pytest.approx(2.5)

    def test_ipc_passthrough(self, model):
        assert model.throughput_gips(5, 0.42) == pytest.approx(0.42 * 2.5)


class TestTotalPower:
    def test_total_is_sum(self, model):
        total = model.total_power(3, 12.0, 0.6)
        assert total == pytest.approx(
            model.dynamic_power(3, 12.0, 0.6) + model.leakage_power(3)
        )
