"""Unit tests for the I/V sensor front-end."""

import pytest

from repro.power.operating_point import OperatingPoint
from repro.power.sensors import IVSensor, SensorReading


def point(v=12.0, i=8.0):
    return OperatingPoint(36.0, i / 3.0, v, i)


class TestIdealSensor:
    def test_exact_passthrough(self):
        reading = IVSensor().read(point())
        assert reading.voltage == 12.0
        assert reading.current == 8.0
        assert reading.power == pytest.approx(96.0)


class TestImperfectSensor:
    def test_quantization(self):
        sensor = IVSensor(quantization_v=0.5, quantization_a=0.25)
        reading = sensor.read(point(v=12.3, i=8.1))
        assert reading.voltage == pytest.approx(12.5)
        assert reading.current == pytest.approx(8.0)

    def test_noise_is_seeded(self):
        a = IVSensor(noise_fraction=0.01, seed=1).read(point())
        b = IVSensor(noise_fraction=0.01, seed=1).read(point())
        assert a.voltage == b.voltage

    def test_noise_perturbs(self):
        reading = IVSensor(noise_fraction=0.05, seed=2).read(point())
        assert reading.voltage != 12.0

    @pytest.mark.parametrize("kwargs", [
        {"noise_fraction": -0.1},
        {"quantization_v": -0.1},
        {"quantization_a": -0.1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            IVSensor(**kwargs)


class TestCombinedDistortion:
    def test_noise_applied_before_quantization(self):
        """Whatever the noise does, the reported value lands on the LSB grid."""
        sensor = IVSensor(noise_fraction=0.2, quantization_v=0.5,
                          quantization_a=0.25, seed=3)
        reading = sensor.read(point(v=12.3, i=8.1))
        assert reading.voltage == pytest.approx(
            round(reading.voltage / 0.5) * 0.5
        )
        assert reading.current == pytest.approx(
            round(reading.current / 0.25) * 0.25
        )

    def test_different_seeds_decorrelate(self):
        a = IVSensor(noise_fraction=0.05, seed=1).read(point())
        b = IVSensor(noise_fraction=0.05, seed=2).read(point())
        assert a.voltage != b.voltage

    def test_noise_draws_advance_between_reads(self):
        sensor = IVSensor(noise_fraction=0.05, seed=4)
        assert sensor.read(point()).voltage != sensor.read(point()).voltage


class TestSensorDropout:
    def test_is_a_runtime_error(self):
        from repro.power.sensors import SensorDropout

        assert issubclass(SensorDropout, RuntimeError)
