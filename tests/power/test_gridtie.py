"""Unit tests for the grid-tied (Figure 2-A) system."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.power.gridtie import run_day_gridtie


@pytest.fixture(scope="module")
def cfg():
    return SolarCoreConfig(step_minutes=5.0)


@pytest.fixture(scope="module")
def az_day(cfg):
    return run_day_gridtie("HM2", PHOENIX_AZ, 7, config=cfg)


class TestGridTie:
    def test_inverter_loss(self, az_day):
        assert az_day.exported_ac_wh == pytest.approx(
            0.95 * az_day.harvested_dc_wh
        )
        assert az_day.conversion_loss_wh > 0.0

    def test_full_speed_all_day(self, az_day, cfg):
        """The chip always runs at top level: PTP equals a full-speed day."""
        from repro.multicore.chip import MultiCoreChip
        from repro.workloads.mixes import mix

        chip = MultiCoreChip(mix("HM2"))
        chip.set_all_levels(chip.table.max_level)
        minute = 450.0
        while minute < 1050.0:
            chip.advance(minute, cfg.step_minutes)
            minute += cfg.step_minutes
        assert az_day.ptp == pytest.approx(chip.retired_ginst, rel=1e-6)

    def test_green_fraction_bounded(self, az_day):
        assert 0.0 < az_day.green_fraction <= 1.0

    def test_sunnier_site_greener(self, cfg):
        az = run_day_gridtie("HM2", PHOENIX_AZ, 7, config=cfg)
        tn = run_day_gridtie("HM2", OAK_RIDGE_TN, 1, config=cfg)
        assert az.green_fraction > tn.green_fraction

    def test_net_balance_sign(self, az_day):
        assert az_day.net_metering_balance_wh == pytest.approx(
            az_day.exported_ac_wh - az_day.consumed_ac_wh
        )

    @pytest.mark.parametrize("kwargs", [
        {"inverter_efficiency": 0.0},
        {"inverter_efficiency": 1.5},
        {"psu_efficiency": 0.0},
    ])
    def test_rejects_invalid_efficiencies(self, cfg, kwargs):
        with pytest.raises(ValueError):
            run_day_gridtie("HM2", PHOENIX_AZ, 7, config=cfg, **kwargs)
