"""Unit tests for the battery storage element and battery-equipped baseline."""

import math

import pytest

from repro.environment.irradiance import generate_trace
from repro.environment.locations import PHOENIX_AZ
from repro.power.battery import (
    BATTERY_LEVELS,
    Battery,
    BatteryEquippedSystem,
    DeratingLevel,
)
from repro.pv.array import PVArray


class TestDeratingLevels:
    def test_table3_values(self):
        assert BATTERY_LEVELS["high"].overall == pytest.approx(0.97 * 0.95)
        assert BATTERY_LEVELS["moderate"].overall == pytest.approx(0.95 * 0.85)
        assert BATTERY_LEVELS["low"].overall == pytest.approx(0.93 * 0.75)

    def test_table3_efficiency_ranges(self):
        # Paper Table 3: 92% / 81% / 70% rounded.
        assert round(BATTERY_LEVELS["high"].overall, 2) == 0.92
        assert round(BATTERY_LEVELS["moderate"].overall, 2) == 0.81
        assert round(BATTERY_LEVELS["low"].overall, 2) == 0.70


class TestBattery:
    def test_charge_respects_capacity(self):
        battery = Battery(capacity_wh=10.0, round_trip_efficiency=1.0)
        stored = battery.charge(60.0, 30.0)  # offers 30 Wh
        assert stored == pytest.approx(10.0)
        assert battery.soc == pytest.approx(1.0)

    def test_charge_efficiency_loss(self):
        battery = Battery(capacity_wh=100.0, round_trip_efficiency=0.81)
        stored = battery.charge(60.0, 60.0)  # offers 60 Wh
        assert stored == pytest.approx(60.0 * 0.9)

    def test_round_trip_efficiency(self):
        battery = Battery(capacity_wh=1000.0, round_trip_efficiency=0.81)
        battery.charge(100.0, 60.0)  # 100 Wh in
        delivered = battery.discharge(1000.0, 60.0)  # ask for everything
        assert delivered == pytest.approx(100.0 * 0.81)

    def test_discharge_limited_by_store(self):
        battery = Battery(capacity_wh=100.0, round_trip_efficiency=1.0, initial_soc=0.1)
        delivered = battery.discharge(1000.0, 60.0)
        assert delivered == pytest.approx(10.0)
        assert battery.stored_wh == pytest.approx(0.0, abs=1e-12)

    def test_self_discharge_decay(self):
        battery = Battery(
            capacity_wh=100.0, self_discharge_per_day=0.10, initial_soc=1.0
        )
        battery.decay(24.0 * 60.0)
        assert battery.stored_wh == pytest.approx(90.0)

    def test_throughput_tracks_charging(self):
        battery = Battery(capacity_wh=100.0, round_trip_efficiency=1.0)
        battery.charge(60.0, 30.0)
        battery.discharge(60.0, 10.0)
        battery.charge(60.0, 30.0)
        assert battery.throughput_wh == pytest.approx(60.0)

    @pytest.mark.parametrize("kwargs", [
        {"capacity_wh": 0.0},
        {"capacity_wh": 10.0, "round_trip_efficiency": 0.0},
        {"capacity_wh": 10.0, "self_discharge_per_day": 1.0},
        {"capacity_wh": 10.0, "initial_soc": 1.5},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Battery(**kwargs)

    def test_rejects_negative_flows(self):
        battery = Battery(capacity_wh=10.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0, 10.0)
        with pytest.raises(ValueError):
            battery.discharge(-1.0, 10.0)
        with pytest.raises(ValueError):
            battery.decay(-1.0)


class TestBatteryEquippedSystem:
    def test_level_lookup(self, array: PVArray):
        system = BatteryEquippedSystem(array, "moderate")
        assert system.level.name == "moderate"

    def test_unknown_level_raises(self, array: PVArray):
        with pytest.raises(KeyError, match="unknown battery level"):
            BatteryEquippedSystem(array, "ultra")

    def test_custom_level(self, array: PVArray):
        level = DeratingLevel("custom", 0.99, 0.99)
        system = BatteryEquippedSystem(array, level)
        assert system.level.overall == pytest.approx(0.9801)

    def test_harvest_scales_with_derating(self, array: PVArray):
        trace = generate_trace(PHOENIX_AZ, 7, step_minutes=10.0)
        high = BatteryEquippedSystem(array, "high").harvestable_energy_wh(trace)
        low = BatteryEquippedSystem(array, "low").harvestable_energy_wh(trace)
        assert high / low == pytest.approx(
            BATTERY_LEVELS["high"].overall / BATTERY_LEVELS["low"].overall
        )

    def test_harvest_plausible_magnitude(self, array: PVArray):
        trace = generate_trace(PHOENIX_AZ, 7, step_minutes=10.0)
        wh = BatteryEquippedSystem(array, "high").harvestable_energy_wh(trace)
        # A 180 W panel over a 10 h summer day: a few hundred Wh.
        assert 300.0 < wh < 1800.0
