"""Unit tests for the DC/DC converter model."""

import pytest

from repro.power.converter import DCDCConverter


class TestConstruction:
    def test_defaults(self):
        conv = DCDCConverter()
        assert conv.k == 3.0
        assert conv.efficiency == 1.0

    def test_initial_k_clamped(self):
        conv = DCDCConverter(k=100.0, k_max=10.0)
        assert conv.k == 10.0

    @pytest.mark.parametrize("kwargs", [
        {"k_min": 0.0},
        {"k_min": 5.0, "k_max": 2.0},
        {"delta_k": 0.0},
        {"efficiency": 0.0},
        {"efficiency": 1.1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DCDCConverter(**kwargs)


class TestTuning:
    def test_step_up_down(self):
        conv = DCDCConverter(k=3.0, delta_k=0.1)
        assert conv.step_up() == pytest.approx(3.1)
        assert conv.step_down(2) == pytest.approx(2.9)

    def test_steps_clamp_at_bounds(self):
        conv = DCDCConverter(k=0.55, k_min=0.5, delta_k=0.1)
        assert conv.step_down(5) == 0.5
        conv = DCDCConverter(k=9.95, k_max=10.0, delta_k=0.1)
        assert conv.step_up(5) == 10.0

    def test_setter_clamps(self):
        conv = DCDCConverter()
        conv.k = -1.0
        assert conv.k == conv.k_min


class TestElectricalRelations:
    def test_ideal_transformer_conserves_power(self):
        conv = DCDCConverter(k=2.5)
        v_in, i_in = 36.0, 4.0
        v_out = conv.output_voltage(v_in)
        i_out = conv.output_current(i_in)
        assert v_out * i_out == pytest.approx(v_in * i_in)

    def test_transfer_relations(self):
        conv = DCDCConverter(k=3.0)
        assert conv.output_voltage(36.0) == pytest.approx(12.0)
        assert conv.output_current(4.0) == pytest.approx(12.0)
        assert conv.input_voltage(12.0) == pytest.approx(36.0)

    def test_efficiency_scales_output_current(self):
        conv = DCDCConverter(k=3.0, efficiency=0.9)
        assert conv.output_current(4.0) == pytest.approx(4.0 * 3.0 * 0.9)

    def test_reflected_resistance(self):
        conv = DCDCConverter(k=3.0)
        assert conv.reflected_resistance(1.44) == pytest.approx(9.0 * 1.44)

    def test_reflected_resistance_rejects_non_positive(self):
        conv = DCDCConverter()
        with pytest.raises(ValueError):
            conv.reflected_resistance(0.0)
