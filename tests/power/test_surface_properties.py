"""Property-based accuracy contract for the operating-point surfaces.

Every table query must honour the surface's *declared* error bound
(measured at build time, widened by the safety factor) against the exact
Lambert-W / ``brentq`` solvers, preserve the monotonicity and continuity
the physics guarantees, and fall back to the exact path — loudly, on the
fallback counters — the moment a query leaves the tabulated domain.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.power.converter import DCDCConverter
from repro.power.operating_point import solve_operating_point
from repro.power.surface import OperatingSurfaces, SurfaceSpec, get_surfaces
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp

# Stay inside the tabulated envelope with margin; the out-of-domain
# behaviour has its own tests below.
irradiances = st.floats(min_value=2.0, max_value=1400.0)
cell_temps = st.floats(min_value=-25.0, max_value=85.0)
#: ln(rho / rho_mpp) — two units of margin inside the +-12 table span.
rho_logs = st.floats(min_value=-10.0, max_value=10.0)
ratios = st.floats(min_value=0.6, max_value=9.0)
pfracs = st.floats(min_value=0.05, max_value=0.97)


@pytest.fixture(scope="module")
def surfaces() -> OperatingSurfaces:
    surf = get_surfaces(PVArray())
    assert surf is not None
    return surf


def _load_for(surfaces, converter, g, t, rho_log):
    """A load resistance whose reflected rho sits at ``rho_log`` from MPP."""
    mpp = find_mpp(surfaces.device, g, t)
    rho = math.exp(rho_log) * mpp.voltage * mpp.voltage / mpp.power
    return rho / converter.reflected_resistance(1.0)


class TestErrorBound:
    @given(g=irradiances, t=cell_temps)
    @settings(max_examples=60, deadline=None)
    def test_mpp_within_declared_bound(self, surfaces, g, t):
        exact = find_mpp(surfaces.device, g, t)
        table = surfaces.mpp(g, t)
        bound = surfaces.error_report["declared"]
        assert abs(table.power - exact.power) <= bound["mpp_power_rel"] * exact.power
        assert (
            abs(table.voltage - exact.voltage)
            <= bound["mpp_voltage_rel"] * exact.voltage
        )

    @given(g=irradiances, t=cell_temps, k=ratios, x=rho_logs)
    @settings(max_examples=60, deadline=None)
    def test_operating_point_within_declared_bound(self, surfaces, g, t, k, x):
        converter = DCDCConverter(k=k)
        load = _load_for(surfaces, converter, g, t, x)
        assume(load > 1e-9)
        before = surfaces.fallbacks
        table = surfaces.operating_point(converter, load, g, t)
        assume(surfaces.fallbacks == before)  # in-domain draws only
        exact = solve_operating_point(surfaces.device, converter, load, g, t)
        bound = surfaces.error_report["declared"]["op_power_rel"]
        assert abs(table.pv_power - exact.pv_power) <= bound * max(
            exact.pv_power, 1e-9
        )

    @given(g=irradiances, t=cell_temps, pfrac=pfracs)
    @settings(max_examples=60, deadline=None)
    def test_right_branch_hits_target_within_bound(self, surfaces, g, t, pfrac):
        exact = find_mpp(surfaces.device, g, t)
        target = pfrac * exact.power
        v = surfaces.right_branch_voltage(g, t, exact.power, target)
        assume(v is not None)
        delivered = surfaces.device.power(v, g, t)
        bound = surfaces.error_report["declared"]["right_branch_power_rel"]
        assert abs(delivered - target) <= bound * exact.power
        assert v >= exact.voltage * 0.99  # genuinely the right branch

    def test_declared_bounds_exceed_measured(self, surfaces):
        report = surfaces.error_report
        for name, measured in report["measured"].items():
            assert report["declared"][name] >= measured


class TestPhysicalShape:
    @given(t=cell_temps, g_lo=irradiances, g_hi=irradiances)
    @settings(max_examples=60, deadline=None)
    def test_mpp_power_monotone_in_irradiance(self, surfaces, t, g_lo, g_hi):
        assume(g_lo < g_hi)
        p_lo = surfaces.mpp(g_lo, t).power
        p_hi = surfaces.mpp(g_hi, t).power
        assert p_hi >= p_lo * (1.0 - 1e-12)

    @given(g=st.floats(min_value=3.0, max_value=1300.0), t=cell_temps)
    @settings(max_examples=60, deadline=None)
    def test_mpp_power_continuous_in_irradiance(self, surfaces, g, t):
        """A 0.01% irradiance step moves interpolated power by < 0.1%."""
        base = surfaces.mpp(g, t).power
        near = surfaces.mpp(g * 1.0001, t).power
        assert abs(near - base) <= 1e-3 * base

    @given(g=irradiances, t=cell_temps, k=ratios, x=rho_logs)
    @settings(max_examples=40, deadline=None)
    def test_operating_point_sits_on_load_line(self, surfaces, g, t, k, x):
        converter = DCDCConverter(k=k)
        load = _load_for(surfaces, converter, g, t, x)
        assume(load > 1e-9)
        before = surfaces.fallbacks
        op = surfaces.operating_point(converter, load, g, t)
        assume(surfaces.fallbacks == before)
        rho = converter.reflected_resistance(load)
        assert op.pv_current == pytest.approx(op.pv_voltage / rho, rel=1e-12)


class TestFallbacks:
    def test_dark_panel_is_byte_identical_to_exact(self, surfaces):
        for g in (0.0, -10.0):
            assert surfaces.mpp(g, 25.0) == find_mpp(surfaces.device, g, 25.0)

    @pytest.mark.parametrize(
        "g,t",
        [(2000.0, 25.0), (0.5, 25.0), (800.0, 150.0), (800.0, -60.0)],
    )
    def test_out_of_domain_mpp_falls_back_exact_and_counts(self, surfaces, g, t):
        before = surfaces.fallbacks
        table = surfaces.mpp(g, t)
        exact = find_mpp(surfaces.device, g, t)
        assert surfaces.fallbacks == before + 1  # loud, not silent
        assert table == exact  # the exact object's numbers, bit for bit

    def test_out_of_domain_operating_point_falls_back(self, surfaces):
        converter = DCDCConverter(k=3.0)
        before = surfaces.fallbacks
        table = surfaces.operating_point(converter, 5.0, 2000.0, 25.0)
        exact = solve_operating_point(surfaces.device, converter, 5.0, 2000.0, 25.0)
        assert surfaces.fallbacks == before + 1
        assert table == exact

    def test_degenerate_load_keeps_exact_error_contract(self, surfaces):
        from repro.power.operating_point import OperatingPointError

        converter = DCDCConverter(k=3.0)
        with pytest.raises(ValueError):
            surfaces.operating_point(converter, -1.0, 800.0, 40.0)
        with pytest.raises(OperatingPointError):
            surfaces.operating_point(converter, float("nan"), 800.0, 40.0)

    def test_fallbacks_book_profiler_counter(self, surfaces):
        from repro.telemetry import PhaseProfiler, Telemetry, telemetry_session

        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            surfaces.mpp(2000.0, 25.0)
        assert hub.profile.counters["surface.fallbacks"] == 1

    def test_right_branch_out_of_domain_returns_none(self, surfaces):
        exact = find_mpp(surfaces.device, 800.0, 40.0)
        # pfrac above the tabulated ceiling -> caller must run brentq.
        before = surfaces.fallbacks
        assert (
            surfaces.right_branch_voltage(800.0, 40.0, exact.power, exact.power)
            is None
        )
        assert surfaces.fallbacks == before + 1

    def test_unvectorizable_device_yields_no_surface(self):
        from repro.pv.shading import ShadedSeriesString

        assert get_surfaces(ShadedSeriesString((1.0, 0.5))) is None


class TestIdentity:
    def test_key_changes_with_grid_and_device(self, surfaces):
        other_spec = get_surfaces(PVArray(), spec=SurfaceSpec(n_t=6, n_g=6,
                                                              n_rho=8,
                                                              n_pfrac=6,
                                                              error_samples=8))
        other_device = get_surfaces(PVArray(modules_series=2),
                                    spec=SurfaceSpec(n_t=6, n_g=6, n_rho=8,
                                                     n_pfrac=6,
                                                     error_samples=8))
        keys = {surfaces.key, other_spec.key, other_device.key}
        assert len(keys) == 3

    def test_persistence_roundtrip(self, surfaces, tmp_path):
        path = surfaces.save(tmp_path)
        assert path.exists()
        loaded = OperatingSurfaces.load(surfaces.device, surfaces.spec, tmp_path)
        assert loaded is not None
        assert loaded.key == surfaces.key
        g, t = 700.0, 45.0
        assert loaded.mpp(g, t) == surfaces.mpp(g, t)

    def test_corrupt_cache_file_rebuilds(self, surfaces, tmp_path):
        path = surfaces.save(tmp_path)
        path.write_bytes(b"not an npz")
        assert OperatingSurfaces.load(surfaces.device, surfaces.spec, tmp_path) is None
