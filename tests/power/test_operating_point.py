"""Unit tests for the PV-converter-load operating-point solver."""

import pytest

from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPointError, solve_operating_point
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp


@pytest.fixture
def converter():
    return DCDCConverter(k=3.0)


class TestSolveOperatingPoint:
    def test_dark_panel_yields_zero(self, array: PVArray, converter):
        op = solve_operating_point(array, converter, 1.44, 0.0, 25.0)
        assert op.pv_power == 0.0
        assert op.output_power == 0.0

    def test_equilibrium_on_pv_curve(self, array, converter):
        op = solve_operating_point(array, converter, 1.44, 800.0, 40.0)
        assert op.pv_current == pytest.approx(
            array.current(op.pv_voltage, 800.0, 40.0), abs=1e-6
        )

    def test_power_conservation(self, array, converter):
        op = solve_operating_point(array, converter, 1.44, 800.0, 40.0)
        assert op.output_power == pytest.approx(op.pv_power, rel=1e-9)

    def test_load_line_satisfied(self, array, converter):
        r = 2.0
        op = solve_operating_point(array, converter, r, 800.0, 40.0)
        assert op.output_current == pytest.approx(op.output_voltage / r, rel=1e-9)

    def test_never_exceeds_mpp(self, array, converter):
        mpp = find_mpp(array, 800.0, 40.0)
        for r in (0.5, 1.0, 2.0, 5.0, 20.0):
            op = solve_operating_point(array, converter, r, 800.0, 40.0)
            assert op.pv_power <= mpp.power + 1e-6

    def test_infinite_resistance_open_circuit(self, array, converter):
        op = solve_operating_point(array, converter, float("inf"), 800.0, 40.0)
        assert op.pv_current == 0.0
        assert op.pv_voltage == pytest.approx(
            array.open_circuit_voltage(800.0, 40.0)
        )

    def test_rejects_non_positive_resistance(self, array, converter):
        with pytest.raises(ValueError):
            solve_operating_point(array, converter, 0.0, 800.0, 40.0)

    def test_lower_resistance_lower_voltage(self, array, converter):
        heavy = solve_operating_point(array, converter, 0.5, 800.0, 40.0)
        light = solve_operating_point(array, converter, 5.0, 800.0, 40.0)
        assert heavy.pv_voltage < light.pv_voltage

    def test_k_moves_operating_point(self, array):
        """Paper Figure 5: tuning k slides the load line."""
        r = 1.44
        low_k = DCDCConverter(k=2.0)
        high_k = DCDCConverter(k=3.5)
        op_low = solve_operating_point(array, low_k, r, 1000.0, 45.0)
        op_high = solve_operating_point(array, high_k, r, 1000.0, 45.0)
        assert op_low.pv_voltage < op_high.pv_voltage


class _DegenerateDevice:
    """An unphysical I-V curve: the solver cannot bracket a root."""

    def open_circuit_voltage(self, irradiance, cell_temp_c):
        return 20.0

    def current(self, voltage, irradiance, cell_temp_c):
        return -1.0


class TestOperatingPointError:
    def test_is_a_runtime_error(self):
        assert issubclass(OperatingPointError, RuntimeError)

    @pytest.mark.parametrize("g, t, r", [
        (float("nan"), 40.0, 1.44),
        (800.0, float("nan"), 1.44),
        (800.0, 40.0, float("nan")),
    ])
    def test_nan_inputs_rejected_with_coordinates(self, array, converter, g, t, r):
        with pytest.raises(OperatingPointError, match=r"NaN.*k=3\.0"):
            solve_operating_point(array, converter, r, g, t)

    def test_unbracketable_solve_names_the_cell(self, converter):
        """The wrapped brentq failure carries the (G, T, k, load) cell."""
        with pytest.raises(OperatingPointError) as excinfo:
            solve_operating_point(_DegenerateDevice(), converter, 1.44, 800.0, 40.0)
        message = str(excinfo.value)
        assert "operating-point solve failed" in message
        assert "G=800.0" in message and "load=1.44" in message
        assert isinstance(excinfo.value.__cause__, ValueError)
