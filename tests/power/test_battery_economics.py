"""Unit tests for battery sizing, aging, and cost analysis."""

import pytest

from repro.power.battery_economics import (
    BatteryCostAnalysis,
    CycleLifeModel,
    battery_cost_analysis,
    required_capacity_wh,
)


class TestRequiredCapacity:
    def test_ideal_battery(self):
        # 100 W for 4 h with no de-ratings = 400 Wh.
        capacity = required_capacity_wh(
            100.0, 4.0, max_depth_of_discharge=1.0, round_trip_efficiency=1.0
        )
        assert capacity == pytest.approx(400.0)

    def test_deratings_inflate_capacity(self):
        ideal = required_capacity_wh(100.0, 4.0, 1.0, 1.0)
        real = required_capacity_wh(100.0, 4.0, 0.8, 0.85)
        assert real > ideal * 1.3

    def test_scales_linearly_with_load_and_autonomy(self):
        base = required_capacity_wh(100.0, 4.0)
        assert required_capacity_wh(200.0, 4.0) == pytest.approx(2 * base)
        assert required_capacity_wh(100.0, 8.0) == pytest.approx(2 * base)

    @pytest.mark.parametrize("kwargs", [
        {"load_w": 0.0, "autonomy_hours": 4.0},
        {"load_w": 100.0, "autonomy_hours": 0.0},
        {"load_w": 100.0, "autonomy_hours": 4.0, "max_depth_of_discharge": 0.0},
        {"load_w": 100.0, "autonomy_hours": 4.0, "round_trip_efficiency": 1.5},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            required_capacity_wh(**kwargs)


class TestCycleLife:
    def test_reference_point(self):
        model = CycleLifeModel()
        assert model.cycles_to_failure(0.8) == pytest.approx(500.0)

    def test_shallow_cycles_last_longer(self):
        model = CycleLifeModel()
        assert model.cycles_to_failure(0.2) > 3 * model.cycles_to_failure(0.8)

    def test_service_years_from_cycling(self):
        model = CycleLifeModel(calendar_life_years=100.0)
        years = model.service_years(0.8, cycles_per_day=1.0)
        assert years == pytest.approx(500.0 / 365.0)

    def test_calendar_bound(self):
        model = CycleLifeModel(calendar_life_years=3.0)
        # Very shallow cycling: calendar life dominates.
        assert model.service_years(0.1) == pytest.approx(3.0)

    def test_rejects_invalid_dod(self):
        with pytest.raises(ValueError):
            CycleLifeModel().cycles_to_failure(0.0)

    def test_rejects_bad_cycle_rate(self):
        with pytest.raises(ValueError):
            CycleLifeModel().service_years(0.5, cycles_per_day=0.0)


class TestCostAnalysis:
    def test_buffer_sizing_dominates_large_harvest(self):
        analysis = battery_cost_analysis(daily_buffer_wh=900.0, load_w=100.0)
        assert analysis.capacity_wh == pytest.approx(900.0 / 0.8)

    def test_autonomy_dominates_small_harvest(self):
        analysis = battery_cost_analysis(daily_buffer_wh=50.0, load_w=150.0)
        assert analysis.capacity_wh == pytest.approx(
            required_capacity_wh(150.0, 4.0)
        )

    def test_capital_scales_with_capacity(self):
        small = battery_cost_analysis(400.0, 100.0)
        big = battery_cost_analysis(1200.0, 100.0)
        assert big.capital_cost > small.capital_cost

    def test_annualized_cost_positive_and_substantial(self):
        """The paper's claim: storage is a recurring, material cost."""
        analysis = battery_cost_analysis(daily_buffer_wh=900.0, load_w=120.0)
        assert analysis.annualized_cost > 20.0  # dollars per year, recurring
        assert analysis.service_years < 10.0  # replacements are inevitable

    def test_deep_daily_cycling_shortens_life(self):
        deep = battery_cost_analysis(900.0, 50.0, autonomy_hours=1.0)
        shallow = battery_cost_analysis(100.0, 300.0, autonomy_hours=8.0)
        assert deep.daily_cycle_dod > shallow.daily_cycle_dod
        assert deep.service_years <= shallow.service_years

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            battery_cost_analysis(-1.0, 100.0)
        with pytest.raises(ValueError):
            battery_cost_analysis(500.0, 100.0, cost_per_kwh=0.0)
