"""Unit tests for the ATS / PSU / energy ledger."""

import pytest

from repro.power.psu import (
    AutomaticTransferSwitch,
    EnergyLedger,
    PowerSource,
    PowerSupplyUnit,
)


class TestAutomaticTransferSwitch:
    def test_starts_on_utility(self):
        assert AutomaticTransferSwitch().source is PowerSource.UTILITY

    def test_engages_solar_with_margin(self):
        ats = AutomaticTransferSwitch(margin_fraction=0.1)
        assert ats.update(100.0, 95.0) is PowerSource.UTILITY  # needs 104.5
        assert ats.update(110.0, 95.0) is PowerSource.SOLAR

    def test_releases_below_minimum(self):
        ats = AutomaticTransferSwitch(margin_fraction=0.1)
        ats.update(200.0, 100.0)
        assert ats.source is PowerSource.SOLAR
        assert ats.update(99.0, 100.0) is PowerSource.UTILITY

    def test_hysteresis_prevents_chatter(self):
        ats = AutomaticTransferSwitch(margin_fraction=0.1)
        ats.update(200.0, 100.0)  # -> solar
        # Supply in the hysteresis band [100, 110): stays on solar.
        assert ats.update(105.0, 100.0) is PowerSource.SOLAR
        # Back on utility, same band does not re-engage.
        ats.update(50.0, 100.0)
        assert ats.update(105.0, 100.0) is PowerSource.UTILITY

    def test_switch_count(self):
        ats = AutomaticTransferSwitch()
        ats.update(200.0, 100.0)
        ats.update(50.0, 100.0)
        ats.update(200.0, 100.0)
        assert ats.switch_count == 3

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            AutomaticTransferSwitch(margin_fraction=-0.1)


class TestEnergyLedger:
    def test_accumulates_per_source(self):
        ledger = EnergyLedger()
        ledger.add(PowerSource.SOLAR, 120.0, 30.0)  # 60 Wh
        ledger.add(PowerSource.UTILITY, 60.0, 60.0)  # 60 Wh
        assert ledger.solar_wh == pytest.approx(60.0)
        assert ledger.utility_wh == pytest.approx(60.0)
        assert ledger.total_wh == pytest.approx(120.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyLedger().add(PowerSource.SOLAR, -1.0, 10.0)


class TestPowerSupplyUnit:
    def test_delivery_books_energy(self):
        psu = PowerSupplyUnit()
        psu.ats.update(200.0, 100.0)  # engage solar
        drawn = psu.deliver(120.0, 30.0)
        assert drawn == pytest.approx(120.0)
        assert psu.ledger.solar_wh == pytest.approx(60.0)

    def test_rail_efficiency_increases_upstream_draw(self):
        psu = PowerSupplyUnit(rail_efficiency=0.8)
        drawn = psu.deliver(80.0, 60.0)
        assert drawn == pytest.approx(100.0)

    @pytest.mark.parametrize("kwargs", [
        {"rail_voltage": 0.0},
        {"rail_efficiency": 0.0},
        {"rail_efficiency": 1.2},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PowerSupplyUnit(**kwargs)
