"""Unit tests for span timing, nesting, and aggregates (fake clock)."""

import threading

import pytest

from repro.telemetry.spans import SpanTracker


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


class TestSpanTiming:
    def test_duration_from_clock(self, clock):
        tracker = SpanTracker(clock=clock)
        with tracker.span("work"):
            clock.advance(2.5)
        agg = tracker.aggregates["work"]
        assert agg.count == 1
        assert agg.total_s == pytest.approx(2.5)
        assert agg.min_s == pytest.approx(2.5)
        assert agg.max_s == pytest.approx(2.5)

    def test_aggregate_accumulates(self, clock):
        tracker = SpanTracker(clock=clock)
        for seconds in (1.0, 3.0, 2.0):
            with tracker.span("work"):
                clock.advance(seconds)
        agg = tracker.aggregates["work"]
        assert agg.count == 3
        assert agg.total_s == pytest.approx(6.0)
        assert agg.mean_s == pytest.approx(2.0)
        assert agg.min_s == pytest.approx(1.0)
        assert agg.max_s == pytest.approx(3.0)

    def test_real_clock_is_monotonic(self):
        tracker = SpanTracker()
        with tracker.span("outer"):
            pass
        assert tracker.aggregates["outer"].total_s >= 0.0


class TestNesting:
    def test_depth_and_current(self, clock):
        tracker = SpanTracker(clock=clock)
        assert tracker.depth == 0
        assert tracker.current is None
        with tracker.span("outer") as outer:
            assert tracker.depth == 1
            assert tracker.current is outer
            with tracker.span("inner") as inner:
                assert tracker.depth == 2
                assert tracker.current is inner
            assert tracker.depth == 1
        assert tracker.depth == 0

    def test_self_time_excludes_children(self, clock):
        tracker = SpanTracker(clock=clock)
        with tracker.span("outer"):
            clock.advance(1.0)
            with tracker.span("inner"):
                clock.advance(4.0)
            clock.advance(2.0)
        outer = tracker.aggregates["outer"]
        inner = tracker.aggregates["inner"]
        assert outer.total_s == pytest.approx(7.0)
        assert outer.self_total_s == pytest.approx(3.0)
        assert inner.total_s == pytest.approx(4.0)
        assert inner.self_total_s == pytest.approx(4.0)

    def test_records_carry_parent_and_depth(self, clock):
        tracker = SpanTracker(keep_records=True, clock=clock)
        with tracker.span("outer", kind="day"):
            with tracker.span("inner"):
                clock.advance(1.0)
        inner_rec, outer_rec = tracker.records
        assert inner_rec.name == "inner"
        assert inner_rec.parent == "outer"
        assert inner_rec.depth == 1
        assert outer_rec.parent is None
        assert outer_rec.depth == 0
        assert outer_rec.attrs == {"kind": "day"}

    def test_records_not_kept_by_default(self, clock):
        tracker = SpanTracker(clock=clock)
        with tracker.span("outer"):
            pass
        assert tracker.records == []

    def test_nesting_is_per_thread(self):
        # Regression: the service runs day simulations on several compute
        # threads against one shared tracker.  A shared stack interleaved
        # their spans and raised "span stack corrupted"; each thread must
        # see only its own nesting while aggregates stay shared.
        tracker = SpanTracker()
        barrier = threading.Barrier(4)
        errors = []

        def worker():
            try:
                barrier.wait(timeout=10)
                for _ in range(200):
                    with tracker.span("run_day"):
                        with tracker.span("step"):
                            pass
            except BaseException as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert tracker.aggregates["run_day"].count == 4 * 200
        assert tracker.aggregates["step"].count == 4 * 200
        assert tracker.depth == 0

    def test_mismatched_exit_raises(self, clock):
        tracker = SpanTracker(clock=clock)
        outer = tracker.span("outer")
        inner = tracker.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="span stack corrupted"):
            outer.__exit__(None, None, None)


class TestSnapshot:
    def test_sorted_by_total_descending(self, clock):
        tracker = SpanTracker(clock=clock)
        with tracker.span("fast"):
            clock.advance(1.0)
        with tracker.span("slow"):
            clock.advance(9.0)
        snap = tracker.snapshot()
        assert list(snap) == ["slow", "fast"]
        assert snap["slow"]["count"] == 1
        assert snap["slow"]["total_s"] == pytest.approx(9.0)

    def test_reset(self, clock):
        tracker = SpanTracker(keep_records=True, clock=clock)
        with tracker.span("work"):
            clock.advance(1.0)
        tracker.reset()
        assert tracker.aggregates == {}
        assert tracker.records == []
