"""Unit and integration tests for the hot-path phase profiler."""

from __future__ import annotations

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import location_by_code
from repro.harness.parallel import grid_tasks
from repro.harness.runner import SimulationRunner
from repro.telemetry import (
    NULL_PROFILER,
    NullTelemetry,
    PhaseProfiler,
    Telemetry,
    render_profile,
    telemetry_session,
)
from repro.telemetry.profiling import NullProfiler

CFG = SolarCoreConfig(step_minutes=10.0)


class FakeClock:
    """A deterministic perf_counter: advances by explicit ticks."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestPhaseProfiler:
    def test_add_accumulates(self):
        prof = PhaseProfiler()
        prof.add("step.trace", 0.25)
        prof.add("step.trace", 0.75)
        stat = prof.phases["step.trace"]
        assert stat.count == 2
        assert stat.total_s == 1.0
        assert stat.mean_s == 0.5

    def test_count_accumulates(self):
        prof = PhaseProfiler()
        prof.count("power.brentq_calls")
        prof.count("power.brentq_iterations", 9.0)
        prof.count("power.brentq_iterations", 11.0)
        assert prof.counters["power.brentq_calls"] == 1.0
        assert prof.counters["power.brentq_iterations"] == 20.0

    def test_day_context_records_wall_and_phases(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        with prof.day("day-one", cell=("AZ", 7)):
            clock.tick(0.4)
            prof.add("step.policy", 0.3)
            prof.add("power.operating_point", 0.2)  # nested, not coverage
            prof.count("power.brentq_calls", 5.0)
            clock.tick(0.6)
        (day,) = prof.days
        assert day.label == "day-one"
        assert day.cell == ("AZ", 7)
        assert day.wall_s == pytest.approx(1.0)
        assert day.phases["step.policy"] == (1, 0.3)
        assert day.counters["power.brentq_calls"] == 5.0
        # Coverage counts only the exclusive step.*/day.* partition.
        assert day.attributed_s == pytest.approx(0.3)
        assert day.coverage == pytest.approx(0.3)
        assert prof.coverage == pytest.approx(0.3)

    def test_phases_outside_day_still_accumulate_globally(self):
        prof = PhaseProfiler()
        prof.add("step.policy", 1.0)
        assert prof.phases["step.policy"].count == 1
        assert not prof.days

    def test_nested_day_contexts_do_not_corrupt(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        with prof.day("outer"):
            with prof.day("inner"):  # ignored: days never nest in practice
                clock.tick(1.0)
                prof.add("step.trace", 1.0)
        (day,) = prof.days
        assert day.label == "outer"
        assert day.phases["step.trace"] == (1, 1.0)

    def test_max_days_truncation(self):
        prof = PhaseProfiler(max_days=2)
        for n in range(5):
            with prof.day(f"day-{n}"):
                pass
        assert len(prof.days) == 2
        assert prof.truncated_days == 3

    def test_by_cell_groups(self):
        prof = PhaseProfiler()
        with prof.day("a", cell=("AZ", 7)):
            pass
        with prof.day("b", cell=("AZ", 7)):
            pass
        with prof.day("c", cell=("TN", 1)):
            pass
        with prof.day("d"):
            pass
        groups = prof.by_cell()
        assert len(groups[("AZ", 7)]) == 2
        assert len(groups[("TN", 1)]) == 1
        assert len(groups[None]) == 1

    def test_snapshot_merge_round_trip(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        with prof.day("one", cell=("AZ", 7)):
            clock.tick(2.0)
            prof.add("step.policy", 1.5)
            prof.count("power.brentq_calls", 3.0)
        prof.add("step.trace", 0.5)

        merged = PhaseProfiler()
        merged.merge(prof.snapshot())
        merged.merge(prof.snapshot())  # two workers' worth
        assert merged.phases["step.policy"].count == 2
        assert merged.phases["step.policy"].total_s == pytest.approx(3.0)
        assert merged.phases["step.trace"].total_s == pytest.approx(1.0)
        assert merged.counters["power.brentq_calls"] == 6.0
        assert len(merged.days) == 2
        assert all(day.cell == ("AZ", 7) for day in merged.days)
        assert merged.days[0].wall_s == pytest.approx(2.0)

    def test_merge_respects_max_days(self):
        prof = PhaseProfiler()
        with prof.day("one"):
            pass
        merged = PhaseProfiler(max_days=1)
        merged.merge(prof.snapshot())
        merged.merge(prof.snapshot())
        assert len(merged.days) == 1
        assert merged.truncated_days == 1

    def test_reset(self):
        prof = PhaseProfiler()
        prof.add("step.trace", 1.0)
        prof.count("x", 1.0)
        with prof.day("one"):
            pass
        prof.reset()
        assert not prof.phases and not prof.counters and not prof.days
        assert prof.truncated_days == 0


class TestNullProfiler:
    def test_disabled_and_inert(self):
        null = NullProfiler()
        assert null.enabled is False
        assert NULL_PROFILER.enabled is False
        null.add("step.trace", 1.0)
        null.count("x")
        null.merge({"phases": {"step.trace": {"count": 1, "total_s": 1.0}}})
        assert null.snapshot() == {}
        assert null.by_cell() == {}

    def test_day_context_is_shared_noop(self):
        null = NullProfiler()
        ctx = null.day("anything")
        assert null.day("other") is ctx  # no per-call allocation
        with ctx as inner:
            assert inner is ctx


class TestHubIntegration:
    def test_default_hub_has_null_profiler(self):
        assert Telemetry().profile is NULL_PROFILER
        assert NullTelemetry().profile is NULL_PROFILER

    def test_snapshot_gains_profile_only_when_armed(self):
        plain = Telemetry()
        assert "profile" not in plain.snapshot()
        armed = Telemetry(profiler=PhaseProfiler())
        armed.profile.add("step.trace", 1.0)
        assert armed.snapshot()["profile"]["phases"]["step.trace"]["count"] == 1

    def test_merge_snapshot_folds_profile(self):
        src = Telemetry(profiler=PhaseProfiler())
        src.profile.add("step.policy", 2.0)
        dst = Telemetry(profiler=PhaseProfiler())
        dst.merge_snapshot(src.snapshot())
        assert dst.profile.phases["step.policy"].total_s == pytest.approx(2.0)

    def test_merge_snapshot_without_profiler_ignores_profile(self):
        src = Telemetry(profiler=PhaseProfiler())
        src.profile.add("step.policy", 2.0)
        dst = Telemetry()
        dst.merge_snapshot(src.snapshot())  # must not raise
        assert dst.profile is NULL_PROFILER


class TestDayIntegration:
    def test_profiled_day_covers_95_percent_of_wall(self):
        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            run_day("HM2", location_by_code("AZ"), 7, config=CFG)
        prof = hub.profile
        (day,) = prof.days
        assert day.cell == ("PFCI", 7)
        assert "run_day" in day.label
        # The acceptance bar: the exclusive step/day phases account for
        # at least 95% of the measured day wall-time.
        assert prof.coverage >= 0.95
        # Solver work is counted: every brentq call books its iterations.
        assert prof.counters["power.brentq_calls"] > 0
        assert (
            prof.counters["power.brentq_iterations"]
            > prof.counters["power.brentq_calls"]
        )
        # The partition phases all ran once per step.
        steps = prof.phases["step.trace"].count
        assert steps > 0
        for name in ("step.mpp_solve", "step.supply", "step.policy",
                     "step.record"):
            assert prof.phases[name].count == steps

    def test_profiling_disabled_leaves_no_trace(self):
        hub = Telemetry()  # telemetry on, profiling off
        with telemetry_session(hub):
            run_day("HM2", location_by_code("AZ"), 7, config=CFG)
        assert hub.profile is NULL_PROFILER
        assert "profile" not in hub.snapshot()

    def test_profile_merges_across_four_workers(self):
        tasks = grid_tasks(("H1", "L1"), ("AZ", "TN"), (1, 7))
        hub = Telemetry(profiler=PhaseProfiler())
        with telemetry_session(hub):
            runner = SimulationRunner(CFG, jobs=4)
            results = runner.prefetch(tasks)
        assert len(results) == len(tasks)
        prof = hub.profile
        # One day profile per task, correctly cell-labelled, whichever
        # worker ran it.
        assert len(prof.days) == len(tasks)
        cells = prof.by_cell()
        assert set(cells) == {("PFCI", 1), ("PFCI", 7), ("ORNL", 1),
                              ("ORNL", 7)}
        assert all(len(days) == 2 for days in cells.values())
        # Merged phase counts line up with the summed per-day counts.
        steps = sum(day.phases["step.mpp_solve"][0] for day in prof.days)
        assert prof.phases["step.mpp_solve"].count == steps
        assert prof.coverage >= 0.95
        assert prof.counters["power.brentq_calls"] > 0


class TestRenderProfile:
    def test_disabled_or_empty_renders_nothing(self):
        assert render_profile(NULL_PROFILER) == ""
        assert render_profile(PhaseProfiler()) == ""

    def test_report_sections(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        with prof.day("one", cell=("AZ", 7)):
            clock.tick(1.0)
            prof.add("step.policy", 0.9)
            prof.add("power.operating_point", 0.4)
            prof.count("power.brentq_calls", 10.0)
            prof.count("power.brentq_iterations", 95.0)
        report = render_profile(prof)
        assert "step.policy" in report
        assert "nested" in report  # power.operating_point is not partition
        assert "attributed 90.0%" in report
        assert "9.5 / call" in report
        assert "per-cell wall-time" in report
        assert "AZ 7" in report

    def test_top_n_limits_rows(self):
        prof = PhaseProfiler()
        for n in range(10):
            prof.add(f"step.p{n}", float(n + 1))
        report = render_profile(prof, top=3)
        assert "top 3 of 10" in report
        assert "step.p9" in report  # biggest total listed
        assert "step.p0" not in report
