"""Unit tests for counters, gauges, and fixed-bucket histograms."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(7.5)
        assert g.value == 7.5
        assert g.updates == 2


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_mean_min_max(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(138.875)
        assert h.min == 0.5
        assert h.max == 500.0

    def test_percentile_extremes_are_exact(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.3, 1.5, 3.0, 7.0):
            h.observe(v)
        assert h.percentile(0) == 0.3
        assert h.percentile(100) == 7.0

    def test_percentile_interpolates_within_bucket(self):
        # 100 samples uniform in (0, 10] with bucket bounds every 1.0:
        # the interpolated p50 must land close to the true median.
        h = Histogram("h", buckets=tuple(float(b) for b in range(1, 11)))
        for i in range(1, 101):
            h.observe(i / 10.0)
        assert h.percentile(50) == pytest.approx(5.0, abs=0.5)
        assert h.percentile(95) == pytest.approx(9.5, abs=0.5)

    def test_percentile_overflow_bucket_reports_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(250.0)
        h.observe(900.0)
        assert h.percentile(99) == 900.0

    def test_percentile_empty_and_bounds(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(101)

    def test_snapshot(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        assert h.snapshot()["count"] == 0
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["max"] == 1.5


class TestRegistry:
    def test_lazy_creation_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("level").set(2.0)
        reg.histogram("lat", (1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"level": 2.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}
