"""Unit tests for the telemetry hub, null hub, and process-wide install."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    RingBufferSink,
    Telemetry,
    current,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.events import LoadTuningEvent
from repro.telemetry.hub import _NULL_SPAN


class TestTelemetry:
    def test_emit_fans_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        hub = Telemetry(sinks=[a])
        hub.add_sink(b)
        hub.emit(LoadTuningEvent(minute=1.0, policy="coarse", raises=1, sheds=0))
        assert len(a) == 1
        assert len(b) == 1

    def test_metrics_shortcuts(self):
        hub = Telemetry()
        hub.count("hits")
        hub.count("hits", 2)
        hub.gauge("level", 3.0)
        hub.observe("iters", 5.0)
        snap = hub.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["level"] == 3.0
        assert snap["histograms"]["iters"]["count"] == 1

    def test_span_feeds_histogram_and_aggregate(self):
        hub = Telemetry()
        with hub.span("work", kind="test"):
            pass
        snap = hub.snapshot()
        assert snap["spans"]["work"]["count"] == 1
        assert snap["histograms"]["span.work"]["count"] == 1

    def test_span_nesting_through_hub(self):
        hub = Telemetry()
        with hub.span("outer"):
            with hub.span("inner"):
                pass
        assert hub.spans.aggregates["inner"].count == 1
        assert hub.spans.depth == 0

    def test_enabled_flag(self):
        assert Telemetry().enabled is True

    def test_close_closes_sinks(self, tmp_path):
        from repro.telemetry.sinks import JsonlSink

        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        hub = Telemetry(sinks=[sink])
        hub.close()
        assert sink._file.closed


class TestNullTelemetry:
    def test_disabled(self):
        assert NullTelemetry().enabled is False
        assert NULL_TELEMETRY.enabled is False

    def test_span_returns_shared_singleton(self):
        null = NullTelemetry()
        span = null.span("anything", attr=1)
        assert span is _NULL_SPAN
        assert null.span("other") is span  # no per-call allocation
        with span as inner:
            assert inner is span

    def test_noop_surface(self):
        null = NullTelemetry()
        null.emit(LoadTuningEvent(minute=0.0, policy="p", raises=0, sheds=0))
        null.count("x")
        null.gauge("x", 1.0)
        null.observe("x", 1.0)
        null.close()
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }

    def test_add_sink_raises(self):
        with pytest.raises(RuntimeError, match="NullTelemetry"):
            NullTelemetry().add_sink(RingBufferSink())


class TestInstall:
    def test_default_is_null(self):
        assert current() is NULL_TELEMETRY

    def test_set_and_restore(self):
        hub = Telemetry()
        previous = set_telemetry(hub)
        try:
            assert current() is hub
        finally:
            set_telemetry(previous)
        assert current() is NULL_TELEMETRY

    def test_set_none_restores_null(self):
        set_telemetry(Telemetry())
        assert set_telemetry(None).enabled
        assert current() is NULL_TELEMETRY

    def test_session_scopes_and_restores(self):
        with telemetry_session() as hub:
            assert current() is hub
            assert hub.enabled
        assert current() is NULL_TELEMETRY

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry_session():
                raise RuntimeError("boom")
        assert current() is NULL_TELEMETRY

    def test_session_accepts_explicit_hub(self):
        hub = Telemetry(sinks=[RingBufferSink()])
        with telemetry_session(hub) as installed:
            assert installed is hub
