"""Integration: a simulated day observed end-to-end through telemetry."""

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.telemetry import (
    NULL_TELEMETRY,
    RingBufferSink,
    Telemetry,
    current,
    telemetry_session,
)

# Coarse cadence keeps the instrumented day fast; the counts below are
# cadence-independent identities, not golden values.
CFG = SolarCoreConfig(step_minutes=5.0)


@pytest.fixture()
def traced_day():
    sink = RingBufferSink(capacity=100_000)
    with telemetry_session(sinks=[sink]) as hub:
        day = run_day("HM2", PHOENIX_AZ, 7, config=CFG)
        snap = hub.snapshot()
    return day, sink, snap


class TestRunDayTelemetry:
    def test_tracking_counter_matches_day_result(self, traced_day):
        day, sink, snap = traced_day
        assert day.tracking_events > 0
        assert snap["counters"]["sim.tracking_events"] == day.tracking_events
        assert len(sink.events("tracking")) == day.tracking_events

    def test_dvfs_counter_matches_day_result(self, traced_day):
        day, _, snap = traced_day
        assert snap["counters"]["sim.dvfs_transitions"] == day.dvfs_transitions

    def test_supply_switches_recorded(self, traced_day):
        day, sink, snap = traced_day
        switches = sink.events("supply_switch")
        assert snap["counters"]["sim.supply_switches"] == len(switches)
        assert {e.source for e in switches} <= {"solar", "utility"}

    def test_load_tuning_events_per_tracking_event(self, traced_day):
        day, sink, _ = traced_day
        assert len(sink.events("load_tuning")) == day.tracking_events

    def test_tracking_records_are_plausible(self, traced_day):
        day, sink, _ = traced_day
        for event in sink.events("tracking"):
            assert event.mix == "HM2"
            assert event.iterations >= 1
            assert event.power_w >= 0.0
            assert 0.0 <= event.tracking_error < 1.0

    def test_spans_cover_hot_paths(self, traced_day):
        _, _, snap = traced_day
        assert "run_day" in snap["spans"]
        assert snap["spans"]["run_day"]["count"] == 1
        assert "controller.track" in snap["spans"]
        assert snap["spans"]["controller.track"]["count"] > 0
        # controller.track nests inside run_day, so its total is bounded.
        assert (
            snap["spans"]["controller.track"]["total_s"]
            <= snap["spans"]["run_day"]["total_s"]
        )

    def test_iteration_histogram_populated(self, traced_day):
        day, _, snap = traced_day
        hist = snap["histograms"]["controller.track_iterations"]
        assert hist["count"] == day.tracking_events
        assert hist["max"] >= 1

    def test_session_restored_after_run(self, traced_day):
        assert current() is NULL_TELEMETRY


class TestInjectedTelemetry:
    def test_explicit_hub_bypasses_process_global(self):
        sink = RingBufferSink()
        hub = Telemetry(sinks=[sink])
        day = run_day("HM2", PHOENIX_AZ, 7, config=CFG, telemetry=hub)
        assert current() is NULL_TELEMETRY  # global never touched
        assert len(sink.events("tracking")) == day.tracking_events

    def test_disabled_run_produces_identical_result(self):
        plain = run_day("HM2", PHOENIX_AZ, 7, config=CFG)
        with telemetry_session():
            traced = run_day("HM2", PHOENIX_AZ, 7, config=CFG)
        assert traced.energy_utilization == plain.energy_utilization
        assert traced.tracking_events == plain.tracking_events
        assert traced.dvfs_transitions == plain.dvfs_transitions
