"""Unit tests for typed event records and their dict round-trips."""

import pytest

from repro.telemetry.events import (
    EVENT_TYPES,
    BatteryEvent,
    DegradedModeEvent,
    DVFSAllocationEvent,
    EnergyBalanceEvent,
    FaultInjectedEvent,
    LoadTuningEvent,
    RackDivisionEvent,
    RecoveryEvent,
    SupplySwitchEvent,
    TrackingEvent,
    event_from_dict,
    event_to_dict,
)

SAMPLES = [
    TrackingEvent(
        minute=300.0,
        mix="HM2",
        policy="coarse",
        iterations=7,
        power_w=180.0,
        best_power_w=190.0,
        mpp_w=200.0,
        rail_voltage=11.8,
        load_saturated=False,
        triggered_by="supply-change",
    ),
    SupplySwitchEvent(
        minute=421.0, source="solar", available_solar_w=150.0, load_floor_w=80.0
    ),
    LoadTuningEvent(minute=300.0, policy="coarse", raises=3, sheds=1),
    DVFSAllocationEvent(minute=302.0, budget_w=175.0, allocated_w=172.5),
    BatteryEvent(minute=-1.0, phase="harvested", energy_wh=812.0, derating=0.7),
    RackDivisionEvent(
        minute=300.0, policy="tpr", budget_w=600.0, shares_w=(200.0, 250.0, 150.0)
    ),
    EnergyBalanceEvent(
        minute=300.0,
        policy="MPPT&Opt",
        solar_wh=512.0,
        utility_wh=120.0,
        load_wh=632.0,
        residual_wh=0.0,
    ),
    FaultInjectedEvent(
        minute=600.0,
        kind="sensor_dropout",
        start_min=600.0,
        end_min=float("inf"),
        param=None,
    ),
    DegradedModeEvent(
        minute=620.0,
        reason="sensor-stale",
        stale_min=20.0,
        budget_w=90.0,
        allocated_w=88.5,
    ),
    RecoveryEvent(minute=640.0, source="fault:sensor_dropout", stale_min=40.0),
]


class TestEventTypes:
    def test_registry_covers_all_tags(self):
        assert set(EVENT_TYPES) == {
            "tracking",
            "supply_switch",
            "load_tuning",
            "dvfs_allocation",
            "battery",
            "rack_division",
            "energy_balance",
            "fault_injected",
            "degraded_mode",
            "recovery",
        }

    def test_tags_are_unique_per_class(self):
        tags = [type(e).type_tag for e in SAMPLES]
        assert len(tags) == len(set(tags))


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.type_tag)
    def test_to_dict_from_dict_is_identity(self, event):
        payload = event_to_dict(event)
        assert payload["type"] == event.type_tag
        assert event_from_dict(payload) == event

    def test_tuples_serialize_as_lists(self):
        rack_event = next(e for e in SAMPLES if isinstance(e, RackDivisionEvent))
        payload = event_to_dict(rack_event)
        assert payload["shares_w"] == [200.0, 250.0, 150.0]
        restored = event_from_dict(payload)
        assert restored.shares_w == (200.0, 250.0, 150.0)

    def test_unknown_type_tag_raises(self):
        with pytest.raises(KeyError, match="unknown event type"):
            event_from_dict({"type": "nope", "minute": 0.0})


class TestTrackingEvent:
    def test_tracking_error(self):
        event = SAMPLES[0]
        assert event.tracking_error == pytest.approx(0.05)

    def test_tracking_error_zero_mpp(self):
        event = TrackingEvent(
            minute=0.0,
            mix="H1",
            policy="coarse",
            iterations=1,
            power_w=0.0,
            best_power_w=0.0,
            mpp_w=0.0,
            rail_voltage=12.0,
            load_saturated=True,
        )
        assert event.tracking_error == 0.0
        assert event.triggered_by == "periodic"

    def test_records_are_frozen(self):
        with pytest.raises(AttributeError):
            SAMPLES[0].minute = 5.0
