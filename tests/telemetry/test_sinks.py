"""Unit tests for the ring-buffer, JSONL, and logging sinks."""

import io
import json
import logging

import pytest

from repro.telemetry.events import LoadTuningEvent, SupplySwitchEvent
from repro.telemetry.sinks import (
    JsonlSink,
    LoggingSink,
    RingBufferSink,
    read_jsonl_events,
)


def _switch(minute, source="solar"):
    return SupplySwitchEvent(
        minute=float(minute), source=source, available_solar_w=100.0, load_floor_w=50.0
    )


class TestRingBufferSink:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferSink(capacity=0)

    def test_retains_and_counts(self):
        sink = RingBufferSink(capacity=10)
        for m in range(3):
            sink.emit(_switch(m))
        assert len(sink) == 3
        assert sink.total_emitted == 3
        assert [e.minute for e in sink] == [0.0, 1.0, 2.0]

    def test_capacity_drops_oldest(self):
        sink = RingBufferSink(capacity=2)
        for m in range(5):
            sink.emit(_switch(m))
        assert len(sink) == 2
        assert sink.total_emitted == 5
        assert [e.minute for e in sink] == [3.0, 4.0]

    def test_events_filters_by_tag(self):
        sink = RingBufferSink()
        sink.emit(_switch(1))
        sink.emit(LoadTuningEvent(minute=2.0, policy="coarse", raises=1, sheds=0))
        assert len(sink.events()) == 2
        tuned = sink.events("load_tuning")
        assert len(tuned) == 1
        assert tuned[0].policy == "coarse"

    def test_clear_keeps_total(self):
        sink = RingBufferSink()
        sink.emit(_switch(1))
        sink.clear()
        assert len(sink) == 0
        assert sink.total_emitted == 1


class TestJsonlSink:
    def test_round_trip_via_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = [_switch(1), _switch(2, source="utility")]
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert sink.written == 2
        assert list(read_jsonl_events(path)) == events

    def test_lines_are_valid_compact_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit(_switch(7))
        sink.close()
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["type"] == "supply_switch"
        assert ": " not in lines[0]  # compact separators

    def test_file_object_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(_switch(1))
        sink.close()
        assert not buf.closed
        assert buf.getvalue().count("\n") == 1

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(_switch(1))
        sink.close()
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_jsonl_events(str(path)))) == 1


class TestLoggingSink:
    def test_renders_human_readable_line(self, caplog):
        logger = logging.getLogger("test.telemetry.sink")
        sink = LoggingSink(logger=logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="test.telemetry.sink"):
            sink.emit(_switch(421))
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "[m=421]" in message
        assert "supply_switch" in message
        assert "source=solar" in message

    def test_skips_when_level_disabled(self, caplog):
        logger = logging.getLogger("test.telemetry.sink.quiet")
        sink = LoggingSink(logger=logger, level=logging.DEBUG)
        with caplog.at_level(logging.INFO, logger="test.telemetry.sink.quiet"):
            sink.emit(_switch(1))
        assert caplog.records == []
