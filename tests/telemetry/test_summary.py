"""Unit tests for the post-run telemetry summary rendering."""

from repro.harness.reporting import render_telemetry_summary
from repro.telemetry import NullTelemetry, Telemetry
from repro.telemetry.summary import format_duration, render_summary


class TestFormatDuration:
    def test_unit_selection(self):
        assert format_duration(25e-6) == "25 us"
        assert format_duration(2.5e-3) == "2.5 ms"
        assert format_duration(3.25) == "3.25 s"


class TestRenderSummary:
    def test_disabled_hub_renders_nothing(self):
        assert render_summary(NullTelemetry()) == ""

    def test_counters_and_spans_render(self):
        hub = Telemetry()
        hub.count("sim.tracking_events", 51)
        hub.observe("controller.track_iterations", 7)
        with hub.span("run_day"):
            pass
        text = render_summary(hub)
        assert "telemetry counters" in text
        assert "sim.tracking_events" in text
        assert "51" in text
        assert "controller.track_iterations" in text
        assert "span timings" in text
        assert "run_day" in text
        # Span-duration histograms are folded into the span table, not
        # repeated under distributions.
        assert "span.run_day" not in text

    def test_empty_enabled_hub_renders_empty(self):
        assert render_summary(Telemetry()) == ""


class TestReportingHook:
    def test_uses_current_hub_by_default(self):
        # The process-wide default is the null hub -> empty string.
        assert render_telemetry_summary() == ""

    def test_accepts_explicit_hub(self):
        hub = Telemetry()
        hub.count("x", 2)
        assert "x" in render_telemetry_summary(hub)
