"""Unit tests for logging configuration."""

import io
import logging

import pytest

from repro.telemetry.logconfig import ROOT_LOGGER_NAME, configure_logging, parse_level


class TestParseLevel:
    def test_names_case_insensitive(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level("WARNING") == logging.WARNING

    def test_numeric(self):
        assert parse_level(15) == 15
        assert parse_level("15") == 15  # the CLI passes strings

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown log level"):
            parse_level("banana")


class TestConfigureLogging:
    def test_installs_single_handler_idempotently(self):
        logger = configure_logging("info", stream=io.StringIO())
        configure_logging("debug", stream=io.StringIO())
        ours = [
            h for h in logger.handlers
            if getattr(h, "_repro_telemetry_handler", False)
        ]
        assert len(ours) == 1
        assert logger.level == logging.DEBUG
        assert logger.propagate is False

    def test_module_loggers_route_through_repro_root(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        logging.getLogger(f"{ROOT_LOGGER_NAME}.core.simulation").debug("hello")
        assert "hello" in stream.getvalue()
        assert "repro.core.simulation" in stream.getvalue()
