"""Golden accuracy suite for ``solver="table"``.

The tabulated operating-point surfaces (``repro.power.surface``) replace
the per-minute Lambert-W / ``brentq`` solves with interpolated lookups.
They are *not* byte-identical to the exact path — they carry a measured,
declared error bound instead — so this suite pins the table-mode results
of every golden fixture cell to the exact golden bytes within a
**documented tolerance contract**, and simultaneously proves that
``solver="exact"`` (the default) still reproduces the golden fixture
byte-for-byte, so the fast path can never silently contaminate the
reference results.

Tolerance contract (all bounds deliberately sit an order of magnitude
above the surface's declared interpolation error, because a perturbed
operating point can flip individual DVFS decisions near ties, which
moves whole-step power/throughput by one quantum):

===========================  =======================================
quantity                      bound vs. exact golden value
===========================  =======================================
energies [Wh], PTP [Ginst]    relative ``1e-2`` (floor 1e-6 abs)
MPP power trace [W]           relative ``1e-2`` per step (1e-3 W abs)
on-solar schedule             >= 98% of steps agree
MPPT tracking events          +- 2 events
DVFS transitions              relative 10% (floor +- 4)
metadata / grids              exactly equal (same minutes bytes)
===========================  =======================================

A second battery pushes the table-mode cells through
:class:`SimulationRunner` serially, with ``jobs=4``, and from a warm disk
cache, asserting all three tiers return **byte-identical** table-mode
results — the fast path is approximate versus exact, but deterministic
versus itself.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import location_by_code
from repro.fullsystem.simulation import run_day_fullsystem
from repro.harness.parallel import SweepTask
from repro.harness.runner import SimulationRunner
from repro.rack.simulation import run_day_rack

from tests.golden.capture_fixtures import (
    BATTERY_CELLS,
    CONFIGS,
    FIXED_CELLS,
    FIXTURE_PATH,
    MPPT_CELLS,
)
from tests.golden.test_golden_equivalence import (
    _cell_id,
    assert_bytes_identical,
)

#: Relative bound on daily energies and instruction totals.
ENERGY_RTOL = 1e-2
#: Per-step relative bound on the MPP power trace.
MPP_RTOL = 1e-2
#: Minimum fraction of steps whose on-solar decision matches exact mode.
ON_SOLAR_AGREEMENT = 0.98
#: Allowed drift in MPPT tracking-event count.
TRACKING_EVENT_SLACK = 2
#: Allowed relative drift in DVFS transition count (absolute floor 4).
TRANSITION_RTOL = 0.10

TABLE_CONFIGS = {
    name: dataclasses.replace(cfg, solver="table") for name, cfg in CONFIGS.items()
}


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE_PATH, "rb") as handle:
        return pickle.load(handle)


def _assert_rel(actual: float, expected: float, rtol: float, label: str) -> None:
    assert abs(actual - expected) <= rtol * max(abs(expected), 1e-6), (
        f"{label}: table={actual!r} exact={expected!r} rtol={rtol}"
    )


def _assert_day_close(exact, table) -> None:
    """The DayResult tolerance contract from the module docstring."""
    assert type(table) is type(exact)
    for name in ("mix_name", "location_code", "month", "policy"):
        assert getattr(table, name) == getattr(exact, name)
    assert table.minutes.tobytes() == exact.minutes.tobytes()

    _assert_rel(table.utility_wh, exact.utility_wh, ENERGY_RTOL, "utility_wh")
    _assert_rel(
        table.solar_available_wh, exact.solar_available_wh,
        ENERGY_RTOL, "solar_available_wh",
    )
    _assert_rel(
        table.solar_used_wh, exact.solar_used_wh, ENERGY_RTOL, "solar_used_wh"
    )
    _assert_rel(
        table.retired_ginst_solar, exact.retired_ginst_solar,
        ENERGY_RTOL, "retired_ginst_solar",
    )
    _assert_rel(
        table.retired_ginst_total, exact.retired_ginst_total,
        ENERGY_RTOL, "retired_ginst_total",
    )

    assert np.allclose(table.mpp_w, exact.mpp_w, rtol=MPP_RTOL, atol=1e-3)
    agreement = float(np.mean(table.on_solar == exact.on_solar))
    assert agreement >= ON_SOLAR_AGREEMENT, f"on_solar agreement {agreement:.3f}"
    assert (
        abs(table.tracking_events - exact.tracking_events) <= TRACKING_EVENT_SLACK
    )
    assert abs(table.dvfs_transitions - exact.dvfs_transitions) <= max(
        4.0, TRANSITION_RTOL * exact.dvfs_transitions
    )


class TestTableModeAccuracy:
    """Every golden cell, re-run with ``solver="table"``, lands inside
    the documented tolerance of the exact golden bytes."""

    @pytest.mark.parametrize("cell", MPPT_CELLS, ids=_cell_id)
    def test_run_day(self, golden, cell):
        mix, site, month, policy, cfg = cell
        day = run_day(
            mix, location_by_code(site), month, policy, config=TABLE_CONFIGS[cfg]
        )
        _assert_day_close(golden[("mppt", *cell)], day)

    @pytest.mark.parametrize("cell", FIXED_CELLS, ids=_cell_id)
    def test_run_day_fixed(self, golden, cell):
        mix, site, month, budget, cfg = cell
        day = run_day_fixed(
            mix, location_by_code(site), month, budget, config=TABLE_CONFIGS[cfg]
        )
        _assert_day_close(golden[("fixed", *cell)], day)

    @pytest.mark.parametrize("cell", BATTERY_CELLS, ids=_cell_id)
    def test_run_day_battery(self, golden, cell):
        mix, site, month, derating, cfg = cell
        day = run_day_battery(
            mix, location_by_code(site), month, derating, config=TABLE_CONFIGS[cfg]
        )
        exact = golden[("battery", *cell)]
        assert (day.mix_name, day.location_code, day.month) == (
            exact.mix_name, exact.location_code, exact.month,
        )
        assert day.derating == exact.derating
        _assert_rel(day.harvested_wh, exact.harvested_wh, ENERGY_RTOL, "harvested_wh")
        _assert_rel(
            day.runtime_minutes, exact.runtime_minutes, ENERGY_RTOL,
            "runtime_minutes",
        )
        _assert_rel(day.ptp, exact.ptp, ENERGY_RTOL, "ptp")

    def test_run_day_fullsystem(self, golden):
        for key in [k for k in golden if k[0] == "fullsystem"]:
            _, mix, site, month, cfg = key
            day = run_day_fullsystem(
                mix, location_by_code(site), month, config=TABLE_CONFIGS[cfg]
            )
            exact = golden[key]
            assert day.minutes.tobytes() == exact.minutes.tobytes()
            assert np.allclose(day.mpp_w, exact.mpp_w, rtol=MPP_RTOL, atol=1e-3)
            step_h = float(exact.minutes[1] - exact.minutes[0]) / 60.0
            for name in ("consumed_w", "utility_w"):
                _assert_rel(
                    float(np.sum(getattr(day, name))) * step_h,
                    float(np.sum(getattr(exact, name))) * step_h,
                    ENERGY_RTOL, f"fullsystem {name} energy",
                )
            agreement = float(np.mean(day.on_solar == exact.on_solar))
            assert agreement >= ON_SOLAR_AGREEMENT

    def test_run_day_rack(self, golden):
        for key in [k for k in golden if k[0] == "rack"]:
            _, mixes, site, month, policy, cfg = key
            day = run_day_rack(
                mixes, location_by_code(site), month, policy,
                config=TABLE_CONFIGS[cfg],
            )
            exact = golden[key]
            assert day.minutes.tobytes() == exact.minutes.tobytes()
            _assert_rel(day.total_ptp, exact.total_ptp, ENERGY_RTOL, "rack PTP")
            for got, want in zip(day.retired_ginst, exact.retired_ginst):
                _assert_rel(got, want, ENERGY_RTOL, "per-chip retired")
            agreement = float(np.mean(day.on_solar == exact.on_solar))
            assert agreement >= ON_SOLAR_AGREEMENT


class TestExactModeStaysGolden:
    """``solver="exact"`` — spelled explicitly — is byte-identical to the
    golden fixture, so adding the solver switch cannot have perturbed the
    reference path."""

    def test_explicit_exact_reproduces_golden_bytes(self, golden):
        cell = MPPT_CELLS[0]
        mix, site, month, policy, cfg = cell
        config = dataclasses.replace(CONFIGS[cfg], solver="exact")
        day = run_day(mix, location_by_code(site), month, policy, config=config)
        assert_bytes_identical(golden[("mppt", *cell)], day)

    def test_table_config_differs_in_identity(self):
        # Sweep caches must never serve a table-mode result to an exact
        # query (or vice versa): the solver field is part of config identity.
        assert TABLE_CONFIGS["default"] != CONFIGS["default"]


def _runner_cells() -> list[tuple[str, SweepTask]]:
    cells = []
    for mix, site, month, policy, cfg in MPPT_CELLS:
        cells.append((cfg, SweepTask("mppt", mix, site, month, policy=policy)))
    for mix, site, month, budget, cfg in FIXED_CELLS:
        cells.append((cfg, SweepTask("fixed", mix, site, month, budget_w=budget)))
    for mix, site, month, derating, cfg in BATTERY_CELLS:
        cells.append((cfg, SweepTask("battery", mix, site, month, derating=derating)))
    return cells


class TestTableModeDeterminism:
    """Table mode is approximate versus exact, but must be bit-for-bit
    reproducible versus itself across execution tiers."""

    def test_serial_jobs4_and_warm_cache_agree(self, tmp_path):
        cells = _runner_cells()
        config_names = sorted({cfg for cfg, _ in cells})

        serial: dict = {}
        for name in config_names:
            runner = SimulationRunner(TABLE_CONFIGS[name])
            tasks = [task for cfg, task in cells if cfg == name]
            serial[name] = runner.prefetch(tasks)

        # jobs=4 workers, populating a disk cache as they go.
        for name in config_names:
            runner = SimulationRunner(
                TABLE_CONFIGS[name], jobs=4, cache_dir=tmp_path / name
            )
            tasks = [task for cfg, task in cells if cfg == name]
            results = runner.prefetch(tasks)
            for task in tasks:
                assert_bytes_identical(serial[name][task], results[task])

        # Warm pass: fresh runners, every cell served from disk.
        for name in config_names:
            runner = SimulationRunner(TABLE_CONFIGS[name], cache_dir=tmp_path / name)
            tasks = [task for cfg, task in cells if cfg == name]
            results = runner.prefetch(tasks)
            assert runner.disk.hits == len(tasks)
            assert runner.disk.misses == 0
            for task in tasks:
                assert_bytes_identical(serial[name][task], results[task])
