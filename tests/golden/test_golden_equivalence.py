"""Golden equivalence suite for the unified :class:`DayEngine`.

``tests/golden/fixtures/golden_days.pkl`` was captured from the
*pre-refactor* forked-loop implementations (see ``capture_fixtures.py``).
These tests recompute every fixture cell through the public ``run_day*``
shims — which now all dispatch through the single engine loop — and
assert **byte-identical** results: identical array bytes, dtypes, and
shapes, and exactly equal scalars.  A second battery of tests pushes the
MPPT/fixed/battery cells through :class:`SimulationRunner` with ``jobs=4``
and a warm on-disk cache, pinning the parallel and persisted paths to the
same golden bytes.

If one of these tests fails, the engine changed numerical behaviour.  Fix
the engine; never re-capture the fixture to make the suite pass.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import location_by_code
from repro.fullsystem.simulation import run_day_fullsystem
from repro.harness.parallel import SweepTask
from repro.harness.runner import SimulationRunner
from repro.rack.simulation import run_day_rack

from tests.golden.capture_fixtures import (
    BATTERY_CELLS,
    CONFIGS,
    FIXED_CELLS,
    FIXTURE_PATH,
    MPPT_CELLS,
)


def assert_bytes_identical(expected, actual, path: str = "") -> None:
    """Recursive byte-identity over dataclass results.

    Arrays must match in dtype, shape, and raw bytes; scalars and
    aggregates must compare exactly equal (no tolerance).
    """
    assert type(expected) is type(actual), path or type(expected)
    if isinstance(expected, np.ndarray):
        assert expected.dtype == actual.dtype, path
        assert expected.shape == actual.shape, path
        assert expected.tobytes() == actual.tobytes(), path
    elif dataclasses.is_dataclass(expected):
        for field in dataclasses.fields(expected):
            assert_bytes_identical(
                getattr(expected, field.name),
                getattr(actual, field.name),
                f"{path}.{field.name}",
            )
    elif isinstance(expected, (tuple, list)):
        assert len(expected) == len(actual), path
        for index, (left, right) in enumerate(zip(expected, actual)):
            assert_bytes_identical(left, right, f"{path}[{index}]")
    else:
        assert expected == actual, path


@pytest.fixture(scope="module")
def golden():
    """The committed pre-refactor fixture dict."""
    with open(FIXTURE_PATH, "rb") as handle:
        return pickle.load(handle)


def _cell_id(cell) -> str:
    return "-".join("+".join(p) if isinstance(p, tuple) else str(p) for p in cell)


class TestShimEquivalence:
    """Every public ``run_day*`` shim reproduces the pre-refactor bytes."""

    @pytest.mark.parametrize("cell", MPPT_CELLS, ids=_cell_id)
    def test_run_day(self, golden, cell):
        mix, site, month, policy, cfg = cell
        day = run_day(mix, location_by_code(site), month, policy, config=CONFIGS[cfg])
        assert_bytes_identical(golden[("mppt", *cell)], day)

    @pytest.mark.parametrize("cell", FIXED_CELLS, ids=_cell_id)
    def test_run_day_fixed(self, golden, cell):
        mix, site, month, budget, cfg = cell
        day = run_day_fixed(
            mix, location_by_code(site), month, budget, config=CONFIGS[cfg]
        )
        assert_bytes_identical(golden[("fixed", *cell)], day)

    @pytest.mark.parametrize("cell", BATTERY_CELLS, ids=_cell_id)
    def test_run_day_battery(self, golden, cell):
        mix, site, month, derating, cfg = cell
        day = run_day_battery(
            mix, location_by_code(site), month, derating, config=CONFIGS[cfg]
        )
        assert_bytes_identical(golden[("battery", *cell)], day)

    def test_run_day_fullsystem(self, golden):
        for key in [k for k in golden if k[0] == "fullsystem"]:
            _, mix, site, month, cfg = key
            day = run_day_fullsystem(
                mix, location_by_code(site), month, config=CONFIGS[cfg]
            )
            assert_bytes_identical(golden[key], day)

    def test_run_day_rack(self, golden):
        for key in [k for k in golden if k[0] == "rack"]:
            _, mixes, site, month, policy, cfg = key
            day = run_day_rack(
                mixes, location_by_code(site), month, policy, config=CONFIGS[cfg]
            )
            assert_bytes_identical(golden[key], day)

    def test_fixture_covers_every_kind(self, golden):
        assert {key[0] for key in golden} == {
            "mppt", "fixed", "battery", "fullsystem", "rack",
        }
        assert len(golden) == (
            len(MPPT_CELLS) + len(FIXED_CELLS) + len(BATTERY_CELLS) + 4
        )


def _runner_cells() -> list[tuple[str, SweepTask, tuple]]:
    """(config name, task, fixture key) for every runner-eligible cell."""
    cells = []
    for mix, site, month, policy, cfg in MPPT_CELLS:
        task = SweepTask("mppt", mix, site, month, policy=policy)
        cells.append((cfg, task, ("mppt", mix, site, month, policy, cfg)))
    for mix, site, month, budget, cfg in FIXED_CELLS:
        task = SweepTask("fixed", mix, site, month, budget_w=budget)
        cells.append((cfg, task, ("fixed", mix, site, month, budget, cfg)))
    for mix, site, month, derating, cfg in BATTERY_CELLS:
        task = SweepTask("battery", mix, site, month, derating=derating)
        cells.append((cfg, task, ("battery", mix, site, month, derating, cfg)))
    return cells


class TestRunnerEquivalence:
    """Worker fan-out and the disk cache preserve the golden bytes."""

    def test_jobs4_and_warm_disk_cache_byte_identical(self, golden, tmp_path):
        cells = _runner_cells()
        config_names = sorted({cfg for cfg, _, _ in cells})

        # Cold pass: 4 worker processes, populating the disk cache.
        for name in config_names:
            runner = SimulationRunner(
                CONFIGS[name], jobs=4, cache_dir=tmp_path / name
            )
            tasks = [task for cfg, task, _ in cells if cfg == name]
            results = runner.prefetch(tasks)
            for cfg, task, key in cells:
                if cfg == name:
                    assert_bytes_identical(golden[key], results[task])

        # Warm pass: fresh runners, every cell served from disk.
        for name in config_names:
            runner = SimulationRunner(CONFIGS[name], cache_dir=tmp_path / name)
            tasks = [task for cfg, task, _ in cells if cfg == name]
            results = runner.prefetch(tasks)
            assert runner.disk.hits == len(tasks)
            assert runner.disk.misses == 0
            for cfg, task, key in cells:
                if cfg == name:
                    assert_bytes_identical(golden[key], results[task])
