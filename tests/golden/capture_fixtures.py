"""Capture golden day-simulation fixtures for the equivalence suite.

Run from the repo root::

    PYTHONPATH=src python tests/golden/capture_fixtures.py

The resulting pickle pins the exact ``DayResult`` / ``BatteryDayResult`` /
``FullSystemDayResult`` / ``RackDayResult`` values of every simulation kind
over a small (mix, station, month) grid.  The committed fixture was captured
from the *pre-refactor* forked-loop implementations (the seed path), so the
unified :class:`repro.core.engine.DayEngine` is required to reproduce those
results byte-identically.  Re-capture only for a deliberate, reviewed
behaviour change — never to make a failing equivalence test pass.
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import location_by_code
from repro.fullsystem.simulation import run_day_fullsystem
from repro.rack.simulation import run_day_rack

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_days.pkl"

#: Named configurations the grid is captured under.  ``default`` is the
#: plain fast-step config; ``featureful`` turns on every optional control
#: path (supply-change triggers, adaptive margin, post-track reallocation)
#: so the equivalence suite pins those branches too.
CONFIGS: dict[str, SolarCoreConfig] = {
    "default": SolarCoreConfig(step_minutes=5.0),
    "featureful": SolarCoreConfig(
        step_minutes=5.0,
        supply_change_fraction=0.1,
        adaptive_margin=True,
        realloc_after_track=True,
    ),
}

#: (mix, station, month, policy, config name) MPPT-policy cells.
MPPT_CELLS = [
    ("HM2", "AZ", 7, "MPPT&Opt", "default"),
    ("HM2", "TN", 1, "MPPT&Opt", "default"),
    ("L1", "AZ", 1, "MPPT&IC", "default"),
    ("ML2", "CO", 4, "MPPT&RR", "default"),
    ("HM2", "AZ", 7, "MPPT&Opt", "featureful"),
    ("H1", "NC", 10, "MPPT&Opt", "featureful"),
]

#: (mix, station, month, budget W, config name) Fixed-Power cells.
FIXED_CELLS = [
    ("HM2", "AZ", 7, 100.0, "default"),
    ("L1", "TN", 1, 75.0, "default"),
]

#: (mix, station, month, derating, config name) battery-baseline cells.
BATTERY_CELLS = [
    ("H1", "AZ", 7, 0.81, "default"),
    ("L1", "TN", 1, 0.92, "default"),
]

#: (mix, station, month, config name) full-system cells.
FULLSYSTEM_CELLS = [
    ("ML2", "AZ", 7, "default"),
    ("HM2", "TN", 1, "default"),
]

#: (mixes, station, month, division policy, config name) rack cells.
RACK_CELLS = [
    (("H1", "L1", "ML2"), "AZ", 7, "tpr", "default"),
    (("H1", "L1"), "TN", 1, "equal", "default"),
]


def compute_all() -> dict:
    """Every golden cell, keyed by its coordinates."""
    results: dict = {}
    for mix, site, month, policy, cfg in MPPT_CELLS:
        key = ("mppt", mix, site, month, policy, cfg)
        results[key] = run_day(
            mix, location_by_code(site), month, policy, config=CONFIGS[cfg]
        )
    for mix, site, month, budget, cfg in FIXED_CELLS:
        key = ("fixed", mix, site, month, budget, cfg)
        results[key] = run_day_fixed(
            mix, location_by_code(site), month, budget, config=CONFIGS[cfg]
        )
    for mix, site, month, derating, cfg in BATTERY_CELLS:
        key = ("battery", mix, site, month, derating, cfg)
        results[key] = run_day_battery(
            mix, location_by_code(site), month, derating, config=CONFIGS[cfg]
        )
    for mix, site, month, cfg in FULLSYSTEM_CELLS:
        key = ("fullsystem", mix, site, month, cfg)
        results[key] = run_day_fullsystem(
            mix, location_by_code(site), month, config=CONFIGS[cfg]
        )
    for mixes, site, month, policy, cfg in RACK_CELLS:
        key = ("rack", mixes, site, month, policy, cfg)
        results[key] = run_day_rack(
            mixes, location_by_code(site), month, policy, config=CONFIGS[cfg]
        )
    return results


def main() -> int:
    results = compute_all()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(FIXTURE_PATH, "wb") as handle:
        pickle.dump(results, handle, protocol=4)
    size_kb = FIXTURE_PATH.stat().st_size / 1024.0
    print(f"captured {len(results)} golden cells -> {FIXTURE_PATH} ({size_kb:.0f} KiB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
