"""Property-based tests for partially shaded series strings."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.shading import ShadedSeriesString, find_global_mpp

factors = st.lists(
    st.floats(min_value=0.15, max_value=1.0), min_size=1, max_size=4
).map(tuple)
irradiances = st.floats(min_value=100.0, max_value=1100.0)
temperatures = st.floats(min_value=0.0, max_value=65.0)


@given(f=factors, g=irradiances, t=temperatures)
@settings(max_examples=25, deadline=None)
def test_current_voltage_inverse_consistency(f, g, t):
    """The V -> I -> V -> I roundtrip is stable.

    The comparison is made in current space: in the current-source region
    ``dV/dI`` is enormous, so voltage-space comparisons amplify solver
    tolerance unfairly while current-space ones stay well conditioned.
    """
    string = ShadedSeriesString(f)
    voc = string.open_circuit_voltage(g, t)
    i_max = string.max_string_current(g, t)
    for fraction in (0.3, 0.6, 0.9):
        v = voc * fraction
        i = string.current(v, g, t)
        if 0.0 < i < i_max:
            v_back = string.string_voltage(i, g, t)
            i_back = string.current(v_back, g, t)
            assert math.isclose(i_back, i, rel_tol=1e-6, abs_tol=1e-9)


@given(f=factors, g=irradiances, t=temperatures)
@settings(max_examples=25, deadline=None)
def test_global_mpp_dominates_grid(f, g, t):
    string = ShadedSeriesString(f)
    gm = find_global_mpp(string, g, t, n_samples=60)
    voc = string.open_circuit_voltage(g, t)
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.9):
        assert string.power(voc * fraction, g, t) <= gm.power + 0.05 * gm.power + 1e-6


@given(f=factors, g=irradiances, t=temperatures)
@settings(max_examples=25, deadline=None)
def test_shading_never_increases_power(f, g, t):
    """A shaded string never out-produces the same string unshaded."""
    shaded = ShadedSeriesString(f)
    unshaded = ShadedSeriesString((1.0,) * len(f))
    gm_shaded = find_global_mpp(shaded, g, t, n_samples=50)
    gm_unshaded = find_global_mpp(unshaded, g, t, n_samples=50)
    assert gm_shaded.power <= gm_unshaded.power * (1.0 + 1e-6)
