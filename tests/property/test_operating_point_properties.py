"""Property-based tests for the operating-point solver."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.converter import DCDCConverter
from repro.power.operating_point import solve_operating_point
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp

irradiances = st.floats(min_value=30.0, max_value=1200.0)
temperatures = st.floats(min_value=-10.0, max_value=70.0)
resistances = st.floats(min_value=0.2, max_value=50.0)
ratios = st.floats(min_value=0.6, max_value=8.0)


@given(g=irradiances, t=temperatures, r=resistances, k=ratios)
@settings(max_examples=60)
def test_equilibrium_is_consistent(g, t, r, k):
    """The solved point lies on the PV curve, on the load line, conserves
    power, and never exceeds the MPP."""
    array = PVArray()
    converter = DCDCConverter(k=k)
    op = solve_operating_point(array, converter, r, g, t)

    assert 0.0 < op.pv_voltage < array.open_circuit_voltage(g, t)
    assert math.isclose(
        op.pv_current, array.current(op.pv_voltage, g, t), rel_tol=1e-6, abs_tol=1e-9
    )
    assert math.isclose(
        op.output_current, op.output_voltage / r, rel_tol=1e-6, abs_tol=1e-9
    )
    assert math.isclose(op.output_power, op.pv_power, rel_tol=1e-9, abs_tol=1e-9)
    assert op.pv_power <= find_mpp(array, g, t).power * (1.0 + 1e-9)


@given(g=irradiances, t=temperatures, r=resistances)
@settings(max_examples=40)
def test_output_voltage_monotone_in_k_on_stable_branch(g, t, r):
    """On the stable (right-of-MPP) branch, raising k lowers the output
    voltage — the direction convention the controller's step 2 relies on.
    (On the collapsed branch the sign flips, which is exactly why the
    controller re-anchors with ``_align_k_to_rail``.)"""
    from hypothesis import assume

    array = PVArray()
    v_mpp = find_mpp(array, g, t).voltage
    points = []
    for k in (2.0, 3.0, 4.5, 7.0):
        op = solve_operating_point(array, DCDCConverter(k=k), r, g, t)
        points.append(op)
    assume(all(op.pv_voltage >= v_mpp for op in points))
    voltages = [op.output_voltage for op in points]
    assert all(b < a for a, b in zip(voltages, voltages[1:]))
