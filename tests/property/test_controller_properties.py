"""Property-based tests for the MPPT controller's core invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.load_tuning import make_tuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.workloads.mixes import ALL_MIX_NAMES, mix

mix_names = st.sampled_from(ALL_MIX_NAMES)
policies = st.sampled_from(("MPPT&IC", "MPPT&RR", "MPPT&Opt"))
irradiances = st.floats(min_value=250.0, max_value=1100.0)
temperatures = st.floats(min_value=0.0, max_value=55.0)
minutes = st.floats(min_value=0.0, max_value=599.0)


@given(
    mix_name=mix_names,
    policy=policies,
    g=irradiances,
    t=temperatures,
    minute=minutes,
)
@settings(max_examples=25, deadline=None)
def test_tracking_lands_in_safe_productive_band(mix_name, policy, g, t, minute):
    """The paper's validated invariant: after a tracking event, the system
    draws a large fraction of the available MPP power without exceeding it,
    and the rail is electrically sane."""
    array = PVArray()
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(0)
    config = SolarCoreConfig()
    controller = SolarCoreController(
        array, DCDCConverter(), chip, make_tuner(policy), config
    )
    result = controller.track(g, t, minute)
    mpp = find_mpp(array, g, t)

    assert result.power_w <= mpp.power * (1.0 + 1e-6)
    if result.load_saturated:
        assert chip.levels == (chip.table.max_level,) * chip.n_cores
    else:
        assert result.power_w >= 0.6 * mpp.power
    assert 6.0 < result.rail_voltage < 20.0


@given(mix_name=mix_names, g=irradiances, t=temperatures)
@settings(max_examples=15, deadline=None)
def test_tracking_idempotent_when_settled(mix_name, g, t):
    """A second tracking event under unchanged conditions stays put (within
    one DVFS quantum of drift)."""
    array = PVArray()
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(0)
    controller = SolarCoreController(
        array, DCDCConverter(), chip, make_tuner("MPPT&Opt"), SolarCoreConfig()
    )
    first = controller.track(g, t, 100.0)
    second = controller.track(g, t, 100.0)
    assert abs(second.power_w - first.power_w) <= 0.15 * max(first.power_w, 1.0)
