"""Property-based energy-conservation tests for the unified day engine.

Every supply policy runs through the same :class:`DayEngine` loop, and the
engine books each step into an :class:`EnergyLedger` *independently* of the
recorder's series.  These tests pin the conservation law

    solar energy in + utility energy in == load energy out

for every policy, two ways: the ledger's own per-step residual must vanish,
and the ledger totals must agree with a second accumulation path — the
numpy-summed series of the returned result.  A policy whose hooks consume
power without booking it (or vice versa) fails here even if the golden
suite still passes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SolarCoreConfig
from repro.core.simulation import (
    battery_day_engine,
    fixed_day_engine,
    mppt_day_engine,
)
from repro.environment.locations import location_by_code
from repro.fullsystem.simulation import fullsystem_day_engine
from repro.rack.simulation import rack_day_engine

#: Coarse steps keep one simulated day cheap; conservation is
#: resolution-independent.
CFG = SolarCoreConfig(step_minutes=15.0)

mix_names = st.sampled_from(("H1", "L1", "HM2", "ML2"))
sites = st.sampled_from(("AZ", "CO", "NC", "TN"))
months = st.integers(min_value=1, max_value=12)

#: Absolute slack [Wh] for cross-path comparisons: both paths accumulate
#: hundreds of float64 terms of O(100 W); round-off is far below 1e-6 Wh.
TOL_WH = 1e-6


def approx_wh(value: float):
    return pytest.approx(value, abs=TOL_WH, rel=1e-9)


def assert_conserved(engine, solar_wh, utility_wh) -> None:
    """The ledger balances, and agrees with the result-derived energies."""
    ledger = engine.ledger
    assert abs(ledger.residual_wh) <= TOL_WH
    assert ledger.solar_wh == approx_wh(solar_wh)
    assert ledger.utility_wh == approx_wh(utility_wh)
    assert ledger.load_wh == approx_wh(solar_wh + utility_wh)


@given(mix_name=mix_names, site=sites, month=months)
@settings(max_examples=8, deadline=None)
def test_mppt_day_conserves_energy(mix_name, site, month):
    engine = mppt_day_engine(
        mix_name, location_by_code(site), month, "MPPT&Opt", config=CFG
    )
    day = engine.run()
    assert_conserved(engine, day.solar_used_wh, day.utility_wh)
    # The chip can never draw more than the panel supplies while on solar.
    assert np.all(day.consumed_w[day.on_solar] <= day.mpp_w[day.on_solar] + 1e-9)


@given(mix_name=mix_names, site=sites, month=months,
       budget=st.sampled_from((75.0, 100.0, 140.0)))
@settings(max_examples=8, deadline=None)
def test_fixed_day_conserves_energy(mix_name, site, month, budget):
    engine = fixed_day_engine(
        mix_name, location_by_code(site), month, budget, config=CFG
    )
    day = engine.run()
    assert_conserved(engine, day.solar_used_wh, day.utility_wh)


@given(mix_name=mix_names, site=sites, month=months)
@settings(max_examples=8, deadline=None)
def test_fullsystem_day_conserves_energy(mix_name, site, month):
    engine = fullsystem_day_engine(
        mix_name, location_by_code(site), month, config=CFG
    )
    day = engine.run()
    dt = day.step_minutes
    solar_wh = float(np.sum(day.consumed_w[day.on_solar])) * dt / 60.0
    utility_wh = float(np.sum(day.utility_w)) * dt / 60.0
    assert_conserved(engine, solar_wh, utility_wh)
    # Grid power is only ever drawn off-solar, and vice versa.
    assert np.all(day.utility_w[day.on_solar] == 0.0)
    assert np.all(day.consumed_w[~day.on_solar] == 0.0)


@given(site=sites, month=months,
       mixes=st.sampled_from((("H1", "L1"), ("HM2", "ML2", "L1"))),
       policy=st.sampled_from(("equal", "tpr")))
@settings(max_examples=6, deadline=None)
def test_rack_day_conserves_energy(site, month, mixes, policy):
    engine = rack_day_engine(
        mixes, location_by_code(site), month, policy, config=CFG
    )
    day = engine.run()
    dt = float(day.minutes[1] - day.minutes[0])
    solar_wh = float(np.sum(day.consumed_w[day.on_solar])) * dt / 60.0
    ledger = engine.ledger
    assert abs(ledger.residual_wh) <= TOL_WH
    assert ledger.solar_wh == approx_wh(solar_wh)
    # The rack result does not carry a utility series; the ledger books it.
    assert ledger.utility_wh >= 0.0
    assert ledger.load_wh == approx_wh(solar_wh + ledger.utility_wh)


@given(mix_name=mix_names, site=sites, month=months,
       derating=st.sampled_from((0.7, 0.81, 0.92)))
@settings(max_examples=8, deadline=None)
def test_battery_day_spends_exactly_the_harvest(mix_name, site, month, derating):
    engine = battery_day_engine(
        mix_name, location_by_code(site), month, derating, config=CFG
    )
    day = engine.run()
    policy = engine.policy
    # The charge controller harvests (de-rated) MPP energy; the spend phase
    # must consume exactly that — no energy created or lost in the battery.
    assert policy.spent_wh == approx_wh(policy.harvested_wh)
    assert day.harvested_wh == policy.harvested_wh
    # During harvest the load draws nothing, so the ledger is all zeros.
    ledger = engine.ledger
    assert ledger.solar_wh == 0.0
    assert ledger.utility_wh == 0.0
    assert ledger.load_wh == 0.0
