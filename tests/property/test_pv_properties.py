"""Property-based tests for the PV device models (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pv.array import PVArray
from repro.pv.cell import PVCell, lambertw_of_exp
from repro.pv.mpp import find_mpp
from repro.pv.params import CellParameters, bp3180n

irradiances = st.floats(min_value=20.0, max_value=1200.0)
temperatures = st.floats(min_value=-20.0, max_value=80.0)
log_args = st.floats(min_value=-700.0, max_value=1e6)


@given(y=log_args)
def test_lambertw_satisfies_defining_equation(y):
    w = lambertw_of_exp(y)
    assert w > 0.0
    assert math.isclose(w + math.log(w), y, rel_tol=1e-8, abs_tol=1e-8)


@given(g=irradiances, t=temperatures)
@settings(max_examples=40)
def test_isc_exceeds_any_loaded_current(g, t):
    cell = PVCell(bp3180n().cell)
    isc = cell.short_circuit_current(g, t)
    voc = cell.open_circuit_voltage(g, t)
    for fraction in (0.25, 0.5, 0.75, 0.95):
        assert cell.current(voc * fraction, g, t) <= isc + 1e-9


@given(g=irradiances, t=temperatures)
@settings(max_examples=40)
def test_voltage_current_inverse_roundtrip(g, t):
    cell = PVCell(bp3180n().cell)
    voc = cell.open_circuit_voltage(g, t)
    v = voc * 0.6
    i = cell.current(v, g, t)
    assert math.isclose(cell.voltage(i, g, t), v, rel_tol=1e-6, abs_tol=1e-9)


@given(g=irradiances, t=temperatures)
@settings(max_examples=30)
def test_mpp_bounded_by_voc_isc_product(g, t):
    """Pmax <= Voc * Isc (fill factor < 1), and Pmax > 0 under light."""
    array = PVArray()
    mpp = find_mpp(array, g, t)
    voc = array.open_circuit_voltage(g, t)
    isc = array.short_circuit_current(g, t)
    assert 0.0 < mpp.power <= voc * isc


@given(
    g=irradiances,
    t=temperatures,
    fraction=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=30)
def test_power_below_mpp_everywhere(g, t, fraction):
    array = PVArray()
    mpp = find_mpp(array, g, t)
    v = array.open_circuit_voltage(g, t) * fraction
    assert array.power(v, g, t) <= mpp.power + 1e-6


@given(
    isc=st.floats(min_value=0.5, max_value=10.0),
    voc=st.floats(min_value=0.4, max_value=0.8),
    ideality=st.floats(min_value=1.0, max_value=2.0),
)
@settings(max_examples=30)
def test_calibration_holds_for_arbitrary_cells(isc, voc, ideality):
    """Any cell's model reproduces its own datasheet Isc/Voc at STC."""
    cell = PVCell(
        CellParameters(
            isc_ref=isc, voc_ref=voc, ideality=ideality, series_resistance=1e-3
        )
    )
    assert math.isclose(cell.open_circuit_voltage(1000.0, 25.0), voc, rel_tol=1e-5)
    assert math.isclose(cell.short_circuit_current(1000.0, 25.0), isc, rel_tol=1e-2)
