"""Property-based tests for load tuning and budget allocation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_power import allocate_budget
from repro.core.load_tuning import make_tuner
from repro.multicore.chip import MultiCoreChip
from repro.workloads.mixes import ALL_MIX_NAMES, mix

mix_names = st.sampled_from(ALL_MIX_NAMES)
policies = st.sampled_from(("MPPT&IC", "MPPT&RR", "MPPT&Opt"))
minutes = st.floats(min_value=0.0, max_value=599.0)


@given(mix_name=mix_names, policy=policies, minute=minutes, data=st.data())
@settings(max_examples=40, deadline=None)
def test_increase_monotone_in_power_and_throughput(mix_name, policy, minute, data):
    """Every accepted increase strictly raises chip power and throughput."""
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(data.draw(st.integers(0, 4)))
    tuner = make_tuner(policy)
    p0, t0 = chip.total_power_at(minute), chip.total_throughput_at(minute)
    if tuner.increase(chip, minute):
        assert chip.total_power_at(minute) > p0
        assert chip.total_throughput_at(minute) > t0


@given(mix_name=mix_names, policy=policies, minute=minutes)
@settings(max_examples=40, deadline=None)
def test_decrease_monotone(mix_name, policy, minute):
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(3)
    tuner = make_tuner(policy)
    p0, t0 = chip.total_power_at(minute), chip.total_throughput_at(minute)
    assert tuner.decrease(chip, minute)
    assert chip.total_power_at(minute) < p0
    assert chip.total_throughput_at(minute) < t0


@given(mix_name=mix_names, policy=policies, minute=minutes, steps=st.integers(1, 60))
@settings(max_examples=30, deadline=None)
def test_increase_decrease_sequences_stay_valid(mix_name, policy, minute, steps):
    """Arbitrary tuning sequences keep levels in range and >= 1 active core."""
    chip = MultiCoreChip(mix(mix_name))
    chip.set_all_levels(2)
    tuner = make_tuner(policy)
    for i in range(steps):
        if i % 3 == 0:
            tuner.decrease(chip, minute)
        else:
            tuner.increase(chip, minute)
        assert len(chip.active_cores()) >= 1
        for core in chip.cores:
            assert 0 <= core.level <= chip.table.max_level


@given(
    mix_name=mix_names,
    budget=st.floats(min_value=55.0, max_value=250.0),
    minute=minutes,
)
@settings(max_examples=40, deadline=None)
def test_allocate_budget_never_exceeds(mix_name, budget, minute):
    chip = MultiCoreChip(mix(mix_name))
    if budget < chip.floor_power_at(minute):
        return  # infeasible even with gating
    power = allocate_budget(chip, budget, minute)
    assert power <= budget + 1e-9
    assert chip.total_power_at(minute) <= budget + 1e-9
