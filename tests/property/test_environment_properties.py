"""Property-based tests for the meteorological substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment.irradiance import generate_trace
from repro.environment.locations import ALL_LOCATIONS
from repro.environment.solar_geometry import clear_sky_poa, mid_month_day_of_year

locations = st.sampled_from(ALL_LOCATIONS)
months = st.sampled_from((1, 4, 7, 10))
seeds = st.integers(min_value=0, max_value=2**31)


@given(location=locations, month=months, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_trace_bounded_by_clear_sky(location, month, seed):
    """Weather only ever attenuates: every sample <= clear-sky irradiance."""
    trace = generate_trace(location, month, seed=seed, step_minutes=10.0)
    doy = mid_month_day_of_year(month)
    for minute, g in zip(trace.minutes, trace.irradiance):
        ceiling = clear_sky_poa(location.latitude_deg, doy, minute / 60.0)
        assert g <= ceiling + 1e-9


@given(location=locations, month=months, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_trace_physical_ranges(location, month, seed):
    trace = generate_trace(location, month, seed=seed, step_minutes=10.0)
    assert np.all(trace.irradiance >= 0.0)
    assert np.all(trace.irradiance < 1400.0)  # below the solar constant
    assert np.all(trace.ambient_c > -40.0)
    assert np.all(trace.ambient_c < 55.0)
    t_min, t_max = location.temps_c[month]
    assert np.all(trace.ambient_c >= t_min - 1e-9)
    assert np.all(trace.ambient_c <= t_max + 1e-9)


@given(location=locations, month=months, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_trace_deterministic_in_seed(location, month, seed):
    a = generate_trace(location, month, seed=seed, step_minutes=10.0)
    b = generate_trace(location, month, seed=seed, step_minutes=10.0)
    assert np.array_equal(a.irradiance, b.irradiance)
