"""Property-based invariants for arbitrary :class:`ChipSpec` chips.

The energy-conservation suite pins the day engine on the paper's fixed
``alpha8`` chip; this one re-proves the same physics for *generated*
chips — random core mixes (registry types plus inline custom types with
random DVFS ranges), random tech nodes under both scaling models — so no
heterogeneous configuration can smuggle energy past the ledger or draw
beyond its supply:

* **spec laws** — ``parse(canonical())`` round-trips and the identity
  tracks contents, for every generated spec;
* **energy conservation** — solar in + utility in == load out under
  MPPT, Fixed-Power, and Battery policies, with and without injected
  fault schedules;
* **budget containment** — on solar the chip never draws more than the
  panel's MPP; under a fixed budget it never exceeds the cap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SolarCoreConfig
from repro.core.simulation import (
    battery_day_engine,
    fixed_day_engine,
    mppt_day_engine,
)
from repro.environment.locations import location_by_code
from repro.multicore.chip import MultiCoreChip
from repro.multicore.spec import CORE_TYPES, ChipSpec, CoreTypeSpec
from repro.multicore.techscale import TECH_MODELS, TECH_NODES_NM
from repro.workloads.mixes import mix

#: Conservation is resolution-independent; coarse steps keep a
#: generated-chip day cheap enough for many examples.
STEP_MINUTES = 15.0

TOL_WH = 1e-6

mix_names = st.sampled_from(("H1", "L1", "HM2", "ML2"))
sites = st.sampled_from(("AZ", "CO", "NC", "TN"))
months = st.integers(min_value=1, max_value=12)

#: Deterministic fault schedules spanning the three fault classes, plus
#: the fault-free day.
fault_specs = st.sampled_from((
    None,
    "sensor_dropout@540-660,seed=3",
    "conv_eff@480-720:0.85,seed=5",
    "pv_string@600-780:0.5,seed=7",
))

custom_types = st.builds(
    lambda flo, fspan, vlo, vspan, n, ipc, epi, leak: CoreTypeSpec(
        "cust",
        freq_min_ghz=flo, freq_max_ghz=flo + fspan,
        volt_min_v=vlo, volt_max_v=vlo + vspan, n_levels=n,
        ipc_scale=ipc, epi_scale=epi, leakage_ref_w=leak,
    ),
    flo=st.floats(0.4, 1.5), fspan=st.floats(0.2, 2.0),
    vlo=st.floats(0.7, 1.1), vspan=st.floats(0.05, 0.5),
    n=st.integers(2, 8), ipc=st.floats(0.3, 2.0),
    epi=st.floats(0.2, 2.0), leak=st.floats(0.0, 3.0),
)


@st.composite
def chip_specs(draw) -> ChipSpec:
    """Random mixes of registry types, optionally plus a custom type."""
    names = draw(st.lists(
        st.sampled_from(sorted(CORE_TYPES)), min_size=1, max_size=3,
        unique=True,
    ))
    entries = [(CORE_TYPES[n], draw(st.integers(1, 4))) for n in names]
    if draw(st.booleans()):
        entries.append((draw(custom_types), draw(st.integers(1, 2))))
    return ChipSpec(
        mix=tuple(entries),
        tech_nm=draw(st.sampled_from(TECH_NODES_NM)),
        tech_model=draw(st.sampled_from(TECH_MODELS)),
    )


def config_for(spec: ChipSpec) -> SolarCoreConfig:
    return SolarCoreConfig(
        step_minutes=STEP_MINUTES, chip_spec=spec.canonical()
    )


def assert_conserved(engine, solar_wh: float, utility_wh: float) -> None:
    ledger = engine.ledger
    assert abs(ledger.residual_wh) <= TOL_WH
    approx = lambda v: pytest.approx(v, abs=TOL_WH, rel=1e-9)  # noqa: E731
    assert ledger.solar_wh == approx(solar_wh)
    assert ledger.utility_wh == approx(utility_wh)
    assert ledger.load_wh == approx(solar_wh + utility_wh)


@given(spec=chip_specs())
@settings(max_examples=20, deadline=None)
def test_generated_specs_round_trip_and_keep_identity(spec):
    assert ChipSpec.parse(spec.canonical()) == spec
    assert ChipSpec.parse(spec.explicit()) == spec
    assert ChipSpec.parse(spec.explicit()).identity() == spec.identity()
    assert spec.n_cores == len(spec.expand())
    assert spec.area_mm2() > 0.0


@given(spec=chip_specs(), mix_name=mix_names, site=sites, month=months,
       faults=fault_specs)
@settings(max_examples=10, deadline=None)
def test_mppt_conserves_energy_on_any_chip(
    spec, mix_name, site, month, faults
):
    engine = mppt_day_engine(
        mix_name, location_by_code(site), month, "MPPT&Opt",
        config=config_for(spec), faults=faults,
    )
    day = engine.run()
    assert_conserved(engine, day.solar_used_wh, day.utility_wh)
    # Budget containment: on solar the chip lives off the panel alone.
    on = day.on_solar
    assert np.all(day.consumed_w[on] <= day.mpp_w[on] + 1e-9)


@given(spec=chip_specs(), mix_name=mix_names, site=sites, month=months,
       faults=fault_specs, headroom=st.sampled_from((1.1, 1.5, 2.5)))
@settings(max_examples=10, deadline=None)
def test_fixed_budget_is_conserved_and_contained_on_any_chip(
    spec, mix_name, site, month, faults, headroom
):
    # A budget the chip can honour: above the no-gating floor across the
    # day, scaled by the drawn headroom so allocation depth varies.
    chip = MultiCoreChip(mix(mix_name), spec=spec, seed=0)
    chip.set_all_min()
    floor_w = max(chip.min_power_at(float(m)) for m in range(0, 1440, 120))
    budget_w = headroom * floor_w
    engine = fixed_day_engine(
        mix_name, location_by_code(site), month, budget_w,
        config=config_for(spec), faults=faults,
    )
    day = engine.run()
    assert_conserved(engine, day.solar_used_wh, day.utility_wh)
    assert np.all(day.consumed_w <= budget_w + 1e-9)


@given(spec=chip_specs(), mix_name=mix_names, site=sites, month=months,
       derating=st.sampled_from((0.7, 0.81, 0.92)))
@settings(max_examples=10, deadline=None)
def test_battery_spends_exactly_the_harvest_on_any_chip(
    spec, mix_name, site, month, derating
):
    engine = battery_day_engine(
        mix_name, location_by_code(site), month, derating,
        config=config_for(spec),
    )
    day = engine.run()
    policy = engine.policy
    approx = pytest.approx(policy.harvested_wh, abs=TOL_WH, rel=1e-9)
    assert policy.spent_wh == approx
    assert day.harvested_wh == policy.harvested_wh
