"""Shared fixtures for the SolarCore reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SolarCoreConfig
from repro.multicore.chip import MultiCoreChip
from repro.pv.array import PVArray
from repro.pv.module import PVModule
from repro.pv.params import bp3180n
from repro.workloads.mixes import mix


@pytest.fixture
def module() -> PVModule:
    """A BP3180N module."""
    return PVModule(bp3180n())


@pytest.fixture
def array() -> PVArray:
    """A single-module BP3180N array."""
    return PVArray()


@pytest.fixture
def chip_hm2() -> MultiCoreChip:
    """An 8-core chip running the heterogeneous HM2 mix."""
    return MultiCoreChip(mix("HM2"))


@pytest.fixture
def chip_h1() -> MultiCoreChip:
    """An 8-core chip running the homogeneous high-EPI H1 mix."""
    return MultiCoreChip(mix("H1"))


@pytest.fixture
def fast_config() -> SolarCoreConfig:
    """A coarse-step configuration for fast day simulations in tests."""
    return SolarCoreConfig(step_minutes=5.0)
