"""Graceful degradation of the controller under sensor dropouts.

The ladder under test (DESIGN.md section 10):

1. Fresh dropout — the last good reading substitutes, tracking proceeds.
2. Stale dropout (past ``sensor_staleness_min``) — the event falls back
   to a conservative degraded-mode budget and sheds load to fit it.
3. Readings return — the controller recovers on the next good read.
"""

import pytest

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.load_tuning import make_tuner
from repro.faults import FaultSchedule, FaultScheduler, FaultySensor
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.telemetry import NULL_TELEMETRY, RingBufferSink, telemetry_session
from repro.workloads.mixes import mix


def make_faulty_controller(spec: str, **config_kwargs):
    """A controller whose sensor obeys the given fault schedule; the
    returned scheduler's ``begin_step`` stands in for the engine loop."""
    scheduler = FaultScheduler(FaultSchedule.parse(spec))
    config = SolarCoreConfig(**config_kwargs)
    chip = MultiCoreChip(mix("HM2"))
    chip.set_all_levels(0)
    controller = SolarCoreController(
        PVArray(),
        DCDCConverter(),
        chip,
        make_tuner("MPPT&Opt", config.enable_pcpg),
        config,
        sensor=FaultySensor(IVSensor(), scheduler),
    )
    return controller, scheduler, chip


def step_and_track(controller, scheduler, minute, irradiance=800.0, temp=40.0):
    scheduler.begin_step(minute, irradiance, NULL_TELEMETRY)
    return controller.track(irradiance, temp, minute)


class TestHoldLastGood:
    SPEC = "sensor_dropout@101-"

    def test_fresh_dropout_rides_on_held_reading(self):
        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        step_and_track(controller, scheduler, 100.0)
        result = step_and_track(controller, scheduler, 103.0)
        assert not controller.degraded
        assert result.power_w > 0.0

    def test_stale_reads_counted(self):
        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        with telemetry_session() as tel:
            step_and_track(controller, scheduler, 100.0)
            step_and_track(controller, scheduler, 103.0)
            snap = tel.snapshot()
        assert snap["counters"]["controller.stale_reads"] > 0
        assert "controller.degraded_tracks" not in snap["counters"]

    def test_staleness_cap_is_configurable(self):
        controller, scheduler, _ = make_faulty_controller(
            self.SPEC, sensor_staleness_min=20.0
        )
        step_and_track(controller, scheduler, 100.0)
        step_and_track(controller, scheduler, 115.0)
        assert not controller.degraded


class TestDegradedEntry:
    SPEC = "sensor_dropout@101-600"

    def test_stale_sensor_enters_degraded_mode(self):
        controller, scheduler, chip = make_faulty_controller(self.SPEC)
        step_and_track(controller, scheduler, 100.0)
        result = step_and_track(controller, scheduler, 120.0)
        assert controller.degraded
        assert result.iterations == 0
        # The enforced budget covers the allocation that was left running.
        assert result.power_w <= result.best_power_w + 1e-9
        assert result.power_w == pytest.approx(chip.total_power_at(120.0))

    def test_budget_is_fraction_of_last_good_power(self):
        controller, scheduler, chip = make_faulty_controller(
            self.SPEC, degraded_budget_fraction=0.5
        )
        good = step_and_track(controller, scheduler, 100.0)
        degraded = step_and_track(controller, scheduler, 120.0)
        floor = chip.floor_power_at(120.0, with_gating=True)
        assert degraded.best_power_w >= max(0.5 * good.power_w, floor) - 1e-9
        # Degraded consumption sits well below the healthy allocation.
        assert degraded.power_w < good.power_w

    def test_degraded_event_emitted_with_budget(self):
        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        sink = RingBufferSink()
        with telemetry_session(sinks=[sink]) as tel:
            step_and_track(controller, scheduler, 100.0)
            step_and_track(controller, scheduler, 120.0)
            snap = tel.snapshot()
        (event,) = sink.events("degraded_mode")
        assert event.reason == "sensor-stale"
        assert event.minute == 120.0
        assert event.stale_min == pytest.approx(20.0)
        assert event.allocated_w <= event.budget_w + 1e-9
        assert snap["counters"]["controller.degraded_tracks"] == 1

    def test_never_tracked_controller_degrades_to_floor(self):
        """A dropout before the first good reading: budget = chip floor."""
        controller, scheduler, chip = make_faulty_controller("sensor_dropout@0-")
        result = step_and_track(controller, scheduler, 50.0)
        assert controller.degraded
        assert result.power_w == pytest.approx(chip.total_power_at(50.0))

    def test_repeat_degraded_tracks_log_once(self, caplog):
        import logging

        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        step_and_track(controller, scheduler, 100.0)
        with caplog.at_level(logging.WARNING, logger="repro.core.controller"):
            step_and_track(controller, scheduler, 120.0)
            step_and_track(controller, scheduler, 130.0)
        assert caplog.text.count("degraded mode") == 1


class TestRecovery:
    SPEC = "sensor_dropout@101-600"

    def test_good_reading_ends_the_episode(self):
        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        step_and_track(controller, scheduler, 100.0)
        step_and_track(controller, scheduler, 120.0)
        assert controller.degraded
        result = step_and_track(controller, scheduler, 610.0)
        assert not controller.degraded
        assert result.iterations > 0

    def test_recovery_event_emitted(self):
        controller, scheduler, _ = make_faulty_controller(self.SPEC)
        sink = RingBufferSink()
        with telemetry_session(sinks=[sink]) as tel:
            step_and_track(controller, scheduler, 100.0)
            step_and_track(controller, scheduler, 120.0)
            step_and_track(controller, scheduler, 610.0)
            snap = tel.snapshot()
        recoveries = [
            e for e in sink.events("recovery") if e.source == "controller"
        ]
        assert recoveries
        assert recoveries[0].minute == 610.0
        assert snap["counters"]["controller.recoveries"] == 1
