"""Property-based invariants under arbitrary seeded fault schedules.

Whatever the schedule throws at the supply chain, two laws must hold:

* **Energy conservation** — the engine's ledger balances exactly
  (solar in + utility in == load out) and agrees with the result's own
  series.  Faults may change *where* energy flows, never invent or
  destroy it.
* **Degraded-mode containment** — every
  :class:`~repro.telemetry.events.DegradedModeEvent` reports an
  allocation no larger than its conservative budget: the controller
  never promises less than it spends.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SolarCoreConfig
from repro.core.simulation import mppt_day_engine
from repro.environment.locations import location_by_code
from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultSpec
from repro.telemetry import RingBufferSink, telemetry_session

#: Coarse steps keep a faulted day cheap; both invariants are
#: resolution-independent.
CFG = SolarCoreConfig(step_minutes=15.0)

TOL_WH = 1e-6

#: Per-kind parameter ranges that keep the system physical (a fraction
#: of strings surviving, a derate factor, a noise sigma, ...).
_PARAM_RANGES = {
    "sensor_bias": (0.0, 0.01),
    "sensor_noise": (0.0, 0.1),
    "pv_string": (0.1, 1.0),
    "soiling": (0.3, 1.0),
    "conv_eff": (0.5, 1.0),
    "ats_latency": (0.0, 5.0),
}


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(sorted(FAULT_KINDS)))
    start = draw(st.integers(min_value=440, max_value=1000))
    end = draw(st.integers(min_value=start + 10, max_value=1040))
    if kind in _PARAM_RANGES:
        lo, hi = _PARAM_RANGES[kind]
        param = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    else:
        param = None
    return FaultSpec(kind=kind, start_min=float(start), end_min=float(end),
                     param=param)


@st.composite
def fault_schedules(draw):
    specs = draw(st.lists(fault_specs(), min_size=1, max_size=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return FaultSchedule(specs=tuple(specs), seed=seed)


@given(schedule=fault_schedules(),
       site=st.sampled_from(("AZ", "TN")),
       month=st.sampled_from((1, 7)))
@settings(max_examples=12, deadline=None)
def test_energy_conserved_under_any_fault_schedule(schedule, site, month):
    engine = mppt_day_engine(
        "HM2", location_by_code(site), month, "MPPT&Opt", config=CFG,
        faults=schedule,
    )
    day = engine.run()
    ledger = engine.ledger
    assert abs(ledger.residual_wh) <= TOL_WH
    assert abs(ledger.solar_wh - day.solar_used_wh) <= TOL_WH
    assert abs(ledger.utility_wh - day.utility_wh) <= TOL_WH
    assert abs(ledger.load_wh - (day.solar_used_wh + day.utility_wh)) <= TOL_WH
    # Consumption series stays finite and non-negative whatever broke.
    assert np.all(np.isfinite(day.consumed_w))
    assert np.all(day.consumed_w >= 0.0)


@given(schedule=fault_schedules())
@settings(max_examples=10, deadline=None)
def test_degraded_allocation_never_exceeds_budget(schedule):
    # Guarantee at least one long midday dropout so the degraded path
    # actually runs in most examples (the property must hold regardless).
    specs = schedule.specs + (
        FaultSpec("sensor_dropout", 600.0, 720.0),
    )
    schedule = FaultSchedule(specs=specs, seed=schedule.seed)
    sink = RingBufferSink(capacity=100_000)
    with telemetry_session(sinks=[sink]):
        day = mppt_day_engine(
            "HM2", location_by_code("AZ"), 7, "MPPT&Opt", config=CFG,
            faults=schedule,
        ).run()
    events = sink.events("degraded_mode")
    # The drawn schedule can legitimately keep the chip off solar through
    # the whole dropout (an ATS stuck on utility, strings faulted below the
    # floor power, ...), and a chip that never tracks can never detect a
    # stale sensor.  Degraded mode is mandatory only when the chip actually
    # ran on solar deep enough into the dropout for the staleness ladder to
    # fire; the containment property below must hold regardless.
    deep_in_dropout = (
        (day.minutes >= 600.0 + CFG.sensor_staleness_min + CFG.step_minutes)
        & (day.minutes <= 720.0)
        & day.on_solar
    )
    if deep_in_dropout.any():
        assert events, "the forced midday dropout must trigger degraded mode"
    for event in events:
        assert event.allocated_w <= event.budget_w + 1e-9
        assert event.budget_w >= 0.0
        assert event.stale_min > CFG.sensor_staleness_min
