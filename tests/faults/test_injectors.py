"""Unit tests for the fault-injecting component wrappers.

The wrappers' contract: *bit-identical* passthrough outside their
windows, and a physically sensible misbehaviour inside them, all driven
by the scheduler's notion of *now* (advanced via ``begin_step``).
"""

import numpy as np
import pytest

from repro.faults import (
    FaultSchedule,
    FaultScheduler,
    FaultyArray,
    FaultyATS,
    FaultyConverter,
    FaultySensor,
)
from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPoint
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.power.sensors import IVSensor, SensorDropout
from repro.pv.array import PVArray
from repro.telemetry import NULL_TELEMETRY


def scheduler_at(spec: str, minute: float) -> FaultScheduler:
    sched = FaultScheduler(FaultSchedule.parse(spec))
    sched.begin_step(minute, 800.0, NULL_TELEMETRY)
    return sched


def point(v=12.0, i=8.0):
    return OperatingPoint(36.0, i / 3.0, v, i)


class TestFaultyArray:
    def test_passthrough_outside_window(self, array: PVArray):
        faulty = FaultyArray(array, scheduler_at("pv_string@100-200:0.5", 50.0))
        assert faulty.current(20.0, 800.0, 40.0) == array.current(20.0, 800.0, 40.0)

    def test_string_loss_scales_current_not_voltage(self, array: PVArray):
        sched = scheduler_at("pv_string@100-200:0.5", 150.0)
        faulty = FaultyArray(array, sched)
        assert faulty.current(20.0, 800.0, 40.0) == pytest.approx(
            0.5 * array.current(20.0, 800.0, 40.0)
        )
        assert faulty.open_circuit_voltage(800.0, 40.0) == array.open_circuit_voltage(
            800.0, 40.0
        )

    def test_currents_vector_scaled(self, array: PVArray):
        faulty = FaultyArray(array, scheduler_at("pv_string@0-:0.25", 10.0))
        voltages = np.array([5.0, 15.0, 25.0])
        np.testing.assert_allclose(
            faulty.currents(voltages, 800.0, 40.0),
            0.25 * array.currents(voltages, 800.0, 40.0),
        )

    def test_voltage_is_inverse_of_current(self, array: PVArray):
        faulty = FaultyArray(array, scheduler_at("pv_string@0-:0.5", 10.0))
        i = faulty.current(20.0, 800.0, 40.0)
        assert faulty.voltage(i, 800.0, 40.0) == pytest.approx(20.0, abs=1e-6)

    def test_short_circuit_current_scaled(self, array: PVArray):
        faulty = FaultyArray(array, scheduler_at("pv_string@0-:0.5", 0.0))
        assert faulty.short_circuit_current(800.0, 40.0) == pytest.approx(
            0.5 * array.short_circuit_current(800.0, 40.0)
        )

    def test_delegates_unwrapped_attributes(self, array: PVArray):
        faulty = FaultyArray(array, scheduler_at("pv_string@0-", 0.0))
        assert faulty.cell_temperature_from_ambient(800.0, 30.0) == (
            array.cell_temperature_from_ambient(800.0, 30.0)
        )


class TestFaultySensor:
    def test_dropout_raises(self):
        sensor = FaultySensor(IVSensor(), scheduler_at("sensor_dropout@100-200", 150.0))
        with pytest.raises(SensorDropout):
            sensor.read(point())

    def test_passthrough_outside_window(self):
        sensor = FaultySensor(IVSensor(), scheduler_at("sensor_dropout@100-200", 50.0))
        reading = sensor.read(point())
        assert (reading.voltage, reading.current) == (12.0, 8.0)

    def test_stuck_repeats_last_reading(self):
        sched = scheduler_at("sensor_stuck@100-200", 50.0)
        sensor = FaultySensor(IVSensor(), sched)
        sensor.read(point(v=12.0, i=8.0))
        sched.begin_step(150.0, 800.0, NULL_TELEMETRY)
        reading = sensor.read(point(v=6.0, i=4.0))
        assert (reading.voltage, reading.current) == (12.0, 8.0)

    def test_stuck_with_no_history_reads_through(self):
        sensor = FaultySensor(IVSensor(), scheduler_at("sensor_stuck@0-", 10.0))
        assert sensor.read(point()).voltage == 12.0

    def test_bias_drifts_with_time_in_window(self):
        sched = scheduler_at("sensor_bias@100-:0.01", 100.0)
        sensor = FaultySensor(IVSensor(), sched)
        at_onset = sensor.read(point()).voltage
        sched.begin_step(150.0, 800.0, NULL_TELEMETRY)
        later = sensor.read(point()).voltage
        assert at_onset == pytest.approx(12.0)
        assert later == pytest.approx(12.0 * 1.5)  # 0.01/min * 50 min

    def test_noise_is_schedule_seeded(self):
        readings = []
        for _ in range(2):
            sensor = FaultySensor(
                IVSensor(), scheduler_at("sensor_noise@0-:0.05,seed=9", 10.0)
            )
            readings.append(sensor.read(point()))
        assert readings[0] == readings[1]
        assert readings[0].voltage != 12.0


class TestFaultyConverter:
    def test_efficiency_derated_inside_window_only(self):
        sched = scheduler_at("conv_eff@100-200:0.8", 150.0)
        conv = FaultyConverter(sched, efficiency=0.95)
        assert conv.effective_efficiency() == pytest.approx(0.95 * 0.8)
        sched.begin_step(250.0, 800.0, NULL_TELEMETRY)
        assert conv.effective_efficiency() == pytest.approx(0.95)

    def test_derate_flows_into_electrical_relations(self):
        sched = scheduler_at("conv_eff@0-:0.5", 10.0)
        faulty = FaultyConverter(sched, k=3.0)
        pristine = DCDCConverter(k=3.0)
        assert faulty.output_current(2.0) == pytest.approx(
            0.5 * pristine.output_current(2.0)
        )
        assert faulty.reflected_resistance(1.44) == pytest.approx(
            0.5 * pristine.reflected_resistance(1.44)
        )

    def test_k_stuck_freezes_every_knob_path(self):
        sched = scheduler_at("k_stuck@100-200", 150.0)
        conv = FaultyConverter(sched, k=3.0)
        conv.k = 5.0
        conv.step_up()
        conv.step_down(3)
        assert conv.k == 3.0

    def test_k_moves_again_after_window(self):
        sched = scheduler_at("k_stuck@100-200", 250.0)
        conv = FaultyConverter(sched, k=3.0)
        conv.step_up()
        assert conv.k == pytest.approx(3.0 + conv.delta_k)


class TestFaultyATS:
    def engage(self, ats):
        """Solar comfortably above the engage threshold for a 50 W load."""
        return ats.update(available_solar_w=200.0, min_load_w=50.0)

    def test_stuck_switch_holds_previous_source(self):
        sched = scheduler_at("ats_stuck@0-", 10.0)
        ats = FaultyATS(AutomaticTransferSwitch(), sched)
        assert self.engage(ats) is PowerSource.UTILITY
        assert ats.source is PowerSource.UTILITY

    def test_latency_delays_the_transfer(self):
        sched = scheduler_at("ats_latency@0-:2", 0.0)
        ats = FaultyATS(AutomaticTransferSwitch(), sched)
        # The inner switch decides SOLAR immediately; the faulty wrapper
        # reports it only after 2 extra steps of UPS bridging.
        assert self.engage(ats) is PowerSource.UTILITY
        assert self.engage(ats) is PowerSource.UTILITY
        assert self.engage(ats) is PowerSource.SOLAR

    def test_no_fault_is_transparent(self):
        sched = scheduler_at("ats_latency@500-600:2", 0.0)
        ats = FaultyATS(AutomaticTransferSwitch(), sched)
        pristine = AutomaticTransferSwitch()
        assert self.engage(ats) is self.engage(pristine)

    def test_latency_cancelled_when_decision_reverts(self):
        sched = scheduler_at("ats_latency@0-:5", 0.0)
        ats = FaultyATS(AutomaticTransferSwitch(), sched)
        assert self.engage(ats) is PowerSource.UTILITY  # pending switch
        # Solar collapses before the latency elapses: stay on utility.
        assert ats.update(available_solar_w=0.0, min_load_w=50.0) is (
            PowerSource.UTILITY
        )
        assert ats.switch_count == AutomaticTransferSwitch().switch_count + 2


class TestSchedulerTraceFaults:
    def test_trace_gap_holds_last_good_irradiance(self):
        sched = FaultScheduler(FaultSchedule.parse("trace_gap@100-200"))
        assert sched.begin_step(50.0, 640.0, NULL_TELEMETRY) == 640.0
        assert sched.begin_step(150.0, 900.0, NULL_TELEMETRY) == 640.0
        assert sched.begin_step(250.0, 900.0, NULL_TELEMETRY) == 900.0

    def test_soiling_derates_irradiance(self):
        sched = FaultScheduler(FaultSchedule.parse("soiling@100-200:0.8"))
        assert sched.begin_step(150.0, 1000.0, NULL_TELEMETRY) == pytest.approx(800.0)
        assert sched.begin_step(250.0, 1000.0, NULL_TELEMETRY) == 1000.0

    def test_soiling_applies_to_held_gap_value(self):
        sched = FaultScheduler(
            FaultSchedule.parse("trace_gap@100-200,soiling@0-:0.5")
        )
        sched.begin_step(50.0, 600.0, NULL_TELEMETRY)
        assert sched.begin_step(150.0, 1000.0, NULL_TELEMETRY) == pytest.approx(300.0)
