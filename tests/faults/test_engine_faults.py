"""Acceptance contracts of the fault-injection wiring.

1. **Empty schedule is provably free**: every ``faults`` spelling of
   "nothing" (``None``, ``""``, ``"none"``, an empty
   :class:`FaultSchedule`) produces results byte-identical to the
   committed pre-fault golden fixtures.
2. **Seeded schedules replay deterministically** across serial
   execution, a ``jobs=4`` worker pool, and a warm disk cache.
3. Fault telemetry (window entry/exit events) flows out of a day run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import location_by_code
from repro.faults import FaultSchedule
from repro.harness.parallel import SweepTask
from repro.harness.runner import SimulationRunner
from repro.telemetry import RingBufferSink, telemetry_session

from tests.golden.capture_fixtures import CONFIGS, FIXTURE_PATH, MPPT_CELLS
from tests.golden.test_golden_equivalence import assert_bytes_identical

#: The schedule used by every determinism test: touches the sensor, the
#: converter, the array, the ATS, and the trace in one day.
SEEDED_SPEC = (
    "sensor_dropout@600-640,conv_eff@500-700:0.85,pv_string@650-750:0.5,"
    "ats_latency@450-550:2,trace_gap@700-720,seed=11"
)

CFG = CONFIGS["default"]


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE_PATH, "rb") as handle:
        return pickle.load(handle)


class TestEmptyScheduleIsFree:
    """No-fault runs must not perturb a single byte of the golden results."""

    @pytest.mark.parametrize("faults", ["", "none", FaultSchedule()])
    def test_mppt_matches_golden_fixture(self, golden, faults):
        mix_name, site, month, policy, config_name = MPPT_CELLS[0]
        day = run_day(
            mix_name, location_by_code(site), month, policy,
            config=CONFIGS[config_name], faults=faults,
        )
        expected = golden[("mppt", mix_name, site, month, policy, config_name)]
        assert_bytes_identical(expected, day)

    def test_fixed_and_battery_match_no_fault_run(self):
        loc = location_by_code("AZ")
        assert_bytes_identical(
            run_day_fixed("HM2", loc, 7, 100.0, config=CFG),
            run_day_fixed("HM2", loc, 7, 100.0, config=CFG, faults=""),
        )
        assert (
            run_day_battery("H1", loc, 7, 0.81, config=CFG)
            == run_day_battery("H1", loc, 7, 0.81, config=CFG, faults="none")
        )

    def test_empty_schedule_shares_the_cache_entry(self):
        """"No faults" must be one cache identity however it is spelled."""
        a = SweepTask("mppt", "HM2", "AZ", 7, faults=None)
        b = SweepTask("mppt", "HM2", "AZ", 7, faults="")
        c = SweepTask("mppt", "HM2", "AZ", 7, faults="none")
        assert a == b == c


class TestSeededDeterminism:
    @pytest.fixture(scope="class")
    def reference(self):
        """The faulted day computed serially in-process."""
        return run_day(
            "HM2", location_by_code("AZ"), 7, config=CFG, faults=SEEDED_SPEC
        )

    def test_serial_replay_is_byte_identical(self, reference):
        again = run_day(
            "HM2", location_by_code("AZ"), 7, config=CFG, faults=SEEDED_SPEC
        )
        assert_bytes_identical(reference, again)

    def test_worker_pool_replay_is_byte_identical(self, reference):
        task = SweepTask("mppt", "HM2", "AZ", 7, faults=SEEDED_SPEC)
        parallel = SimulationRunner(CFG, jobs=4).prefetch([task])[task]
        assert_bytes_identical(reference, parallel)

    def test_warm_disk_cache_replay_is_byte_identical(self, reference, tmp_path):
        task = SweepTask("mppt", "HM2", "AZ", 7, faults=SEEDED_SPEC)
        SimulationRunner(CFG, cache_dir=tmp_path).prefetch([task])
        warm = SimulationRunner(CFG, cache_dir=tmp_path)
        result = warm.prefetch([task])[task]
        assert warm.disk.hits == 1
        assert_bytes_identical(reference, result)

    def test_faults_change_the_cache_identity(self):
        clean = SweepTask("mppt", "HM2", "AZ", 7)
        faulted = SweepTask("mppt", "HM2", "AZ", 7, faults=SEEDED_SPEC)
        key = "dummy-cfg"
        assert clean.cache_key(key) != faulted.cache_key(key)
        assert "faults=" in faulted.describe()

    def test_equivalent_spellings_share_identity(self):
        a = SweepTask("mppt", "HM2", "AZ", 7,
                      faults="soiling@480-:0.85,sensor_dropout@100-200")
        b = SweepTask("mppt", "HM2", "AZ", 7,
                      faults="sensor_dropout@100-200,soiling@480-")
        assert a == b

    def test_faults_actually_degrade_the_day(self, reference):
        clean = run_day("HM2", location_by_code("AZ"), 7, config=CFG)
        assert reference.retired_ginst_total < clean.retired_ginst_total
        assert reference.energy_utilization < clean.energy_utilization


class TestFaultTelemetry:
    def test_window_entry_and_exit_events_emitted(self):
        sink = RingBufferSink()
        with telemetry_session(sinks=[sink]) as tel:
            run_day(
                "HM2", location_by_code("AZ"), 7, config=CFG,
                faults="sensor_dropout@600-640,conv_eff@500-700:0.85,seed=1",
            )
            snap = tel.snapshot()
        injected = sink.events("fault_injected")
        assert {e.kind for e in injected} == {"sensor_dropout", "conv_eff"}
        cleared = [
            e for e in sink.events("recovery") if e.source.startswith("fault:")
        ]
        assert {e.source for e in cleared} == {
            "fault:sensor_dropout", "fault:conv_eff"
        }
        assert snap["counters"]["faults.injected"] == 2
        assert snap["counters"]["faults.cleared"] == 2

    def test_open_ended_window_never_clears(self):
        sink = RingBufferSink()
        with telemetry_session(sinks=[sink]):
            run_day(
                "HM2", location_by_code("AZ"), 7, config=CFG,
                faults="soiling@600-:0.9",
            )
        assert len(sink.events("fault_injected")) == 1
        assert not [
            e for e in sink.events("recovery") if e.source.startswith("fault:")
        ]
