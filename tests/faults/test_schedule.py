"""Unit tests for the fault-spec grammar and schedule container."""

import math

import pytest

from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultSpec


class TestParse:
    @pytest.mark.parametrize("text", [None, "", "   ", "none", "NONE"])
    def test_empty_spellings_yield_empty_schedule(self, text):
        schedule = FaultSchedule.parse(text)
        assert not schedule
        assert schedule.specs == ()
        assert schedule.canonical() == ""

    def test_single_window(self):
        schedule = FaultSchedule.parse("sensor_dropout@540-560")
        (spec,) = schedule.specs
        assert spec.kind == "sensor_dropout"
        assert spec.start_min == 540.0
        assert spec.end_min == 560.0
        assert spec.param is None

    def test_open_ended_window(self):
        (spec,) = FaultSchedule.parse("soiling@480-").specs
        assert spec.end_min == math.inf
        assert spec.param == FAULT_KINDS["soiling"][0]

    def test_explicit_param(self):
        (spec,) = FaultSchedule.parse("pv_string@600-700:0.25").specs
        assert spec.param == 0.25

    def test_seed_element(self):
        schedule = FaultSchedule.parse("sensor_noise@100-200,seed=7")
        assert schedule.seed == 7
        assert len(schedule.specs) == 1

    def test_whitespace_and_empty_elements_tolerated(self):
        schedule = FaultSchedule.parse(" sensor_dropout@10-20 , , seed=3 ")
        assert schedule.seed == 3
        assert len(schedule.specs) == 1

    @pytest.mark.parametrize("text,match", [
        ("warp_core@10-20", "unknown fault kind"),
        ("sensor_dropout", "expected kind@start-end"),
        ("sensor_dropout@10", "bad fault window"),
        ("sensor_dropout@x-20", "bad number"),
        ("sensor_dropout@10-20:zz", "bad number"),
        ("seed=abc", "bad seed"),
        ("sensor_dropout@20-10", "start < end"),
        ("sensor_dropout@-5-10", "bad number"),
    ])
    def test_malformed_specs_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultSchedule.parse(text)


class TestFaultSpec:
    def test_window_is_half_open(self):
        spec = FaultSpec("sensor_dropout", 100.0, 200.0)
        assert spec.active(100.0)
        assert spec.active(199.9)
        assert not spec.active(200.0)
        assert not spec.active(99.9)

    def test_default_param_filled(self):
        assert FaultSpec("conv_eff", 0.0).param == 0.9

    def test_knobless_kind_stays_none(self):
        assert FaultSpec("k_stuck", 0.0).param is None

    @pytest.mark.parametrize("kwargs", [
        dict(kind="sensor_dropout", start_min=-1.0),
        dict(kind="sensor_dropout", start_min=10.0, end_min=10.0),
        dict(kind="conv_eff", start_min=0.0, param=float("nan")),
        dict(kind="conv_eff", start_min=0.0, param=-0.1),
    ])
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_every_registered_kind_constructs(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind, 0.0, 100.0)


class TestCanonical:
    @pytest.mark.parametrize("text", [
        "sensor_dropout@540-560",
        "soiling@480-:0.7",
        "pv_string@600-700:0.25,seed=7",
        "conv_eff@100-,k_stuck@200-300,seed=42",
        "trace_gap@610.5-620.25",
    ])
    def test_round_trips_to_equal_schedule(self, text):
        schedule = FaultSchedule.parse(text)
        assert FaultSchedule.parse(schedule.canonical()) == schedule

    def test_equivalent_spellings_share_one_canonical_form(self):
        """The canonical string feeds cache keys, so spec order and
        default-vs-explicit params must not split the cache."""
        a = FaultSchedule.parse("soiling@480-:0.85,sensor_dropout@100-200")
        b = FaultSchedule.parse("sensor_dropout@100-200,soiling@480-")
        assert a == b
        assert a.canonical() == b.canonical()

    def test_canonical_orders_by_start_time(self):
        schedule = FaultSchedule.parse("k_stuck@500-600,sensor_dropout@100-200")
        assert schedule.canonical().startswith("sensor_dropout@100-200")

    def test_zero_seed_omitted(self):
        assert "seed" not in FaultSchedule.parse("trace_gap@0-10").canonical()

    def test_kinds(self):
        schedule = FaultSchedule.parse("conv_eff@0-10,conv_eff@20-30,k_stuck@5-")
        assert schedule.kinds() == {"conv_eff", "k_stuck"}
