"""Unit tests for the conventional MPPT algorithms."""

import pytest

from repro.mppt.base import run_tracker
from repro.mppt.incremental_conductance import IncrementalConductance
from repro.mppt.perturb_observe import PerturbObserve
from repro.power.converter import DCDCConverter
from repro.power.operating_point import solve_operating_point
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp


@pytest.fixture
def array():
    return PVArray()


def converge(tracker, array, r, g, t, steps=60):
    for _ in range(steps):
        point = solve_operating_point(array, tracker.converter, r, g, t)
        tracker.step(point)
    return solve_operating_point(array, tracker.converter, r, g, t)


class TestPerturbObserve:
    def test_converges_near_mpp(self, array):
        tracker = PerturbObserve(DCDCConverter(k=5.0, delta_k=0.05))
        op = converge(tracker, array, 1.8, 800.0, 40.0)
        mpp = find_mpp(array, 800.0, 40.0)
        assert op.pv_power > 0.95 * mpp.power

    def test_converges_from_below(self, array):
        tracker = PerturbObserve(DCDCConverter(k=1.2, delta_k=0.05))
        op = converge(tracker, array, 1.8, 800.0, 40.0)
        mpp = find_mpp(array, 800.0, 40.0)
        assert op.pv_power > 0.9 * mpp.power

    def test_oscillates_at_steady_state(self, array):
        tracker = PerturbObserve(DCDCConverter(k=3.0, delta_k=0.05))
        converge(tracker, array, 1.8, 800.0, 40.0)
        ks = []
        for _ in range(8):
            point = solve_operating_point(array, tracker.converter, 1.8, 800.0, 40.0)
            tracker.step(point)
            ks.append(tracker.converter.k)
        assert len(set(round(k, 4) for k in ks)) > 1  # never holds still

    def test_reset_clears_history(self, array):
        tracker = PerturbObserve(DCDCConverter())
        point = solve_operating_point(array, tracker.converter, 1.8, 800.0, 40.0)
        tracker.step(point)
        tracker.reset()
        assert tracker._last_power is None


class TestIncrementalConductance:
    def test_converges_near_mpp(self, array):
        tracker = IncrementalConductance(DCDCConverter(k=5.0, delta_k=0.05))
        op = converge(tracker, array, 1.8, 800.0, 40.0)
        mpp = find_mpp(array, 800.0, 40.0)
        assert op.pv_power > 0.95 * mpp.power

    def test_holds_within_dead_zone(self, array):
        tracker = IncrementalConductance(
            DCDCConverter(k=3.0, delta_k=0.05), tolerance=0.05
        )
        converge(tracker, array, 1.8, 800.0, 40.0, steps=80)
        k_before = tracker.converter.k
        for _ in range(6):
            point = solve_operating_point(array, tracker.converter, 1.8, 800.0, 40.0)
            tracker.step(point)
        # IncCond's dead zone lets it settle (within one step of rest).
        assert abs(tracker.converter.k - k_before) <= 2 * tracker.converter.delta_k

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            IncrementalConductance(DCDCConverter(), tolerance=-0.1)


class TestRunTracker:
    def test_tracking_efficiency_high_on_slow_profile(self, array):
        profile = [(900.0, 45.0), (850.0, 44.0), (800.0, 43.0)]
        tracker = PerturbObserve(DCDCConverter(k=3.0, delta_k=0.05))
        run = run_tracker(tracker, array, 1.8, profile, steps_per_condition=30)
        assert run.tracking_efficiency > 0.9

    def test_powers_never_exceed_mpp(self, array):
        profile = [(700.0, 40.0), (400.0, 30.0)]
        tracker = IncrementalConductance(DCDCConverter(k=3.0))
        run = run_tracker(tracker, array, 1.8, profile)
        for p, m in zip(run.powers, run.mpp_powers):
            assert p <= m + 1e-6

    def test_run_length(self, array):
        profile = [(700.0, 40.0), (400.0, 30.0)]
        tracker = PerturbObserve(DCDCConverter())
        run = run_tracker(tracker, array, 1.8, profile, steps_per_condition=10)
        assert len(run.powers) == 20
