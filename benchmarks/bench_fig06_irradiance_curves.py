"""Figure 6: BP3180N module I-V/P-V curves across irradiance (T = 25 C)."""

from conftest import emit

from repro.harness.experiments import fig06_module_irradiance_curves
from repro.harness.reporting import format_table


def test_fig06_irradiance_curves(benchmark, out_dir):
    curves = benchmark(fig06_module_irradiance_curves)

    rows = []
    for g in sorted(curves):
        v, i, p = curves[g].approximate_mpp
        rows.append(
            [f"{g:.0f}", f"{curves[g].isc:.2f}", f"{curves[g].voc:.2f}",
             f"{v:.2f}", f"{p:.1f}"]
        )
    table = format_table(["G W/m^2", "Isc A", "Voc V", "Vmpp V", "Pmax W"], rows)
    emit(out_dir, "fig06_irradiance_curves", table)

    # Paper: higher irradiance -> more photocurrent, MPPs move upward.
    gs = sorted(curves)
    iscs = [curves[g].isc for g in gs]
    pmaxes = [curves[g].approximate_mpp[2] for g in gs]
    assert all(b > a for a, b in zip(iscs, iscs[1:]))
    assert all(b > a for a, b in zip(pmaxes, pmaxes[1:]))
