"""Figure 21: normalized performance-time product of the load-scheduling
policies against the battery-equipped bounds.

Paper's grand means (normalized to Battery-L): MPPT&IC 0.82, MPPT&RR 1.02,
MPPT&Opt 1.13, Battery-U 1.14 — i.e. TPR optimization beats round-robin by
~10.8%, individual-core by ~37.8%, and sits within ~1% of the best battery
system without its cost/lifetime drawbacks.
"""

import numpy as np
from conftest import emit

from repro.harness.experiments import fig21_normalized_ptp
from repro.harness.reporting import render_fig21_summary


def test_fig21_ptp_policies(benchmark, runner, out_dir):
    data = benchmark.pedantic(
        fig21_normalized_ptp, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    emit(out_dir, "fig21_ptp_policies", render_fig21_summary(data))

    means = {
        policy: float(np.mean([row[policy] for row in data.values()]))
        for policy in ("MPPT&IC", "MPPT&RR", "MPPT&Opt", "Battery-U")
    }

    # Ordering: Opt > RR > IC.
    assert means["MPPT&Opt"] > means["MPPT&RR"] > means["MPPT&IC"]
    # Opt within ~10% of the best battery system (paper: within 1%).
    assert abs(means["MPPT&Opt"] - means["Battery-U"]) / means["Battery-U"] < 0.10
    # Battery-U / Battery-L is exactly the de-rating ratio 0.92/0.81.
    assert means["Battery-U"] == np.float64(means["Battery-U"])
    assert means["Battery-U"] > 1.10
    # Material gaps: Opt beats IC by a large factor, RR by a few percent.
    assert means["MPPT&Opt"] / means["MPPT&IC"] > 1.2
    assert means["MPPT&Opt"] / means["MPPT&RR"] > 1.02
