"""Figure 15: effective operation duration vs power-transfer threshold.

The paper groups the 16 (station, month) curves into slow, linear, and rapid
decline patterns; the curves here exhibit the same spectrum.
"""

import numpy as np
from conftest import emit

from repro.harness.experiments import fig15_duration_vs_threshold
from repro.harness.reporting import format_series


def test_fig15_duration_thresholds(benchmark, runner, out_dir):
    curves = benchmark.pedantic(
        fig15_duration_vs_threshold, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    lines = [
        format_series(f"{site}-{month}", pts, y_fmt="{:.2f}")
        for (site, month), pts in sorted(curves.items())
    ]
    emit(out_dir, "fig15_duration_thresholds", "\n".join(lines))

    for pts in curves.values():
        durations = [d for _, d in pts]
        # Monotone non-increasing in the threshold.
        assert all(b <= a + 1e-9 for a, b in zip(durations, durations[1:]))

    # The decline spectrum: the budget step from 60 W to 125 W costs little
    # somewhere (slow decline) and a lot somewhere else (rapid decline).
    drops = [pts[1][1] - pts[-1][1] for pts in curves.values() if pts[1][1] > 0]
    assert max(drops) - min(drops) > 0.25
