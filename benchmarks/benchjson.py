"""Machine-readable bench trajectory: ``BENCH_<name>.json`` emit + compare.

Each benchmark writes, next to its human-readable ``.txt`` artifact, a
schema-versioned JSON document splitting its numbers into two classes:

* ``metrics`` — deterministic scalars (energy utilization, PTP, task
  counts).  These must not drift between runs of the same code; the
  comparator **hard-fails** on any change beyond a tiny tolerance.
* ``timings_s`` — wall-clock measurements.  These vary across hosts and
  load, so the comparator only **warns** when they regress beyond a
  generous tolerance; the committed baseline records the trajectory.

Every document carries host info (platform, Python, CPU count) because a
timing without its core count is uninterpretable — the lesson of the
committed 0.95x "speedup" record from a 1-core box.

Usage from a benchmark::

    from benchjson import write_bench_json
    write_bench_json(out_dir, "fig01_fixed_load",
                     metrics={"utilization_400": 0.44},
                     timings_s={"experiment": 1.2})

Usage as a comparator (CI wires this against committed baselines)::

    python benchmarks/benchjson.py compare benchmarks/baselines benchmarks/out
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import tempfile
from pathlib import Path

SCHEMA_VERSION = 1

#: Relative drift allowed in deterministic metrics before a hard failure.
METRIC_RTOL = 1e-6

#: Relative slowdown allowed in timings before a (non-fatal) warning.
TIMING_RTOL = 0.5


def host_info() -> dict:
    """Execution-environment facts attached to every bench document."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def bench_path(out_dir: Path | str, name: str) -> Path:
    """The ``BENCH_<name>.json`` file for a benchmark name."""
    return Path(out_dir) / f"BENCH_{name}.json"


def validate(doc: dict) -> list[str]:
    """Schema problems in ``doc`` (empty list = valid)."""
    errors = []
    if doc.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        errors.append("name must be a non-empty string")
    for section in ("metrics", "timings_s"):
        data = doc.get(section)
        if not isinstance(data, dict):
            errors.append(f"{section} must be a dict")
            continue
        for key, value in data.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or (isinstance(value, float) and not math.isfinite(value)):
                errors.append(
                    f"{section}[{key!r}] must be a finite number, got {value!r}"
                )
    if not isinstance(doc.get("host"), dict):
        errors.append("host must be a dict")
    return errors


def write_bench_json(
    out_dir: Path | str,
    name: str,
    *,
    metrics: dict[str, float] | None = None,
    timings_s: dict[str, float] | None = None,
    extra: dict | None = None,
) -> Path:
    """Atomically write a schema-valid ``BENCH_<name>.json``.

    Args:
        out_dir: Directory the bench artifacts live in.
        name: Benchmark name (matches its ``.txt`` artifact).
        metrics: Deterministic scalars (hard-fail on drift).
        timings_s: Wall-clock measurements [s] (warn-only on regression).
        extra: Free-form context (grid sizes, flags) stored verbatim.

    Raises:
        ValueError: The assembled document fails its own schema.
    """
    doc = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "metrics": {k: float(v) for k, v in (metrics or {}).items()},
        "timings_s": {k: float(v) for k, v in (timings_s or {}).items()},
        "host": host_info(),
    }
    if extra:
        doc["extra"] = extra
    errors = validate(doc)
    if errors:
        raise ValueError(f"invalid bench document {name!r}: {'; '.join(errors)}")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = bench_path(out_dir, name)
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_bench_json(path: Path | str) -> dict:
    """Read and schema-check one bench document.

    Raises:
        ValueError: The file is not a valid schema-``SCHEMA_VERSION``
            bench document (the message lists every problem).
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    errors = validate(doc)
    if errors:
        raise ValueError(f"{path}: {'; '.join(errors)}")
    return doc


def compare(
    baseline: dict,
    current: dict,
    *,
    metric_rtol: float = METRIC_RTOL,
    timing_rtol: float = TIMING_RTOL,
) -> tuple[list[str], list[str]]:
    """Diff one bench document against its baseline.

    Returns:
        ``(failures, warnings)``.  Failures: a deterministic metric
        drifted beyond ``metric_rtol`` or disappeared.  Warnings: a
        timing regressed beyond ``timing_rtol``, or a metric/timing is
        new (no baseline to judge it against).
    """
    failures: list[str] = []
    warnings: list[str] = []
    name = current.get("name", "?")

    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for key, base in sorted(base_metrics.items()):
        if key not in cur_metrics:
            failures.append(f"{name}: metric {key!r} disappeared "
                            f"(baseline {base:g})")
            continue
        cur = cur_metrics[key]
        scale = max(abs(base), abs(cur), 1e-12)
        if abs(cur - base) / scale > metric_rtol:
            failures.append(
                f"{name}: metric {key!r} drifted {base:g} -> {cur:g} "
                f"({(cur - base) / scale:+.3%} > rtol {metric_rtol:g})"
            )
    for key in sorted(set(cur_metrics) - set(base_metrics)):
        warnings.append(f"{name}: new metric {key!r} = {cur_metrics[key]:g} "
                        "(no baseline)")

    base_timings = baseline.get("timings_s", {})
    cur_timings = current.get("timings_s", {})
    for key, base in sorted(base_timings.items()):
        if key not in cur_timings:
            warnings.append(f"{name}: timing {key!r} disappeared")
            continue
        cur = cur_timings[key]
        if base > 0 and cur > base * (1.0 + timing_rtol):
            warnings.append(
                f"{name}: timing {key!r} regressed {base:.3f}s -> {cur:.3f}s "
                f"({cur / base:.2f}x, tolerance {1.0 + timing_rtol:.2f}x; "
                f"baseline host: {baseline.get('host', {}).get('cpu_count', '?')} "
                f"cpus, current: {current.get('host', {}).get('cpu_count', '?')})"
            )
    for key in sorted(set(cur_timings) - set(base_timings)):
        warnings.append(f"{name}: new timing {key!r} = {cur_timings[key]:.3f}s "
                        "(no baseline)")
    return failures, warnings


def compare_dirs(
    baseline_dir: Path | str,
    current_dir: Path | str,
    *,
    metric_rtol: float = METRIC_RTOL,
    timing_rtol: float = TIMING_RTOL,
) -> tuple[list[str], list[str]]:
    """Compare every ``BENCH_*.json`` under two directories.

    A baseline with no current counterpart warns (the bench may simply
    not have run); a current document with no baseline warns too (commit
    one to start its trajectory).
    """
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    failures: list[str] = []
    warnings: list[str] = []
    base_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    cur_files = {p.name: p for p in sorted(current_dir.glob("BENCH_*.json"))}
    for name in sorted(base_files):
        if name not in cur_files:
            warnings.append(f"{name}: baseline present but bench did not run")
            continue
        try:
            baseline = load_bench_json(base_files[name])
            current = load_bench_json(cur_files[name])
        except ValueError as exc:
            failures.append(str(exc))
            continue
        f, w = compare(baseline, current,
                       metric_rtol=metric_rtol, timing_rtol=timing_rtol)
        failures.extend(f)
        warnings.extend(w)
    for name in sorted(set(cur_files) - set(base_files)):
        warnings.append(
            f"{name}: no committed baseline (copy it into the baselines "
            "directory to start its trajectory)"
        )
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchjson",
        description="Compare BENCH_*.json bench runs against baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_p = sub.add_parser("compare", help="diff a bench run against baselines")
    cmp_p.add_argument("baseline_dir")
    cmp_p.add_argument("current_dir")
    cmp_p.add_argument("--metric-rtol", type=float, default=METRIC_RTOL)
    cmp_p.add_argument("--timing-rtol", type=float, default=TIMING_RTOL)
    args = parser.parse_args(argv)

    failures, warnings = compare_dirs(
        args.baseline_dir, args.current_dir,
        metric_rtol=args.metric_rtol, timing_rtol=args.timing_rtol,
    )
    for message in warnings:
        print(f"WARNING: {message}")
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        print(f"\n{len(failures)} metric failure(s), {len(warnings)} warning(s)")
        return 1
    print(f"bench comparison clean ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
