"""Ablation: I/V sensor imperfection and ADC burst averaging.

The controller steers purely on sensed current/voltage (paper Figure 8's
front end).  This study injects multiplicative Gaussian noise and ADC
quantization, then shows the standard mitigation: averaging a burst of
samples per reading recovers most of the lost accuracy (noise falls by
~sqrt(N), and the perturb-observe direction signal is only ~1 %).
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.power.sensors import IVSensor

CASES = (
    ("ideal", 0.0, 0.0, 1),
    ("noise 0.5%", 0.005, 0.0, 1),
    ("noise 2%", 0.02, 0.0, 1),
    ("noise 2%, avg 8", 0.02, 0.0, 8),
    ("noise 5%", 0.05, 0.0, 1),
    ("noise 5%, avg 16", 0.05, 0.0, 16),
    ("ADC 0.1V/0.1A", 0.0, 0.1, 1),
)


def sweep_sensors():
    rows = []
    for label, noise, quant, averaging in CASES:
        cfg = SolarCoreConfig(sensor_averaging=averaging)
        sensor = IVSensor(
            noise_fraction=noise, quantization_v=quant, quantization_a=quant, seed=1
        )
        day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg, sensor=sensor)
        rows.append((label, day.mean_tracking_error, day.energy_utilization))
    return rows


def test_ablation_sensor_noise(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_sensors, rounds=1, iterations=1)

    table = format_table(
        ["sensor front-end", "tracking error", "utilization"],
        [[label, f"{e:.1%}", f"{u:.1%}"] for label, e, u in rows],
    )
    emit(out_dir, "ablation_sensor_noise", table)

    by_label = {label: (e, u) for label, e, u in rows}
    # Raw noise degrades tracking steeply...
    assert by_label["noise 5%"][0] > 2 * by_label["ideal"][0]
    # ...and burst averaging recovers most of it.
    assert by_label["noise 2%, avg 8"][0] < 0.7 * by_label["noise 2%"][0]
    assert by_label["noise 5%, avg 16"][0] < 0.6 * by_label["noise 5%"][0]
    assert by_label["noise 5%, avg 16"][1] > 0.7
