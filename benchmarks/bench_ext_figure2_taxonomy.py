"""Extension: the complete Figure 2 taxonomy — grid-tied vs direct-coupled
vs battery-equipped.

The paper evaluates (B) against (C); this bench adds (A), comparing all
three PV system architectures on the same day: performance, solar share of
the computer's energy, and where the harvest goes.
"""

from conftest import emit

from repro.core.simulation import run_day, run_day_battery
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.power.gridtie import run_day_gridtie


def run_taxonomy():
    gridtie = run_day_gridtie("HM2", PHOENIX_AZ, 7)
    direct = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt")
    battery = run_day_battery("HM2", PHOENIX_AZ, 7, derating=0.81)
    return gridtie, direct, battery


def test_ext_figure2_taxonomy(benchmark, out_dir):
    gridtie, direct, battery = benchmark.pedantic(run_taxonomy, rounds=1, iterations=1)

    direct_green = direct.solar_used_wh / (direct.solar_used_wh + direct.utility_wh)
    rows = [
        ["A: grid-tied", f"{gridtie.ptp:,.0f}", f"{gridtie.green_fraction:.0%}",
         "inverter + interconnect; AC round-trip losses"],
        ["B: direct-coupled (SolarCore)", f"{direct.ptp:,.0f}",
         f"{direct_green:.0%}", "no storage, no inverter; supply-matched V/F"],
        ["C: battery-equipped (typical)", f"{battery.ptp:,.0f}", "100%*",
         "storage de-rating, ~1.4 yr battery replacements"],
    ]
    emit(
        out_dir,
        "ext_figure2_taxonomy",
        format_table(
            ["system (paper Fig 2)", "PTP Ginst", "green fraction", "costs"],
            rows,
        )
        + "\n(* while the stored energy lasts)",
    )

    # Grid-tie runs flat-out: the performance bound.
    assert gridtie.ptp >= direct.ptp
    assert gridtie.ptp >= battery.ptp
    # But SolarCore's solar share of chip energy beats grid-tie's offset at
    # equal panel size only when consumption is moderate; both are material.
    assert direct_green > 0.5
    assert 0.0 < gridtie.green_fraction <= 1.0
