"""Figure 16: solar energy drawn under fixed budgets, normalized to
SolarCore — no fixed budget reaches much beyond ~0.7."""

import numpy as np
from conftest import emit

from repro.harness.experiments import fig16_energy_vs_threshold
from repro.harness.reporting import format_series


def test_fig16_fixed_energy(benchmark, runner, out_dir):
    data = benchmark.pedantic(
        fig16_energy_vs_threshold, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    lines = []
    best = 0.0
    for site, per_month in sorted(data.items()):
        for month, pts in sorted(per_month.items()):
            lines.append(format_series(f"{site}-{month}", pts))
            best = max(best, max(v for _, v in pts))
    emit(out_dir, "fig16_fixed_energy", "\n".join(lines))

    # Paper Section 6.2: best fixed-budget energy utilization is < ~70% of
    # SolarCore's.
    assert best < 0.80
    assert best > 0.40  # but fixed budgets do harvest something real
