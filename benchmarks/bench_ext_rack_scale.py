"""Extension: hierarchical budget division at rack scale.

Four heterogeneous chips share one farm; the coordinator divides the
harvested budget by equal shares, proportional-to-demand, or rack-level
TPR water-filling.  The paper's throughput-per-watt principle composes:
TPR wins at the rack level for the same reason MPPT&Opt wins per-core.
"""

from conftest import emit

from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.rack import DIVISION_POLICIES, run_day_rack

MIXES = ("H1", "L1", "HM2", "ML2")


def run_policies():
    return {
        policy: run_day_rack(MIXES, PHOENIX_AZ, 7, policy)
        for policy in DIVISION_POLICIES
    }


def test_ext_rack_scale(benchmark, out_dir):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    baseline = results["equal"].total_ptp
    table = format_table(
        ["policy", "rack PTP", "vs equal", "utilization"],
        [
            [policy, f"{day.total_ptp:,.0f}",
             f"{day.total_ptp / baseline - 1.0:+.1%}",
             f"{day.energy_utilization:.1%}"]
            for policy, day in results.items()
        ],
    )
    emit(out_dir, "ext_rack_scale", table)

    assert results["tpr"].total_ptp > results["equal"].total_ptp
    assert results["tpr"].total_ptp > results["proportional"].total_ptp
    for day in results.values():
        assert day.energy_utilization > 0.7
