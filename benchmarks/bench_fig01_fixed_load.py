"""Figure 1: solar energy utilization of a fixed load vs irradiance.

Paper's point: a load matched at 1000 W/m^2 wastes >50% of the available
energy at 400 W/m^2 — the motivation for supply-aware power management.
"""

import time

from benchjson import write_bench_json
from conftest import emit

from repro.harness.experiments import fig01_fixed_load_utilization
from repro.harness.reporting import format_table


def test_fig01_fixed_load(benchmark, out_dir):
    start = time.perf_counter()
    rows = benchmark(fig01_fixed_load_utilization)
    elapsed = time.perf_counter() - start

    table = format_table(
        ["irradiance W/m^2", "energy utilization"],
        [[f"{g:.0f}", f"{u:.1%}"] for g, u in rows],
    )
    emit(out_dir, "fig01_fixed_load", table)
    write_bench_json(
        out_dir,
        "fig01_fixed_load",
        metrics={
            f"utilization_{g:.0f}": u for g, u in rows
        },
        timings_s={"experiment": elapsed},
    )

    assert rows[0][1] > 0.999  # matched at the reference point
    assert dict(rows)[400.0] < 0.5  # the paper's >50% loss
