"""Service load benchmark: N concurrent clients against a live service.

Boots a real :class:`~repro.service.app.SolarCoreService` (real sockets,
real simulations at 15-minute cadence to keep a compute ~60 ms) and
drives it with ``SOLARCORE_SERVICE_CLIENTS`` concurrent HTTP clients
(default 8) in three phases:

1. **cold burst** — every client submits the *same* job at once against
   an empty cache: the coalescer must collapse N submissions into
   exactly one compute;
2. **distinct fill** — three different cells, one compute each;
3. **warm bursts** — the hot job again, repeatedly: every request must
   be served from the memory tier (zero computes) while we sample
   per-request latencies.

The JSON record keeps the deterministic compute/error counts as hard
``metrics`` (they are independent of the client count, so CI smoke runs
with a different N still share this baseline), wall-clock and latency
percentiles as warn-only ``timings_s``, and the N-dependent coalescing
ratios in ``extra``.
"""

from __future__ import annotations

import asyncio
import os
import time

from benchjson import write_bench_json
from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.service.app import SolarCoreService
from repro.service.client import ServiceClient

#: Concurrent clients (the benchmark's load knob; metrics stay N-independent).
CLIENTS = max(2, int(os.environ.get("SOLARCORE_SERVICE_CLIENTS", "8")))

#: Rounds of the warm phase; samples = CLIENTS * WARM_ROUNDS.
WARM_ROUNDS = 3

HOT_SPEC = {"mix": "HM2", "site": "AZ", "month": 7, "label": "hot"}
DISTINCT_SPECS = [
    {"mix": "HM1", "site": "AZ", "month": 1},
    {"mix": "H1", "site": "TN", "month": 7},
    {"mix": "L1", "site": "AZ", "month": 12},
]
#: Total computes the whole run may perform: the hot cell + the distinct ones.
EXPECTED_COMPUTES = 1 + len(DISTINCT_SPECS)

#: Coarse cadence: the full stack end to end, ~60 ms per uncached day.
CFG = SolarCoreConfig(step_minutes=15.0)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


async def _timed_submit(client: ServiceClient, spec: dict) -> float:
    start = time.perf_counter()
    doc = await client.submit(spec, wait=True)
    elapsed = time.perf_counter() - start
    assert doc["state"] == "done", doc
    return elapsed


async def _drive(tmp_cache: str) -> dict:
    service = SolarCoreService(CFG, cache_dir=tmp_cache, snapshot_interval_s=0)
    await service.start()
    clients = [ServiceClient(service.host, service.port) for _ in range(CLIENTS)]
    try:
        # Phase 1: cold burst — N identical submissions, one compute.
        start = time.perf_counter()
        await asyncio.gather(
            *(_timed_submit(c, HOT_SPEC) for c in clients)
        )
        cold_wall_s = time.perf_counter() - start
        stats = await clients[0].stats()
        cold_computes = stats["counters"]["runner.computes"]
        coalesced = stats["coalesce"]["coalesced"]
        assert cold_computes == 1, stats
        assert coalesced == CLIENTS - 1, stats

        # Phase 2: fill the cache with the distinct cells.
        for spec in DISTINCT_SPECS:
            await clients[0].submit(spec, wait=True)

        # Phase 3: warm bursts — memory-tier serving, latency samples.
        computes_before_warm = (await clients[0].stats())["counters"][
            "runner.computes"
        ]
        latencies: list[float] = []
        for _ in range(WARM_ROUNDS):
            latencies.extend(
                await asyncio.gather(
                    *(_timed_submit(c, HOT_SPEC) for c in clients)
                )
            )

        stats = await clients[0].stats()
        warm_computes = (
            stats["counters"]["runner.computes"] - computes_before_warm
        )
        warm_jobs = [
            j for j in await clients[0].jobs() if j["label"] == "hot"
        ][CLIENTS:]
        return {
            "cold_wall_s": cold_wall_s,
            "cold_computes": cold_computes,
            "coalesced": coalesced,
            "latencies": latencies,
            "warm_computes": warm_computes,
            "warm_cache_hits": sum(j["cache_hits"] for j in warm_jobs),
            "failed": stats["jobs"].get("failed", 0),
            "total_computes": stats["counters"]["runner.computes"],
        }
    finally:
        await service.aclose()


def test_service_load(out_dir, tmp_path):
    report = asyncio.run(
        asyncio.wait_for(_drive(str(tmp_path / "cache")), timeout=120)
    )

    total_requests = CLIENTS * (1 + WARM_ROUNDS) + len(DISTINCT_SPECS)
    p50 = _percentile(report["latencies"], 0.50)
    p99 = _percentile(report["latencies"], 0.99)
    coalesce_ratio = report["coalesced"] / CLIENTS
    hit_rate = report["warm_cache_hits"] / max(1, len(report["latencies"]))

    emit(out_dir, "service_load", "\n".join([
        f"clients: {CLIENTS}, warm rounds: {WARM_ROUNDS}, "
        f"total requests: {total_requests}",
        f"cold burst ({CLIENTS} identical jobs): "
        f"{report['cold_computes']} compute(s), "
        f"{report['coalesced']} coalesced, "
        f"wall {report['cold_wall_s'] * 1e3:.0f} ms",
        f"warm bursts: {report['warm_computes']} compute(s), "
        f"memory hit rate {hit_rate:.2f}",
        f"warm latency: p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms "
        f"({len(report['latencies'])} samples)",
        f"computes total: {report['total_computes']} "
        f"(expected {EXPECTED_COMPUTES})",
    ]))
    write_bench_json(
        out_dir,
        "service_load",
        # Compute/error counts are deterministic and independent of the
        # client count, so smoke runs at any N share this baseline.
        metrics={
            "cold_computes": float(report["cold_computes"]),
            "distinct_computes": float(
                report["total_computes"]
                - report["cold_computes"]
                - report["warm_computes"]
            ),
            "warm_computes": float(report["warm_computes"]),
            "failed_jobs": float(report["failed"]),
        },
        timings_s={
            "cold_burst_wall": report["cold_wall_s"],
            "warm_p50": p50,
            "warm_p99": p99,
        },
        extra={
            "clients": CLIENTS,
            "warm_rounds": WARM_ROUNDS,
            "total_requests": total_requests,
            "coalesce_ratio": coalesce_ratio,
            "warm_memory_hit_rate": hit_rate,
        },
    )

    # The service's whole value proposition, asserted end to end.
    assert report["total_computes"] == EXPECTED_COMPUTES, report
    assert report["warm_computes"] == 0, report
    assert report["failed"] == 0, report
    assert hit_rate == 1.0, report
