"""Service load benchmark: N concurrent clients against a live service.

Boots a real :class:`~repro.service.app.SolarCoreService` (real sockets,
real simulations at 15-minute cadence to keep a compute ~60 ms) and
drives it with ``SOLARCORE_SERVICE_CLIENTS`` concurrent HTTP clients
(default 8) in three phases:

1. **cold burst** — every client submits the *same* job at once against
   an empty cache: the coalescer must collapse N submissions into
   exactly one compute;
2. **distinct fill** — three different cells, one compute each;
3. **warm bursts** — the hot job again, repeatedly: every request must
   be served from the memory tier (zero computes) while we sample
   per-request latencies.

The JSON record keeps the deterministic compute/error counts as hard
``metrics`` (they are independent of the client count, so CI smoke runs
with a different N still share this baseline), wall-clock and latency
percentiles as warn-only ``timings_s``, and the N-dependent coalescing
ratios in ``extra``.

A second benchmark (``BENCH_service_durability``) measures the crash
story end to end: a real ``repro serve`` subprocess is SIGKILLed with
acknowledged jobs on the books, and the restarted server's journal
replay time and recovered-job counts are recorded.  Losing an
acknowledged job is a hard failure; replay time is a warn-only timing.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from benchjson import write_bench_json
from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.service.app import SolarCoreService
from repro.service.client import ServiceClient

#: Concurrent clients (the benchmark's load knob; metrics stay N-independent).
CLIENTS = max(2, int(os.environ.get("SOLARCORE_SERVICE_CLIENTS", "8")))

#: Rounds of the warm phase; samples = CLIENTS * WARM_ROUNDS.
WARM_ROUNDS = 3

HOT_SPEC = {"mix": "HM2", "site": "AZ", "month": 7, "label": "hot"}
DISTINCT_SPECS = [
    {"mix": "HM1", "site": "AZ", "month": 1},
    {"mix": "H1", "site": "TN", "month": 7},
    {"mix": "L1", "site": "AZ", "month": 12},
]
#: Total computes the whole run may perform: the hot cell + the distinct ones.
EXPECTED_COMPUTES = 1 + len(DISTINCT_SPECS)

#: Coarse cadence: the full stack end to end, ~60 ms per uncached day.
CFG = SolarCoreConfig(step_minutes=15.0)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


async def _timed_submit(client: ServiceClient, spec: dict) -> float:
    start = time.perf_counter()
    doc = await client.submit(spec, wait=True)
    elapsed = time.perf_counter() - start
    assert doc["state"] == "done", doc
    return elapsed


async def _drive(tmp_cache: str) -> dict:
    service = SolarCoreService(CFG, cache_dir=tmp_cache, snapshot_interval_s=0)
    await service.start()
    clients = [ServiceClient(service.host, service.port) for _ in range(CLIENTS)]
    try:
        # Phase 1: cold burst — N identical submissions, one compute.
        start = time.perf_counter()
        await asyncio.gather(
            *(_timed_submit(c, HOT_SPEC) for c in clients)
        )
        cold_wall_s = time.perf_counter() - start
        stats = await clients[0].stats()
        cold_computes = stats["counters"]["runner.computes"]
        coalesced = stats["coalesce"]["coalesced"]
        assert cold_computes == 1, stats
        assert coalesced == CLIENTS - 1, stats

        # Phase 2: fill the cache with the distinct cells.
        for spec in DISTINCT_SPECS:
            await clients[0].submit(spec, wait=True)

        # Phase 3: warm bursts — memory-tier serving, latency samples.
        computes_before_warm = (await clients[0].stats())["counters"][
            "runner.computes"
        ]
        latencies: list[float] = []
        for _ in range(WARM_ROUNDS):
            latencies.extend(
                await asyncio.gather(
                    *(_timed_submit(c, HOT_SPEC) for c in clients)
                )
            )

        stats = await clients[0].stats()
        warm_computes = (
            stats["counters"]["runner.computes"] - computes_before_warm
        )
        warm_jobs = [
            j for j in await clients[0].jobs() if j["label"] == "hot"
        ][CLIENTS:]
        return {
            "cold_wall_s": cold_wall_s,
            "cold_computes": cold_computes,
            "coalesced": coalesced,
            "latencies": latencies,
            "warm_computes": warm_computes,
            "warm_cache_hits": sum(j["cache_hits"] for j in warm_jobs),
            "failed": stats["jobs"].get("failed", 0),
            "total_computes": stats["counters"]["runner.computes"],
        }
    finally:
        await service.aclose()


def test_service_load(out_dir, tmp_path):
    report = asyncio.run(
        asyncio.wait_for(_drive(str(tmp_path / "cache")), timeout=120)
    )

    total_requests = CLIENTS * (1 + WARM_ROUNDS) + len(DISTINCT_SPECS)
    p50 = _percentile(report["latencies"], 0.50)
    p99 = _percentile(report["latencies"], 0.99)
    coalesce_ratio = report["coalesced"] / CLIENTS
    hit_rate = report["warm_cache_hits"] / max(1, len(report["latencies"]))

    emit(out_dir, "service_load", "\n".join([
        f"clients: {CLIENTS}, warm rounds: {WARM_ROUNDS}, "
        f"total requests: {total_requests}",
        f"cold burst ({CLIENTS} identical jobs): "
        f"{report['cold_computes']} compute(s), "
        f"{report['coalesced']} coalesced, "
        f"wall {report['cold_wall_s'] * 1e3:.0f} ms",
        f"warm bursts: {report['warm_computes']} compute(s), "
        f"memory hit rate {hit_rate:.2f}",
        f"warm latency: p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms "
        f"({len(report['latencies'])} samples)",
        f"computes total: {report['total_computes']} "
        f"(expected {EXPECTED_COMPUTES})",
    ]))
    write_bench_json(
        out_dir,
        "service_load",
        # Compute/error counts are deterministic and independent of the
        # client count, so smoke runs at any N share this baseline.
        metrics={
            "cold_computes": float(report["cold_computes"]),
            "distinct_computes": float(
                report["total_computes"]
                - report["cold_computes"]
                - report["warm_computes"]
            ),
            "warm_computes": float(report["warm_computes"]),
            "failed_jobs": float(report["failed"]),
        },
        timings_s={
            "cold_burst_wall": report["cold_wall_s"],
            "warm_p50": p50,
            "warm_p99": p99,
        },
        extra={
            "clients": CLIENTS,
            "warm_rounds": WARM_ROUNDS,
            "total_requests": total_requests,
            "coalesce_ratio": coalesce_ratio,
            "warm_memory_hit_rate": hit_rate,
        },
    )

    # The service's whole value proposition, asserted end to end.
    assert report["total_computes"] == EXPECTED_COMPUTES, report
    assert report["warm_computes"] == 0, report
    assert report["failed"] == 0, report
    assert hit_rate == 1.0, report


# ----------------------------------------------------------------------
# Durability: SIGKILL a real server, measure journal recovery
# ----------------------------------------------------------------------
_SRC = Path(__file__).resolve().parents[1] / "src"

#: Jobs acknowledged as done before the crash (one cell each).
ACKED_SPECS = [
    {"mix": "HM2", "site": "AZ", "month": month} for month in (3, 6, 9)
]
#: The job caught mid-flight by the kill (12 distinct cells).
INFLIGHT_SPEC = {"tasks": [
    {"mix": "HM2", "site": "AZ", "month": month, "seed": seed}
    for month in (1, 7) for seed in range(6)
]}


def _spawn_serve(cwd, *extra) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=cwd, env=env,
    )
    lines = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server died during startup (exit {proc.poll()}):\n"
                + "".join(lines)
            )
        lines.append(line)
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def test_service_durability(out_dir, tmp_path):
    flags = (
        "--journal-dir", str(tmp_path / "journal"),
        "--cache-dir", str(tmp_path / "cache"),
    )
    proc, port = _spawn_serve(tmp_path, *flags)
    try:
        async def load_then_catch_running():
            client = ServiceClient("127.0.0.1", port)
            acked = [
                await client.submit(spec, wait=True) for spec in ACKED_SPECS
            ]
            assert all(doc["state"] == "done" for doc in acked), acked
            inflight = await client.submit(INFLIGHT_SPEC)
            while (await client.job(inflight["job_id"]))["state"] == "queued":
                await asyncio.sleep(0.005)
            return [doc["job_id"] for doc in acked], inflight["job_id"]

        acked_ids, inflight_id = asyncio.run(
            asyncio.wait_for(load_then_catch_running(), timeout=120)
        )
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.wait(timeout=30)

    restart_t0 = time.perf_counter()
    proc2, port2 = _spawn_serve(tmp_path, *flags)
    try:
        async def recover():
            client = ServiceClient("127.0.0.1", port2)
            jobs = {doc["job_id"]: doc for doc in await client.jobs()}
            lost = sum(
                1 for job_id in acked_ids
                if jobs.get(job_id, {}).get("state") != "done"
            )
            if inflight_id not in jobs:
                lost += 1
            else:
                final = await client.wait_terminal(inflight_id)
                if final["state"] != "done":
                    lost += 1
            wall = time.perf_counter() - restart_t0
            return lost, wall, await client.stats()

        lost, recovery_wall_s, stats = asyncio.run(
            asyncio.wait_for(recover(), timeout=120)
        )
    finally:
        if proc2.poll() is None:
            proc2.kill()
        proc2.stdout.close()
        proc2.wait(timeout=30)

    recovery = stats["recovery"]
    emit(out_dir, "service_durability", "\n".join([
        f"acknowledged before SIGKILL: {len(acked_ids)} done + 1 in flight",
        f"lost acknowledged jobs: {lost}",
        f"journal replay: {recovery['jobs']} job(s) from "
        f"{recovery['records']} record(s) in {recovery['replay_s'] * 1e3:.1f} ms",
        f"recovered: {recovery['requeued']} requeued, "
        f"{recovery['failed']} failed",
        f"restart to all-terminal: {recovery_wall_s:.2f} s",
    ]))
    write_bench_json(
        out_dir,
        "service_durability",
        # Durability is binary: any lost acknowledged job hard-fails.
        metrics={
            "lost_acknowledged_jobs": float(lost),
            "recovery_failed_jobs": float(recovery["failed"]),
            "journal_corrupt_lines": float(recovery["corrupt_lines"]),
        },
        timings_s={
            "journal_replay": recovery["replay_s"],
            "recovery_to_terminal": recovery_wall_s,
        },
        extra={
            "jobs_replayed": recovery["jobs"],
            "requeued": recovery["requeued"],
            "journal_records": recovery["records"],
            "acked_jobs": len(acked_ids),
        },
    )
    assert lost == 0, (acked_ids, inflight_id, stats)
    assert recovery["requeued"] == 1, stats
