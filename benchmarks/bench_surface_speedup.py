"""Tabulated-surface speedup guard: exact vs ``solver="table"`` wall-clock.

Runs one full-resolution (1-minute step) day of each simulation kind —
MPPT-tracked, fixed-budget, and battery baseline — through the exact
Lambert-W/``brentq`` solver path and through the tabulated operating-point
surfaces, and records both wall-clocks plus the accuracy actually achieved
to ``benchmarks/out/surface_speedup.txt`` and the machine-readable
``BENCH_surface_speedup.json``.

Three contracts are enforced, not just recorded:

* **Speedup** — the geometric mean of the per-day speedups must reach
  ``MIN_GEOMEAN_SPEEDUP`` (10x) and every individual kind must clear
  ``MIN_EACH_SPEEDUP``.  Timings are best-of-``SOLARCORE_BENCH_REPEATS``
  (default 5) with the surface build paid up front, so the number is the
  steady-state per-day cost a sweep actually sees.
* **Accuracy** — the table-mode day must land within ``TABLE_REL_BOUND``
  of the exact day on retired instructions and grid energy, and the
  surface's measured interpolation error (its build-time self-report)
  goes into the JSON ``metrics`` section, where the benchjson comparator
  **hard-fails** on any drift.  Timings live in ``timings_s`` and only
  ever warn.
* **Isolation** — the exact path is re-run after the table path and must
  reproduce its own bytes exactly: fast-mode execution may never leak
  state into the reference solver.
"""

from __future__ import annotations

import os
import time

from benchjson import write_bench_json
from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_battery, run_day_fixed
from repro.environment.locations import location_by_code
from repro.power.surface import get_surfaces
from repro.pv.array import PVArray

EXACT = SolarCoreConfig()  # full 1-minute cadence
TABLE = SolarCoreConfig(solver="table")

SITE = "AZ"
MONTH = 7
MIX = "HM2"

#: Required geometric-mean speedup across the three day kinds.
MIN_GEOMEAN_SPEEDUP = 10.0
#: Floor no individual day kind may fall below.
MIN_EACH_SPEEDUP = 4.0
#: Documented accuracy bound for table-mode day aggregates (the golden
#: table-mode suite pins the same contract on the fixture grid).
TABLE_REL_BOUND = 1e-2


def _repeats() -> int:
    return max(1, int(os.environ.get("SOLARCORE_BENCH_REPEATS", "5")))


def _best_of(fn, repeats: int):
    """(best wall-clock [s], last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _rel(table: float, exact: float) -> float:
    return abs(table - exact) / max(abs(exact), 1e-9)


def test_surface_speedup(out_dir):
    location = location_by_code(SITE)
    repeats = _repeats()

    kinds = {
        "mppt": lambda cfg: run_day(MIX, location, MONTH, config=cfg),
        "fixed": lambda cfg: run_day_fixed(MIX, location, MONTH, 120.0, config=cfg),
        "battery": lambda cfg: run_day_battery(
            MIX, location, MONTH, 0.81, config=cfg
        ),
    }

    # Pay the surface build/load once, outside the timed region: a sweep
    # amortizes it over thousands of days, so steady-state is the honest
    # per-day number (the build cost is reported separately below).
    start = time.perf_counter()
    surfaces = get_surfaces(PVArray())
    warm_s = time.perf_counter() - start
    assert surfaces is not None

    rows = []
    metrics: dict[str, float] = {}
    timings: dict[str, float] = {}
    speedups: dict[str, float] = {}
    for kind, day_fn in kinds.items():
        exact_s, exact_day = _best_of(lambda: day_fn(EXACT), repeats)
        table_s, table_day = _best_of(lambda: day_fn(TABLE), repeats)
        speedup = exact_s / table_s if table_s > 0 else float("inf")
        speedups[kind] = speedup

        if kind == "battery":
            rel_retired = _rel(table_day.ptp, exact_day.ptp)
            rel_energy = _rel(table_day.harvested_wh, exact_day.harvested_wh)
        else:
            rel_retired = _rel(
                table_day.retired_ginst_total, exact_day.retired_ginst_total
            )
            rel_energy = _rel(table_day.utility_wh, exact_day.utility_wh)
        assert rel_retired <= TABLE_REL_BOUND, (kind, rel_retired)
        assert rel_energy <= TABLE_REL_BOUND, (kind, rel_energy)

        # Fast-mode execution must not leak into the exact solver: the
        # exact path re-run after table mode reproduces its own bytes.
        recheck = day_fn(EXACT)
        if kind == "battery":
            assert (recheck.harvested_wh, recheck.ptp) == (
                exact_day.harvested_wh, exact_day.ptp,
            )
        else:
            assert recheck.consumed_w.tobytes() == exact_day.consumed_w.tobytes()
            assert recheck.retired_ginst_total == exact_day.retired_ginst_total

        metrics[f"{kind}_retired_rel_err"] = rel_retired
        metrics[f"{kind}_energy_rel_err"] = rel_energy
        timings[f"{kind}_exact"] = exact_s
        timings[f"{kind}_table"] = table_s
        rows.append(
            f"  {kind:8s} exact {exact_s * 1e3:7.1f} ms   "
            f"table {table_s * 1e3:6.1f} ms   speedup {speedup:5.1f}x   "
            f"retired rel err {rel_retired:.1e}"
        )

    geomean = 1.0
    for s in speedups.values():
        geomean *= s
    geomean **= 1.0 / len(speedups)

    # The surface's build-time self-measured interpolation error: the
    # accuracy trajectory CI hard-fails on (any drift means the grid or
    # the PV model changed without a deliberate re-baseline).
    for name, value in surfaces.error_report["measured"].items():
        metrics[f"surface_measured_{name}"] = value

    report = surfaces.report()
    lines = [
        f"one full-resolution day (1-minute steps), {MIX} @ {SITE} month {MONTH}",
        f"best of {repeats} runs; surface build/load paid up front "
        f"({warm_s * 1e3:.0f} ms, amortized over a sweep):",
        *rows,
        f"geometric-mean speedup: {geomean:.1f}x "
        f"(required >= {MIN_GEOMEAN_SPEEDUP:.0f}x, "
        f"each >= {MIN_EACH_SPEEDUP:.0f}x)",
        "",
        report,
    ]
    emit(out_dir, "surface_speedup", "\n".join(lines))
    write_bench_json(
        out_dir,
        "surface_speedup",
        metrics=metrics,
        timings_s={**timings, "surface_warm": warm_s},
        extra={
            "repeats": repeats,
            "speedups": {k: round(v, 2) for k, v in speedups.items()},
            "geomean_speedup": round(geomean, 2),
            "table_rel_bound": TABLE_REL_BOUND,
            "declared_error_bound": surfaces.error_report["declared"],
        },
    )

    for kind, speedup in speedups.items():
        assert speedup >= MIN_EACH_SPEEDUP, (
            f"{kind} day: table mode only {speedup:.1f}x over exact "
            f"(need >= {MIN_EACH_SPEEDUP}x)"
        )
    assert geomean >= MIN_GEOMEAN_SPEEDUP, (
        f"geometric-mean table-mode speedup {geomean:.1f}x fell below "
        f"{MIN_GEOMEAN_SPEEDUP}x; the fast path is leaking exact solves"
    )
