"""Shared infrastructure for the per-figure benchmark suite.

Every benchmark regenerates one table or figure of the paper at full
resolution (1-minute steps, the complete evaluation grid unless noted).
Results are cached in a session-wide runner — the grid is simulated once
and sliced by every figure — and each bench writes the rows/series it
reproduces to ``benchmarks/out/`` alongside printing them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.runner import SimulationRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner() -> SimulationRunner:
    """Session-wide cache of full-resolution day simulations."""
    return SimulationRunner()


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/."""
    print(f"\n===== {name} =====\n{text}")
    (out_dir / f"{name}.txt").write_text(text + "\n")
