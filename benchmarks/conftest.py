"""Shared infrastructure for the per-figure benchmark suite.

Every benchmark regenerates one table or figure of the paper at full
resolution (1-minute steps, the complete evaluation grid unless noted).
Results are cached in a session-wide runner — the grid is simulated once
and sliced by every figure — and each bench writes the rows/series it
reproduces to ``benchmarks/out/``.

The session runner also rides the parallel sweep engine: set
``SOLARCORE_JOBS=N`` to fan simulations out over N worker processes, and
``SOLARCORE_CACHE_DIR=DIR`` to move the persistent result cache (default:
``benchmarks/out/cache/``, content-addressed and invalidated whenever the
``repro`` source changes, so re-running the suite only pays for
simulations the current code has never done).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.runner import SimulationRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


def sweep_jobs() -> int:
    """Worker-process count for the benchmark suite (SOLARCORE_JOBS)."""
    return max(1, int(os.environ.get("SOLARCORE_JOBS", "1")))


def sweep_cache_dir() -> pathlib.Path:
    """Persistent result-cache directory (SOLARCORE_CACHE_DIR)."""
    return pathlib.Path(
        os.environ.get("SOLARCORE_CACHE_DIR", str(OUT_DIR / "cache"))
    )


@pytest.fixture(scope="session")
def runner() -> SimulationRunner:
    """Session-wide cache of full-resolution day simulations."""
    return SimulationRunner(jobs=sweep_jobs(), cache_dir=sweep_cache_dir())


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/."""
    print(f"\n===== {name} =====\n{text}")
    (out_dir / f"{name}.txt").write_text(text + "\n")
