"""Ablation: MPP tracking interval (the paper fixes it at 10 minutes).

Shorter intervals chase the supply more tightly (lower drift error);
longer intervals leave the operating point stale between events.
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table

INTERVALS_MIN = (2.0, 5.0, 10.0, 20.0, 40.0)


def sweep_intervals():
    rows = []
    for interval in INTERVALS_MIN:
        cfg = SolarCoreConfig(tracking_interval_min=interval)
        day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg)
        rows.append(
            (interval, day.mean_tracking_error, day.energy_utilization,
             day.tracking_events)
        )
    return rows


def test_ablation_tracking_interval(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_intervals, rounds=1, iterations=1)

    table = format_table(
        ["interval min", "tracking error", "utilization", "events"],
        [[f"{i:.0f}", f"{e:.1%}", f"{u:.1%}", str(n)] for i, e, u, n in rows],
    )
    emit(out_dir, "ablation_tracking_interval", table)

    errors = {i: e for i, e, _, _ in rows}
    events = {i: n for i, _, _, n in rows}
    assert errors[2.0] < errors[40.0]
    assert events[2.0] > events[40.0]
