"""Figure 18: average solar energy utilization per station x workload x
policy, against the battery-system bounds."""

import numpy as np
from conftest import emit

from repro.harness.experiments import BATTERY_BOUNDS, POLICIES, fig18_energy_utilization
from repro.harness.reporting import render_fig18
from repro.metrics.ptp import geometric_mean


def test_fig18_energy_utilization(benchmark, runner, out_dir):
    data = benchmark.pedantic(
        fig18_energy_utilization, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    emit(out_dir, "fig18_energy_utilization", render_fig18(data, BATTERY_BOUNDS))

    # Headline: overall average utilization around the paper's 82%.
    all_opt = [
        data[site][mix_name]["MPPT&Opt"]
        for site in data
        for mix_name in data[site]
    ]
    overall = float(np.mean(all_opt))
    assert 0.74 < overall < 0.92

    # Site ordering follows the resource classes (Table 2).
    site_means = {
        site: float(np.mean([data[site][m]["MPPT&Opt"] for m in data[site]]))
        for site in data
    }
    assert site_means["PFCI"] > site_means["ECSU"] > site_means["ORNL"]

    # AZ beats the typical battery system's 81% upper bound (paper: +5%).
    assert site_means["PFCI"] > 0.81
