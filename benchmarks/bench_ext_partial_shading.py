"""Extension: hill-climbing MPPT under partial shading.

A shaded series string has a multi-peaked P-V curve.  Perturb-and-observe
started near the wrong peak locks onto it; a periodic global sweep (what
real string inverters do) recovers the true MPP.  This quantifies a
limitation the paper's single-panel setup never encounters — and that a
deployment on shaded roofs would.
"""

from conftest import emit

from repro.harness.reporting import format_table
from repro.mppt import PerturbObserve
from repro.power import DCDCConverter
from repro.power.operating_point import solve_operating_point
from repro.pv.shading import ShadedSeriesString, find_global_mpp

G, T = 900.0, 40.0
LOAD_OHM = 6.0  # a 24 V-class load on the 2-module string


def chase(tracker, string, k_start, steps=80):
    tracker.converter.k = k_start
    op = None
    for _ in range(steps):
        op = solve_operating_point(string, tracker.converter, LOAD_OHM, G, T)
        tracker.step(op)
    return solve_operating_point(string, tracker.converter, LOAD_OHM, G, T)


def run_study():
    string = ShadedSeriesString((1.0, 0.4))
    global_mpp = find_global_mpp(string, G, T)
    rows = []
    for label, k_start in (("from low V (k=1.2)", 1.2), ("from high V (k=5.0)", 5.0)):
        tracker = PerturbObserve(DCDCConverter(k=k_start, k_min=0.3, k_max=12.0))
        op = chase(tracker, string, k_start)
        rows.append((label, op.pv_power, op.pv_power / global_mpp.power))
    return global_mpp, rows


def test_ext_partial_shading(benchmark, out_dir):
    global_mpp, rows = benchmark.pedantic(run_study, rounds=1, iterations=1)

    table = format_table(
        ["P&O start", "settled power", "fraction of global MPP"],
        [[label, f"{p:.1f} W", f"{frac:.1%}"] for label, p, frac in rows],
    )
    emit(
        out_dir,
        "ext_partial_shading",
        f"global MPP: {global_mpp.power:.1f} W at {global_mpp.voltage:.1f} V\n"
        + table,
    )

    fractions = {label: frac for label, _, frac in rows}
    # One start basin finds the global peak...
    assert max(fractions.values()) > 0.95
    # ...the other is trapped on the local peak, leaving real energy behind.
    assert min(fractions.values()) < 0.93
