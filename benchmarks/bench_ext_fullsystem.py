"""Extension: full-system solar power management (paper Section 8).

Chip + DRAM + DRPM disk + NIC coordinated by cross-component marginal
utility under a two-module array — the paper's declared future work.
"""

from conftest import emit

from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.fullsystem import run_day_fullsystem
from repro.harness.reporting import format_table


def run_fullsystem_days():
    return {
        (loc.code, month): run_day_fullsystem("ML2", loc, month)
        for loc, month in ((PHOENIX_AZ, 7), (PHOENIX_AZ, 1), (OAK_RIDGE_TN, 1))
    }


def test_ext_fullsystem(benchmark, out_dir):
    days = benchmark.pedantic(run_fullsystem_days, rounds=1, iterations=1)

    rows = [
        [f"{site} m{month}", f"{d.energy_utilization:.1%}",
         f"{d.effective_duration_fraction:.1%}", f"{d.mean_system_utility:.2f}"]
        for (site, month), d in days.items()
    ]
    emit(
        out_dir,
        "ext_fullsystem",
        format_table(
            ["site/month", "utilization", "solar duration", "mean service"], rows
        ),
    )

    az = days[("PFCI", 7)]
    tn = days[("ORNL", 1)]
    assert az.energy_utilization > 0.8
    assert tn.effective_duration_fraction < az.effective_duration_fraction
    assert az.mean_system_utility > tn.mean_system_utility
