"""Figure 4: single-cell I-V and P-V characteristics with the MPP."""

from conftest import emit

from repro.harness.experiments import fig04_cell_curves
from repro.harness.reporting import format_table, sparkline
from repro.pv.cell import PVCell
from repro.pv.mpp import find_mpp
from repro.pv.params import bp3180n


def test_fig04_cell_curves(benchmark, out_dir):
    curve = benchmark(fig04_cell_curves)
    mpp = find_mpp(PVCell(bp3180n().cell), 1000.0, 25.0)

    lines = [
        f"I-V  |{sparkline(curve.current)}|",
        f"P-V  |{sparkline(curve.power)}|",
        format_table(
            ["landmark", "value"],
            [
                ["Isc", f"{curve.isc:.3f} A"],
                ["Voc", f"{curve.voc:.3f} V"],
                ["Vmpp", f"{mpp.voltage:.3f} V"],
                ["Impp", f"{mpp.current:.3f} A"],
                ["Pmax", f"{mpp.power:.3f} W"],
            ],
        ),
    ]
    emit(out_dir, "fig04_cell_curves", "\n".join(lines))

    assert 0.0 < mpp.voltage < curve.voc
    assert mpp.power > 0.8 * curve.voc * curve.isc * 0.7  # sane fill factor
