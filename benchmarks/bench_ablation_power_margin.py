"""Ablation: the power margin's accuracy/robustness trade-off (Section 6.1).

A larger margin degrades tracking accuracy (more budget left unharvested)
but absorbs load ripple and supply droop between tracking events.
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table

MARGINS = (0.0, 0.02, 0.05, 0.10, 0.15)


def sweep_margins():
    rows = []
    for margin in MARGINS:
        cfg = SolarCoreConfig(power_margin=margin)
        day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt", config=cfg)
        rows.append((margin, day.mean_tracking_error, day.energy_utilization))
    return rows


def test_ablation_power_margin(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_margins, rounds=1, iterations=1)

    table = format_table(
        ["margin", "tracking error", "utilization"],
        [[f"{m:.0%}", f"{e:.1%}", f"{u:.1%}"] for m, e, u in rows],
    )
    emit(out_dir, "ablation_power_margin", table)

    errors = [e for _, e, _ in rows]
    utils = [u for _, _, u in rows]
    # Larger margins track less accurately and harvest less.
    assert errors[-1] > errors[0]
    assert utils[-1] < utils[0]
    # But every setting stays in a sane operating band.
    assert all(0.0 < e < 0.35 for e in errors)
