"""Ablation: incremental TPR tuning vs global post-track reallocation.

SolarCore's load tuning is *incremental*: each tracking event nudges the
previous assignment.  The alternative (paper ref [15]'s LP-style approach)
re-solves the whole per-core allocation under the discovered budget at
every event.  This study quantifies the gap — small, because TPR's greedy
incremental steps approximate the global optimum well.
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import GOLDEN_CO, PHOENIX_AZ
from repro.harness.reporting import format_table


def sweep():
    rows = []
    for loc, month in ((PHOENIX_AZ, 7), (GOLDEN_CO, 1)):
        for mix_name in ("HM2", "ML2"):
            incr = run_day(mix_name, loc, month, "MPPT&Opt",
                           config=SolarCoreConfig(realloc_after_track=False))
            glob = run_day(mix_name, loc, month, "MPPT&Opt",
                           config=SolarCoreConfig(realloc_after_track=True))
            rows.append((
                f"{loc.code}-m{month} {mix_name}",
                incr.ptp, glob.ptp,
                incr.mean_tracking_error, glob.mean_tracking_error,
            ))
    return rows


def test_ablation_global_realloc(benchmark, out_dir):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["case", "PTP incr", "PTP global", "err incr", "err global"],
        [
            [case, f"{pi:,.0f}", f"{pg:,.0f}", f"{ei:.1%}", f"{eg:.1%}"]
            for case, pi, pg, ei, eg in rows
        ],
    )
    emit(out_dir, "ablation_global_realloc", table)

    for case, ptp_incr, ptp_global, *_ in rows:
        # Greedy incremental TPR tracks the global reallocation within ~10%.
        assert abs(ptp_global - ptp_incr) / ptp_incr < 0.10, case
