"""Ablation: DVFS level granularity (Section 6.3's closing remark).

"By increasing the granularity of DVFS level, one can increase the control
accuracy of MPPT and the power margin can be further decreased."
"""

from conftest import emit

from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.multicore.dvfs import default_dvfs_table

LEVEL_COUNTS = (3, 6, 12, 32)


def sweep_granularity():
    rows = []
    for n_levels in LEVEL_COUNTS:
        day = run_day(
            "HM2",
            PHOENIX_AZ,
            7,
            "MPPT&Opt",
            dvfs_table=default_dvfs_table(n_levels),
        )
        rows.append((n_levels, day.mean_tracking_error, day.energy_utilization))
    return rows


def test_ablation_dvfs_granularity(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_granularity, rounds=1, iterations=1)

    table = format_table(
        ["DVFS levels", "tracking error", "utilization"],
        [[str(n), f"{e:.1%}", f"{u:.1%}"] for n, e, u in rows],
    )
    emit(out_dir, "ablation_dvfs_granularity", table)

    by_levels = {n: e for n, e, _ in rows}
    # Finer levels track more accurately than the coarsest table.
    assert by_levels[32] < by_levels[3]
    # The paper's 6-level SpeedStep table is already close to fine-grained.
    assert by_levels[6] < by_levels[3]
