"""Figure 17: PTP under fixed budgets, normalized to SolarCore.

Paper Section 6.2: the best fixed budget achieves < ~70% of SolarCore's
PTP, i.e. SolarCore wins by at least 43% — and no single optimal fixed
budget exists across sites and seasons.
"""

import numpy as np
from conftest import emit

from repro.harness.experiments import fig17_ptp_vs_threshold
from repro.harness.reporting import format_series


def test_fig17_fixed_ptp(benchmark, runner, out_dir):
    data = benchmark.pedantic(
        fig17_ptp_vs_threshold, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    lines = []
    best_overall = 0.0
    best_budgets = set()
    for site, per_month in sorted(data.items()):
        for month, pts in sorted(per_month.items()):
            lines.append(format_series(f"{site}-{month}", pts))
            best_budget, best_value = max(pts, key=lambda bv: bv[1])
            best_overall = max(best_overall, best_value)
            if best_value > 0:
                best_budgets.add(best_budget)
    emit(out_dir, "fig17_fixed_ptp", "\n".join(lines))

    # SolarCore >= +43% over the best fixed budget (best fixed <= ~0.7).
    assert best_overall < 0.80
    # "A single, optimal fixed power budget does not exist."
    assert len(best_budgets) >= 2
