"""Capstone: the paper's headline claims, asserted in one card.

If any row of this card goes red, the reproduction has drifted.
"""

from conftest import emit

from repro.harness.paper_summary import render_headlines, reproduce_headlines


def test_paper_headlines(benchmark, runner, out_dir):
    claims = benchmark.pedantic(
        reproduce_headlines, args=(runner,), rounds=1, iterations=1
    )

    emit(out_dir, "paper_headlines", render_headlines(claims))

    failing = [c.claim for c in claims if not c.holds]
    assert not failing, failing
