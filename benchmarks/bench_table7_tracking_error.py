"""Table 7: average relative tracking error across the full evaluation grid
(4 stations x 4 months x 10 workload mixes)."""

import numpy as np
from conftest import emit

from repro.harness.experiments import table7_tracking_error
from repro.harness.reporting import render_table7


def test_table7_tracking_error(benchmark, runner, out_dir):
    table = benchmark.pedantic(
        table7_tracking_error, args=(runner,), rounds=1, iterations=1
    )

    emit(out_dir, "table7_tracking_error", render_table7(table))

    errors = np.array([e for row in table.values() for e in row.values()])
    # Paper Table 7 spans ~4-22%; same band here.
    assert 0.02 < errors.min()
    assert errors.max() < 0.25
    assert 0.05 < errors.mean() < 0.15

    # Structure: homogeneous high-EPI (H1) tracks worse than homogeneous
    # low-EPI (L1) on average; heterogeneous HM2 beats H1.
    h1 = np.mean([row["H1"] for row in table.values()])
    l1 = np.mean([row["L1"] for row in table.values()])
    hm2 = np.mean([row["HM2"] for row in table.values()])
    assert h1 > l1
    assert h1 > hm2
