"""Figure 7: BP3180N module I-V/P-V curves across temperature (G = 1000)."""

from conftest import emit

from repro.harness.experiments import fig07_module_temperature_curves
from repro.harness.reporting import format_table


def test_fig07_temperature_curves(benchmark, out_dir):
    curves = benchmark(fig07_module_temperature_curves)

    rows = []
    for t in sorted(curves):
        v, i, p = curves[t].approximate_mpp
        rows.append(
            [f"{t:.0f}", f"{curves[t].isc:.2f}", f"{curves[t].voc:.2f}",
             f"{v:.2f}", f"{p:.1f}"]
        )
    table = format_table(["T C", "Isc A", "Voc V", "Vmpp V", "Pmax W"], rows)
    emit(out_dir, "fig07_temperature_curves", table)

    # Paper: hotter -> Voc falls faster than Isc rises; MPP shifts left and
    # total power drops.
    ts = sorted(curves)
    vocs = [curves[t].voc for t in ts]
    iscs = [curves[t].isc for t in ts]
    vmpps = [curves[t].approximate_mpp[0] for t in ts]
    pmaxes = [curves[t].approximate_mpp[2] for t in ts]
    assert all(b < a for a, b in zip(vocs, vocs[1:]))
    assert all(b > a for a, b in zip(iscs, iscs[1:]))
    assert all(b < a for a, b in zip(vmpps, vmpps[1:]))
    assert all(b < a for a, b in zip(pmaxes, pmaxes[1:]))
