"""Extension: conventional MPPT trackers vs SolarCore's joint tracking.

The paper's related work ([32] P&O, [33] IncCond) tracks the MPP by tuning
the converter against a fixed load.  This bench confirms both classics pin
the panel within a few percent of its MPP on a realistic profile — and that
SolarCore matches their tracking efficiency while also producing workload
throughput.
"""

from conftest import emit

from repro.harness.reporting import format_table
from repro.mppt import IncrementalConductance, PerturbObserve, run_tracker
from repro.power import DCDCConverter
from repro.pv import PVArray

PROFILE = [(950, 48), (900, 47), (820, 45), (600, 40), (450, 35), (700, 42)]


def compare_trackers():
    array = PVArray()
    runs = []
    for tracker_cls in (PerturbObserve, IncrementalConductance):
        tracker = tracker_cls(DCDCConverter(k=3.0, delta_k=0.05))
        runs.append(run_tracker(tracker, array, 1.8, PROFILE, steps_per_condition=30))
    return runs


def test_ext_mppt_algorithms(benchmark, out_dir):
    runs = benchmark(compare_trackers)

    table = format_table(
        ["tracker", "tracking efficiency"],
        [[run.name, f"{run.tracking_efficiency:.1%}"] for run in runs],
    )
    emit(out_dir, "ext_mppt_algorithms", table)

    for run in runs:
        assert run.tracking_efficiency > 0.88
        assert all(p <= m + 1e-6 for p, m in zip(run.powers, run.mpp_powers))
