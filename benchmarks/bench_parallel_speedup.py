"""Parallel sweep speedup guard: serial vs process-pool wall-clock.

Runs a fixed mini-grid (2 locations x 2 months x 2 mixes, full 1-minute
resolution) serially and through the parallel engine, records both
wall-clocks to ``benchmarks/out/parallel_speedup.txt``, and — on machines
with enough cores for parallelism to physically exist — asserts the pool
delivers a real speedup.  Byte-identical results are asserted
unconditionally: the engine may never trade determinism for speed.

``SOLARCORE_JOBS`` overrides the worker count (default 4).
"""

from __future__ import annotations

import os
import time

from conftest import emit, sweep_jobs

from repro.core.config import SolarCoreConfig
from repro.harness.parallel import grid_tasks
from repro.harness.runner import SimulationRunner

CFG = SolarCoreConfig()  # full 1-minute cadence: the real sweep workload

MINI_GRID = grid_tasks(("H1", "L1"), ("AZ", "TN"), (1, 7))

#: Required speedup when the host can actually run the workers at once.
MIN_SPEEDUP = 2.0


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_speedup(out_dir):
    jobs = max(sweep_jobs(), 4) if "SOLARCORE_JOBS" not in os.environ else sweep_jobs()
    cores = _available_cores()

    start = time.perf_counter()
    serial = SimulationRunner(CFG).prefetch(MINI_GRID)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SimulationRunner(CFG, jobs=jobs).prefetch(MINI_GRID)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    enforced = cores >= 4 and jobs >= 4
    emit(
        out_dir,
        "parallel_speedup",
        "\n".join([
            f"mini-grid: {len(MINI_GRID)} day simulations (1-minute steps)",
            f"cores available: {cores}, jobs: {jobs}",
            f"serial wall-clock:   {serial_s:8.2f} s",
            f"parallel wall-clock: {parallel_s:8.2f} s",
            f"speedup: {speedup:.2f}x"
            + ("" if enforced else f"  (informational: <4 cores/jobs, "
                                   f">={MIN_SPEEDUP:.0f}x not enforced)"),
        ]),
    )

    # Determinism is non-negotiable regardless of core count.
    for task in MINI_GRID:
        a, b = serial[task], parallel[task]
        assert a.mpp_w.tobytes() == b.mpp_w.tobytes(), task.describe()
        assert a.consumed_w.tobytes() == b.consumed_w.tobytes(), task.describe()
        assert a.retired_ginst_solar == b.retired_ginst_solar, task.describe()

    if enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel sweep at {jobs} jobs on {cores} cores delivered only "
            f"{speedup:.2f}x over serial (need >= {MIN_SPEEDUP}x); the pool "
            "is serializing somewhere"
        )
