"""Parallel sweep speedup guard: serial vs process-pool wall-clock.

Runs a fixed mini-grid (2 locations x 2 months x 2 mixes, full 1-minute
resolution) serially and through the parallel engine, records both
wall-clocks to ``benchmarks/out/parallel_speedup.txt`` (and the
machine-readable ``BENCH_parallel_speedup.json``), and — on machines
with enough cores for parallelism to physically exist — asserts the pool
delivers a real speedup.  Byte-identical results are asserted
unconditionally: the engine may never trade determinism for speed.

The report always names the host's core count.  On fewer than 2 cores
the measurement is not merely unenforced, it is **not taken**: the bench
writes a loud label artifact explaining why and skips, so no JSON record
of a meaningless "speedup" can ever be committed again (the 0.95x and
0.87x records previously checked in both came from 1-core boxes).  The
authoritative record is the multi-core CI ``parallel-golden`` job, which
runs this bench on every push and archives the artifacts.

``SOLARCORE_JOBS`` overrides the worker count (default 4).
"""

from __future__ import annotations

import os
import time

import pytest
from benchjson import write_bench_json
from conftest import emit, sweep_jobs

from repro.core.config import SolarCoreConfig
from repro.harness.parallel import grid_tasks
from repro.harness.runner import SimulationRunner

CFG = SolarCoreConfig()  # full 1-minute cadence: the real sweep workload

MINI_GRID = grid_tasks(("H1", "L1"), ("AZ", "TN"), (1, 7))

#: Required speedup when the host can actually run the workers at once.
MIN_SPEEDUP = 2.0


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_speedup(out_dir):
    jobs = max(sweep_jobs(), 4) if "SOLARCORE_JOBS" not in os.environ else sweep_jobs()
    cores = _available_cores()

    if cores < 2:
        # Label-and-skip, loudly.  Workers cannot run concurrently here,
        # so serial-vs-pool wall-clock measures scheduler overhead, not
        # the pool.  No BENCH json is written: the committed baseline's
        # trajectory continues only from hosts where the number means
        # something (the multi-core CI job).
        emit(out_dir, "parallel_speedup", "\n".join([
            "NOT MEASURED ON THIS HOST.",
            "",
            f"This box exposes {cores} core(s) "
            f"(os.cpu_count: {os.cpu_count()}); a parallel-sweep speedup "
            "needs at least 2 for the workers to physically overlap.",
            "The authoritative record is the 'parallel-golden' CI job "
            "(multi-core), which runs this benchmark on every push and "
            "archives parallel_speedup.txt + BENCH_parallel_speedup.json.",
        ]))
        stale = out_dir / "BENCH_parallel_speedup.json"
        if stale.exists():
            stale.unlink()  # never leave a meaningless record behind
        pytest.skip(
            f"parallel speedup needs >= 2 cores, host has {cores}; "
            "wrote the label artifact and skipped"
        )

    start = time.perf_counter()
    serial = SimulationRunner(CFG).prefetch(MINI_GRID)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SimulationRunner(CFG, jobs=jobs).prefetch(MINI_GRID)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    enforced = cores >= 4 and jobs >= 4
    lines = [
        f"mini-grid: {len(MINI_GRID)} day simulations (1-minute steps)",
        f"cores available: {cores} (os.cpu_count: {os.cpu_count()}), "
        f"jobs: {jobs}",
        f"per-job wall-clock:",
        f"  jobs=1 (serial):   {serial_s:8.2f} s "
        f"({serial_s / len(MINI_GRID):.2f} s/task)",
        f"  jobs={jobs} (pool):     {parallel_s:8.2f} s "
        f"({parallel_s / len(MINI_GRID):.2f} s/task)",
        f"speedup: {speedup:.2f}x"
        + ("" if enforced else f"  (informational: <4 cores/jobs, "
                               f">={MIN_SPEEDUP:.0f}x not enforced)"),
    ]
    emit(out_dir, "parallel_speedup", "\n".join(lines))
    write_bench_json(
        out_dir,
        "parallel_speedup",
        # Deterministic identity of the computed grid: any code change
        # that alters simulation results moves this and hard-fails the
        # comparator.
        metrics={
            "tasks": float(len(MINI_GRID)),
            "total_retired_ginst_solar": sum(
                serial[task].retired_ginst_solar for task in MINI_GRID
            ),
        },
        timings_s={
            "serial": serial_s,
            f"parallel_jobs{jobs}": parallel_s,
        },
        extra={
            "jobs": jobs,
            "cores_available": cores,
            "speedup": speedup,
            "speedup_enforced": enforced,
        },
    )

    # Determinism is non-negotiable regardless of core count.
    for task in MINI_GRID:
        a, b = serial[task], parallel[task]
        assert a.mpp_w.tobytes() == b.mpp_w.tobytes(), task.describe()
        assert a.consumed_w.tobytes() == b.consumed_w.tobytes(), task.describe()
        assert a.retired_ginst_solar == b.retired_ginst_solar, task.describe()

    if enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel sweep at {jobs} jobs on {cores} cores delivered only "
            f"{speedup:.2f}x over serial (need >= {MIN_SPEEDUP}x); the pool "
            "is serializing somewhere"
        )
