"""Ablation: heterogeneous core mixes under TPR allocation (ROADMAP item 4).

The paper evaluates eight identical Alpha-class cores, so every TPR
difference the allocator exploits comes from program phases alone.  With
``ChipSpec`` the chip model now supports named core types (big / little /
accel) and ITRS / conservative tech scaling, which raises the question
this study answers with data: does SolarCore's TPR-greedy allocation
matter *more* on a heterogeneous chip?

Three chips — the paper's homogeneous ``alpha8``, a 4+4 ``biglittle``,
and the 3-type ``hetero3`` — are swept across tech nodes (90 nm base,
45 nm ITRS, 45 nm conservative) under both the MPPT&Opt policy and the
Fixed-Power baseline.  For each cell we report PTP plus the chip's
static TPR spread (max/min upgrade-TPR across cores at the floor, noon
phase): the spread is the headroom TPR ranking has to exploit, and the
MPPT-vs-fixed PTP ratio is how much of it the allocator converts.

Headline properties asserted below: heterogeneity widens the TPR spread
by construction; MPPT&Opt beats the fixed baseline on every chip at
every node; and ITRS scaling at 45 nm outruns both the 90 nm base and
the conservative model.
"""

from __future__ import annotations

import dataclasses

from benchjson import write_bench_json
from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day, run_day_fixed
from repro.core.tpr import upgrade_tpr
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.multicore.chip import MultiCoreChip
from repro.multicore.spec import CHIP_PRESETS
from repro.workloads.mixes import mix

#: Homogeneous control plus the two heterogeneous presets under study.
CHIPS = ("alpha8", "biglittle", "hetero3")

#: (node nm, scaling model) — the paper's 90 nm base plus one shrink
#: under each scaling projection.
NODES = ((90, "itrs"), (45, "itrs"), (45, "cons"))

#: Fixed-Power baseline budget (same cap as bench_surface_speedup).
FIXED_BUDGET_W = 120.0

MIX, MONTH, NOON = "HM2", 7, 720.0


def chip_spec_str(preset: str, node_nm: int, model: str) -> str:
    spec = dataclasses.replace(
        CHIP_PRESETS[preset], tech_nm=node_nm, tech_model=model
    )
    return spec.canonical()


def tpr_spread(spec_str: str) -> float:
    """Max/min upgrade-TPR across cores at the floor, noon phase."""
    chip = MultiCoreChip(mix(MIX), spec=spec_str, seed=0)
    chip.set_all_min()
    tprs = [t for c in chip.cores if (t := upgrade_tpr(c, NOON)) is not None]
    return max(tprs) / min(tprs)


def sweep_hetero_grid():
    rows = []
    for preset in CHIPS:
        for node_nm, model in NODES:
            spec_str = chip_spec_str(preset, node_nm, model)
            cfg = SolarCoreConfig(chip_spec=spec_str)
            mppt = run_day(MIX, PHOENIX_AZ, MONTH, "MPPT&Opt", config=cfg)
            fixed = run_day_fixed(
                MIX, PHOENIX_AZ, MONTH, FIXED_BUDGET_W, config=cfg
            )
            rows.append((
                preset, node_nm, model,
                tpr_spread(spec_str), mppt.ptp, fixed.ptp,
            ))
    return rows


def test_ablation_hetero_tpr(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_hetero_grid, rounds=1, iterations=1)

    table = format_table(
        ["chip", "node", "TPR spread", "MPPT&Opt PTP", "fixed PTP",
         "MPPT/fixed"],
        [
            [preset, f"{node_nm}nm:{model}", f"{spread:.2f}x",
             f"{mppt_ptp:,.0f}", f"{fixed_ptp:,.0f}",
             f"{mppt_ptp / fixed_ptp:.2f}x"]
            for preset, node_nm, model, spread, mppt_ptp, fixed_ptp in rows
        ],
    )
    emit(out_dir, "ablation_hetero_tpr", table)

    cells = {
        (preset, node_nm, model): (spread, mppt_ptp, fixed_ptp)
        for preset, node_nm, model, spread, mppt_ptp, fixed_ptp in rows
    }
    write_bench_json(
        out_dir,
        "ablation_hetero_tpr",
        # Pure simulation outputs — deterministic, so the trajectory
        # comparator hard-fails on any drift.
        metrics={
            f"{preset}_{node_nm}{model}_{name}": value
            for (preset, node_nm, model), vals in cells.items()
            for name, value in zip(("tpr_spread", "ptp_mppt", "ptp_fixed"),
                                   vals)
        },
        timings_s={},
    )

    # Heterogeneity widens the TPR spread the allocator can rank on:
    # phase variation alone (alpha8) is the narrow baseline.
    for node_nm, model in NODES:
        base = cells[("alpha8", node_nm, model)][0]
        assert cells[("biglittle", node_nm, model)][0] > base
        assert cells[("hetero3", node_nm, model)][0] > base

    # SolarCore's claim survives heterogeneity and scaling: the solar
    # tracking policy beats the fixed-budget baseline in every cell.
    for (_, _, _), (_, mppt_ptp, fixed_ptp) in cells.items():
        assert mppt_ptp > fixed_ptp

    # Tech scaling is worth real throughput (ITRS 45 nm > 90 nm base),
    # and the conservative model lands below the ITRS projection.
    for preset in CHIPS:
        assert cells[(preset, 45, "itrs")][1] > cells[(preset, 90, "itrs")][1]
        assert cells[(preset, 45, "cons")][1] < cells[(preset, 45, "itrs")][1]
