"""Figure 20: average solar energy utilization vs effective operation
duration bucket — utilization collapses when the backup supply carries
much of the day."""

import math

import numpy as np
from conftest import emit

from repro.harness.experiments import POLICIES, fig20_utilization_vs_duration
from repro.harness.reporting import format_table


def test_fig20_utilization_vs_duration(benchmark, runner, out_dir):
    data = benchmark.pedantic(
        fig20_utilization_vs_duration, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    rows = []
    for (low, high), per_policy in data.items():
        cells = [f"{low:.0%}-{min(high, 1.0):.0%}"]
        cells.extend(
            "-" if math.isnan(per_policy[p]) else f"{per_policy[p]:.1%}"
            for p in POLICIES
        )
        rows.append(cells)
    emit(
        out_dir,
        "fig20_utilization_vs_duration",
        format_table(["duration"] + list(POLICIES), rows),
    )

    # Utilization decreases as the effective duration bucket drops.
    opt_by_bucket = [
        per_policy["MPPT&Opt"]
        for bucket, per_policy in data.items()
        if not math.isnan(per_policy["MPPT&Opt"])
    ]
    assert len(opt_by_bucket) >= 3
    assert all(b < a + 0.03 for a, b in zip(opt_by_bucket, opt_by_bucket[1:]))
    # Paper: >= 80% of daytime tracked -> >= ~82% utilization on average.
    top_bucket = data[(0.9, 1.01)]["MPPT&Opt"]
    if not math.isnan(top_bucket):
        assert top_bucket > 0.80
