"""Figure 13: MPP tracking accuracy under a regular weather pattern
(January at Phoenix, AZ) for H1, HM2, and L1."""

from conftest import emit

from repro.harness.experiments import fig13_14_tracking
from repro.harness.reporting import format_table, sparkline


def test_fig13_tracking_jan_az(benchmark, runner, out_dir):
    traces = benchmark(fig13_14_tracking, 1, ("H1", "HM2", "L1"), "AZ", runner)

    lines = []
    rows = []
    for name, trace in traces.items():
        lines.append(f"{name:4s} budget |{sparkline(trace.budget_w)}|")
        lines.append(f"{name:4s} actual |{sparkline(trace.actual_w)}|")
        rows.append([name, f"{trace.mean_error:.1%}"])
    lines.append(format_table(["mix", "mean tracking error"], rows))
    emit(out_dir, "fig13_tracking_jan_az", "\n".join(lines))

    # Paper: consumption closely follows the budget; H1's ripples make it
    # worse than L1.
    assert traces["H1"].mean_error < 0.25
    assert traces["L1"].mean_error < traces["H1"].mean_error
