"""Ablation: fault tolerance under deterministic injected faults.

SolarCore's controller steers on sensed I/V and a k-knob converter; this
study quantifies how gracefully a day degrades when those pieces fail.
Fault schedules from ``repro.faults`` are injected at increasing rates
(fraction of the daytime window under fault) for three representative
classes — sensor dropout (controller flies blind on held readings),
converter efficiency loss (every harvested watt taxed), and PV string
failure (half the array gone) — and the resulting PTP / energy
utilization are compared against a fault-free baseline.

The headline property: degradation is *graceful*.  Midday sensor
dropouts beyond the staleness cap push the controller into degraded
mode (conservative budget, never a crash), so even a 50 %-of-day fault
still yields a running chip and a sensible fraction of baseline PTP.
"""

from conftest import emit

from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table

#: Fraction of the ~10 h daytime window (minutes 420-1020) under fault.
FAULT_RATES = (0.0, 0.1, 0.25, 0.5)

#: (class label, fault kind spec builder) — windows are centred on noon.
_DAY_START, _DAY_END = 420, 1020


def _window(rate: float) -> tuple[int, int]:
    span = int((_DAY_END - _DAY_START) * rate)
    mid = (_DAY_START + _DAY_END) // 2
    return mid - span // 2, mid - span // 2 + span


def _spec(kind: str, rate: float, param: str = "") -> str | None:
    if rate == 0.0:
        return None
    start, end = _window(rate)
    return f"{kind}@{start}-{end}{param},seed=7"


FAULT_CLASSES = (
    ("sensor dropout", lambda rate: _spec("sensor_dropout", rate)),
    ("converter eff 0.85", lambda rate: _spec("conv_eff", rate, ":0.85")),
    ("pv string loss 50%", lambda rate: _spec("pv_string", rate, ":0.5")),
)


def sweep_fault_rates():
    rows = []
    for label, spec_of in FAULT_CLASSES:
        for rate in FAULT_RATES:
            day = run_day("HM2", PHOENIX_AZ, 7, "MPPT&Opt",
                          faults=spec_of(rate))
            rows.append((label, rate, day.ptp, day.energy_utilization))
    return rows


def test_ablation_fault_tolerance(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_fault_rates, rounds=1, iterations=1)

    baseline = {label: next(p for lb, r, p, _ in rows if lb == label and r == 0.0)
                for label, _ in FAULT_CLASSES}
    table = format_table(
        ["fault class", "rate", "PTP (Ginst)", "PTP vs clean", "utilization"],
        [
            [label, f"{rate:.0%}", f"{ptp:,.0f}",
             f"{ptp / baseline[label]:.1%}", f"{util:.1%}"]
            for label, rate, ptp, util in rows
        ],
    )
    emit(out_dir, "ablation_fault_tolerance", table)

    by_cell = {(label, rate): (ptp, util) for label, rate, ptp, util in rows}
    clean_ptp = by_cell[("sensor dropout", 0.0)][0]
    # All fault classes share the same fault-free baseline.
    for label, _ in FAULT_CLASSES:
        assert by_cell[(label, 0.0)][0] == clean_ptp

    for label, _ in FAULT_CLASSES:
        ptps = [by_cell[(label, rate)][0] for rate in FAULT_RATES]
        # Faults never *help*: PTP is monotonically non-increasing in rate.
        assert all(a >= b * 0.999 for a, b in zip(ptps, ptps[1:]))
        # ...and degradation is graceful: even half the day under fault
        # keeps the chip running at a meaningful fraction of baseline.
        assert ptps[-1] > 0.25 * ptps[0]

    # Converter losses tax harvest directly, so utilization must drop too.
    assert (by_cell[("converter eff 0.85", 0.5)][1]
            < by_cell[("converter eff 0.85", 0.0)][1])
