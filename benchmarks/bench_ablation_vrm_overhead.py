"""Ablation: per-core VRM transition overhead across scheduling policies.

The paper's load adaptation leans on fast on-chip regulators (ref [13]) and
implicitly assumes DVFS transitions are free.  This study counts the real
transitions each policy performs over a day, prices them with the VRM
model, and confirms the assumption: even the busiest policy's transition
energy is orders of magnitude below the energy harvested.
"""

from conftest import emit

from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.multicore.vrm import VRMParameters

POLICIES = ("MPPT&IC", "MPPT&RR", "MPPT&Opt")


def sweep_policies():
    params = VRMParameters()
    rows = []
    for policy in POLICIES:
        day = run_day("HM2", PHOENIX_AZ, 7, policy)
        transition_j = params.transition_energy_mj_per_v * 1e-3 * day.dvfs_transition_volts
        harvested_j = day.solar_used_wh * 3600.0
        rows.append(
            (policy, day.dvfs_transitions, transition_j,
             transition_j / harvested_j if harvested_j else 0.0)
        )
    return rows


def test_ablation_vrm_overhead(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_policies, rounds=1, iterations=1)

    table = format_table(
        ["policy", "transitions/day", "transition energy", "share of harvest"],
        [[p, str(n), f"{e * 1000:.1f} mJ", f"{share:.2e}"] for p, n, e, share in rows],
    )
    emit(out_dir, "ablation_vrm_overhead", table)

    for _, transitions, energy_j, share in rows:
        assert transitions > 0
        # The paper's free-transition assumption is sound: overhead is
        # below a millionth of the harvested energy.
        assert share < 1e-4
