"""Ablation: fixed vs forecast-driven power margin.

The paper's margin is a fixed fraction, paid on every day alike.  A
short-horizon supply forecast (linear trend + volatility) sizes the margin
per tracking event: near-zero on rock-steady mornings, the full
conservative value under cloud fields.  Calm sites recover 2-3 points of
utilization for free.
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import ALL_LOCATIONS
from repro.harness.reporting import format_table


def sweep():
    rows = []
    for location in ALL_LOCATIONS:
        for month in (1, 7):
            fixed = run_day("HM2", location, month, "MPPT&Opt",
                            config=SolarCoreConfig(adaptive_margin=False))
            adaptive = run_day("HM2", location, month, "MPPT&Opt",
                               config=SolarCoreConfig(adaptive_margin=True))
            rows.append((
                f"{location.code}-m{month}",
                fixed.energy_utilization, adaptive.energy_utilization,
                fixed.mean_tracking_error, adaptive.mean_tracking_error,
            ))
    return rows


def test_ablation_adaptive_margin(benchmark, out_dir):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["case", "util fixed", "util adaptive", "err fixed", "err adaptive"],
        [
            [case, f"{uf:.1%}", f"{ua:.1%}", f"{ef:.1%}", f"{ea:.1%}"]
            for case, uf, ua, ef, ea in rows
        ],
    )
    emit(out_dir, "ablation_adaptive_margin", table)

    gains = [ua - uf for _, uf, ua, _, _ in rows]
    # The forecaster never costs much and wins somewhere meaningful.
    assert min(gains) > -0.02
    assert max(gains) > 0.015
