"""Ablation: per-core power gating (PCPG) as a load-adaptation knob.

With PCPG the chip's floor drops from all-cores-at-minimum to
uncore-plus-one-core, letting the direct-coupled system engage the panel
earlier at dawn and ride out deeper clouds (longer effective duration).
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.harness.reporting import format_table


def sweep_pcpg():
    rows = []
    for location in (PHOENIX_AZ, OAK_RIDGE_TN):
        for pcpg in (True, False):
            cfg = SolarCoreConfig(enable_pcpg=pcpg)
            day = run_day("HM2", location, 1, "MPPT&Opt", config=cfg)
            rows.append(
                (location.code, pcpg, day.effective_duration_fraction,
                 day.energy_utilization)
            )
    return rows


def test_ablation_pcpg(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_pcpg, rounds=1, iterations=1)

    table = format_table(
        ["site", "PCPG", "effective duration", "utilization"],
        [[site, str(p), f"{d:.1%}", f"{u:.1%}"] for site, p, d, u in rows],
    )
    emit(out_dir, "ablation_pcpg", table)

    by_key = {(site, p): d for site, p, d, _ in rows}
    # Gating extends the solar-powered fraction of the day at both sites.
    assert by_key[("PFCI", True)] >= by_key[("PFCI", False)]
    assert by_key[("ORNL", True)] >= by_key[("ORNL", False)]
