"""Extension: the storage bill SolarCore avoids (paper Section 1's case).

Sizes the battery a Figure 2-C system would need to buffer each station's
daily harvest, ages it under the daily duty cycle, and annualizes the
cost — the recurring expense the battery-free direct-coupled design
eliminates at < 1 % performance cost (Figure 21).
"""

from conftest import emit

from repro.environment.locations import ALL_LOCATIONS
from repro.harness.reporting import format_table
from repro.power.battery_economics import battery_cost_analysis


def analyze_stations(runner):
    rows = []
    for location in ALL_LOCATIONS:
        # Size against the best (July) harvest — the battery must absorb it.
        day = runner.battery_day("HM2", location.code, 7, 0.92)
        analysis = battery_cost_analysis(
            daily_buffer_wh=day.harvested_wh, load_w=150.0
        )
        rows.append((location.code, day.harvested_wh, analysis))
    return rows


def test_ext_battery_economics(benchmark, runner, out_dir):
    rows = benchmark.pedantic(
        analyze_stations, args=(runner,), rounds=1, iterations=1
    )

    table = format_table(
        ["site", "daily harvest", "battery size", "service life",
         "annualized cost"],
        [
            [code, f"{wh:.0f} Wh", f"{a.capacity_wh / 1000:.2f} kWh",
             f"{a.service_years:.1f} yr", f"${a.annualized_cost:.0f}/yr"]
            for code, wh, a in rows
        ],
    )
    emit(out_dir, "ext_battery_economics", table)

    for code, harvested_wh, analysis in rows:
        # The battery must hold more than a day's harvest (DoD headroom)...
        assert analysis.capacity_wh > harvested_wh
        # ...wears out well before the panel's ~25-year life...
        assert analysis.service_years < 10.0
        # ...and costs real money every year. SolarCore's bill: $0.
        assert analysis.annualized_cost > 10.0
