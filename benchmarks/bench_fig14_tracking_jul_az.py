"""Figure 14: MPP tracking accuracy under an irregular weather pattern
(July at Phoenix, AZ — monsoon clouds) for H1, HM2, and L1."""

from conftest import emit

from repro.harness.experiments import fig13_14_tracking
from repro.harness.reporting import format_table, sparkline


def test_fig14_tracking_jul_az(benchmark, runner, out_dir):
    traces = benchmark(fig13_14_tracking, 7, ("H1", "HM2", "L1"), "AZ", runner)

    lines = []
    rows = []
    for name, trace in traces.items():
        lines.append(f"{name:4s} budget |{sparkline(trace.budget_w)}|")
        lines.append(f"{name:4s} actual |{sparkline(trace.actual_w)}|")
        rows.append([name, f"{trace.mean_error:.1%}"])
    lines.append(format_table(["mix", "mean tracking error"], rows))
    emit(out_dir, "fig14_tracking_jul_az", "\n".join(lines))

    assert traces["H1"].mean_error < 0.3
    assert traces["L1"].mean_error <= traces["H1"].mean_error
