"""Telemetry overhead guard: the disabled hub must stay effectively free.

The observability layer's contract is that an uninstalled (null) hub costs
one attribute check per instrumentation site.  This benchmark times the
same day simulation with the null hub and with a fully enabled hub (ring
buffer sink, metrics, spans) and asserts the disabled path is not paying
for instrumentation it did not ask for.
"""

import time

from benchjson import write_bench_json
from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import PHOENIX_AZ
from repro.telemetry import RingBufferSink, Telemetry, telemetry_session

CFG = SolarCoreConfig()  # full 1-minute cadence: the real hot path


def _time_run(repeats=3, telemetry_on=False):
    best = float("inf")
    for _ in range(repeats):
        if telemetry_on:
            with telemetry_session(Telemetry(sinks=[RingBufferSink()])):
                start = time.perf_counter()
                run_day("HM2", PHOENIX_AZ, 7, config=CFG)
                best = min(best, time.perf_counter() - start)
        else:
            start = time.perf_counter()
            run_day("HM2", PHOENIX_AZ, 7, config=CFG)
            best = min(best, time.perf_counter() - start)
    return best


def test_disabled_telemetry_overhead(benchmark, out_dir):
    disabled = benchmark.pedantic(_time_run, rounds=1, iterations=1)
    enabled = _time_run(telemetry_on=True)

    ratio = enabled / disabled
    emit(
        out_dir,
        "telemetry_overhead",
        "\n".join(
            [
                f"disabled (null hub) best-of-3: {disabled * 1e3:.1f} ms",
                f"enabled (full hub)  best-of-3: {enabled * 1e3:.1f} ms",
                f"enabled/disabled ratio: {ratio:.3f}",
            ]
        ),
    )
    write_bench_json(
        out_dir,
        "telemetry_overhead",
        # Both numbers are wall-clock; the hard guard on the ratio is
        # the assertions below, so the JSON trajectory only warns.
        timings_s={"disabled": disabled, "enabled": enabled},
        extra={"ratio": ratio},
    )

    # The disabled path must not be slower than the instrumented one
    # beyond timing noise: if it is, a hot path stopped guarding on
    # ``tel.enabled`` and is doing telemetry work unconditionally.
    assert disabled <= enabled * 1.05, (
        f"null-hub run ({disabled:.3f}s) slower than enabled run "
        f"({enabled:.3f}s); a hot path lost its enabled-guard"
    )
    # And turning everything on must stay cheap in absolute terms.
    assert ratio < 1.5, f"enabled telemetry costs {ratio:.2f}x"
