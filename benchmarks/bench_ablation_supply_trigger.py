"""Ablation: supply-change-triggered tracking vs strictly periodic.

The paper triggers MPP tracking every 10 minutes.  An event-driven variant
adds an early trigger when the panel's available power moves by more than a
threshold since the last event — trading extra tracking events for lower
drift error, most visibly under volatile weather.
"""

from conftest import emit

from repro.core.config import SolarCoreConfig
from repro.core.simulation import run_day
from repro.environment.locations import OAK_RIDGE_TN, PHOENIX_AZ
from repro.harness.reporting import format_table

TRIGGERS = (None, 0.20, 0.10, 0.05)


def sweep_triggers():
    rows = []
    for location, month in ((PHOENIX_AZ, 7), (OAK_RIDGE_TN, 4)):
        for trigger in TRIGGERS:
            cfg = SolarCoreConfig(supply_change_fraction=trigger)
            day = run_day("HM2", location, month, "MPPT&Opt", config=cfg)
            rows.append((
                f"{location.code}-m{month}",
                "periodic" if trigger is None else f"{trigger:.0%}",
                day.mean_tracking_error,
                day.energy_utilization,
                day.tracking_events,
            ))
    return rows


def test_ablation_supply_trigger(benchmark, out_dir):
    rows = benchmark.pedantic(sweep_triggers, rounds=1, iterations=1)

    table = format_table(
        ["case", "trigger", "tracking error", "utilization", "events"],
        [
            [case, trig, f"{e:.1%}", f"{u:.1%}", str(n)]
            for case, trig, e, u, n in rows
        ],
    )
    emit(out_dir, "ablation_supply_trigger", table)

    by_key = {(case, trig): (e, u, n) for case, trig, e, u, n in rows}
    for case in ("PFCI-m7", "ORNL-m4"):
        periodic = by_key[(case, "periodic")]
        eager = by_key[(case, "5%")]
        assert eager[0] <= periodic[0] + 1e-9  # error no worse
        assert eager[2] > periodic[2]  # more events
