"""Figure 19: effective operation duration (% daytime on solar vs utility)
per station and month."""

import numpy as np
from conftest import emit

from repro.harness.experiments import fig19_effective_duration
from repro.harness.reporting import format_table


def test_fig19_effective_duration(benchmark, runner, out_dir):
    durations = benchmark.pedantic(
        fig19_effective_duration, kwargs={"runner": runner}, rounds=1, iterations=1
    )

    rows = [
        [site, str(month), f"{frac:.1%}", f"{1.0 - frac:.1%}"]
        for (site, month), frac in sorted(durations.items())
    ]
    emit(
        out_dir,
        "fig19_effective_duration",
        format_table(["site", "month", "solar", "utility"], rows),
    )

    per_site = {
        site: float(np.mean([durations[(site, m)] for m in (1, 4, 7, 10)]))
        for site in ("PFCI", "BMS", "ECSU", "ORNL")
    }
    # Resource-class ordering, with the rich sites in the paper's 60-90%+.
    assert per_site["PFCI"] >= per_site["BMS"] >= per_site["ORNL"]
    assert per_site["PFCI"] > 0.6
    assert per_site["ORNL"] < per_site["PFCI"]
