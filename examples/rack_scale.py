"""Rack-scale solar computing: the datacenter deployment the paper motivates.

Run:  python examples/rack_scale.py

Four chips with different workload mixes share one solar farm.  The rack
coordinator divides the harvested budget by three policies — equal shares,
proportional-to-demand, and TPR water-filling — showing that the paper's
throughput-per-watt principle composes hierarchically: at rack scale it
routes power away from energy-hungry chips toward efficient ones.
"""

from repro import PHOENIX_AZ
from repro.harness.reporting import format_table
from repro.rack import DIVISION_POLICIES, run_day_rack

MIXES = ("H1", "L1", "HM2", "ML2")


def main() -> None:
    print(f"Rack: {len(MIXES)} chips ({', '.join(MIXES)}) on a "
          f"{len(MIXES)}-string farm @ Phoenix, July\n")

    results = {
        policy: run_day_rack(MIXES, PHOENIX_AZ, 7, policy)
        for policy in DIVISION_POLICIES
    }
    baseline = results["equal"].total_ptp

    rows = []
    for policy, day in results.items():
        per_chip = "  ".join(
            f"{name}:{ginst / 1000:.0f}k"
            for name, ginst in zip(day.mix_names, day.retired_ginst)
        )
        rows.append([
            policy,
            f"{day.total_ptp / 1000:,.0f}k",
            f"{day.total_ptp / baseline - 1.0:+.1%}",
            f"{day.energy_utilization:.0%}",
            per_chip,
        ])
    print(format_table(
        ["division policy", "rack PTP (Ginst)", "vs equal", "utilization",
         "per-chip instructions"],
        rows,
    ))
    print(
        "\nTPR water-filling starves the high-EPI chip (H1) and feeds the"
        "\nefficient ones — the paper's per-core argument, one level up."
    )


if __name__ == "__main__":
    main()
