"""Partial shading: when the P-V curve grows a second peak.

Run:  python examples/partial_shading.py

Shades one module of a two-module series string and shows the resulting
multi-peak P-V characteristic, the bypass-diode physics behind it, and why
a perturb-and-observe tracker started in the wrong basin leaves ~12 % of
the energy on the table until a global sweep rescues it.
"""

import numpy as np

from repro.harness.reporting import format_table, sparkline
from repro.mppt import PerturbObserve
from repro.power import DCDCConverter
from repro.power.operating_point import solve_operating_point
from repro.pv import ShadedSeriesString, find_global_mpp

G, T = 900.0, 40.0
LOAD_OHM = 6.0


def main() -> None:
    for factors in ((1.0, 1.0), (1.0, 0.7), (1.0, 0.4)):
        string = ShadedSeriesString(factors)
        voc = string.open_circuit_voltage(G, T)
        voltages = np.linspace(1e-3, voc * 0.999, 100)
        powers = [string.power(float(v), G, T) for v in voltages]
        mpp = find_global_mpp(string, G, T)
        print(f"shading {factors}: global MPP {mpp.power:6.1f} W at "
              f"{mpp.voltage:5.1f} V   |{sparkline(powers, width=48)}|")

    print("\nP&O hill climbing on the (1.0, 0.4) string:")
    string = ShadedSeriesString((1.0, 0.4))
    global_mpp = find_global_mpp(string, G, T)
    rows = []
    for label, k_start in (("started low-V side", 1.2), ("started high-V side", 5.0)):
        tracker = PerturbObserve(DCDCConverter(k=k_start, k_min=0.3, k_max=12.0))
        op = None
        for _ in range(80):
            op = solve_operating_point(string, tracker.converter, LOAD_OHM, G, T)
            tracker.step(op)
        op = solve_operating_point(string, tracker.converter, LOAD_OHM, G, T)
        rows.append([
            label, f"{op.pv_power:.1f} W",
            f"{op.pv_power / global_mpp.power:.1%} of global",
        ])
    print(format_table(["tracker", "settled power", "outcome"], rows))
    print(
        "\nHill climbers cannot tell a local peak from the global one —"
        "\nshaded installations need periodic global sweeps."
    )


if __name__ == "__main__":
    main()
