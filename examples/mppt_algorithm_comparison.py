"""Classic MPPT algorithms vs SolarCore's joint (k, w) tracking.

Run:  python examples/mppt_algorithm_comparison.py

Perturb-and-observe and incremental conductance (the paper's related work
[32], [33]) pin a *fixed* load at the panel's MPP by tuning only the
converter.  They harvest almost as much energy as SolarCore — but, as the
paper's Section 2.3 argues, the energy lands at whatever rail voltage the
fixed load produces, with no workload performance to show for it.
SolarCore converts the same tracking accuracy into throughput by adapting
the multi-core load.
"""

from repro import MultiCoreChip, PVArray, find_mpp, mix
from repro.core import SolarCoreConfig, SolarCoreController, make_tuner
from repro.harness.reporting import format_table
from repro.mppt import IncrementalConductance, PerturbObserve, run_tracker
from repro.power import DCDCConverter

# A slowly clouding afternoon: (irradiance, cell temperature) conditions.
PROFILE = [(950, 48), (900, 47), (820, 45), (600, 40), (450, 35), (700, 42)]


def solarcore_run(array: PVArray) -> tuple[float, float]:
    """Track the same profile with SolarCore; return (efficiency, GIPS)."""
    chip = MultiCoreChip(mix("HM2"))
    chip.set_all_levels(0)
    controller = SolarCoreController(
        array, DCDCConverter(), chip, make_tuner("MPPT&Opt"), SolarCoreConfig()
    )
    drawn, available, throughput = 0.0, 0.0, 0.0
    for irradiance, temp in PROFILE:
        result = controller.track(irradiance, temp, minute=0.0)
        mpp = find_mpp(array, irradiance, temp)
        drawn += min(chip.total_power_at(0.0), result.power_w, mpp.power)
        available += mpp.power
        throughput += chip.total_throughput_at(0.0)
    return drawn / available, throughput / len(PROFILE)


def main() -> None:
    array = PVArray()
    rows = []
    for tracker_cls in (PerturbObserve, IncrementalConductance):
        tracker = tracker_cls(DCDCConverter(k=3.0, delta_k=0.05))
        run = run_tracker(tracker, array, 1.8, PROFILE, steps_per_condition=30)
        rows.append([run.name, f"{run.tracking_efficiency:.1%}", "0.00 (fixed load)"])

    efficiency, gips = solarcore_run(array)
    rows.append(["SolarCore (k + w)", f"{efficiency:.1%}", f"{gips:.2f} GIPS"])

    print(format_table(
        ["tracker", "tracking efficiency", "workload throughput"], rows
    ))
    print(
        "\nAll three pin the panel near its MPP; only SolarCore's joint"
        "\ntransfer-ratio + load adaptation turns the watts into computation."
    )


if __name__ == "__main__":
    main()
