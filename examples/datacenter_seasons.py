"""Site-selection study: how geography and season shape green computing.

Run:  python examples/datacenter_seasons.py

Sweeps the paper's four NREL MIDC stations across the four evaluated
months and reports, per (site, season): daily insolation, effective
solar-powered duration, energy utilization, and the solar share of total
chip energy — the numbers an operator would use to pick a solar-powered
datacenter site (paper Table 2 / Figures 18-19).
"""

from repro import ALL_LOCATIONS, generate_trace, run_day
from repro.harness.reporting import format_table

MONTH_NAMES = {1: "Jan", 4: "Apr", 7: "Jul", 10: "Oct"}


def main() -> None:
    rows = []
    for location in ALL_LOCATIONS:
        for month in (1, 4, 7, 10):
            trace = generate_trace(location, month)
            day = run_day("ML2", location, month, "MPPT&Opt", trace=trace)
            solar_share = day.solar_used_wh / (day.solar_used_wh + day.utility_wh)
            rows.append([
                f"{location.code} ({location.potential})",
                MONTH_NAMES[month],
                f"{trace.daily_insolation_kwh_m2():.2f}",
                f"{day.effective_duration_fraction:.0%}",
                f"{day.energy_utilization:.0%}",
                f"{solar_share:.0%}",
            ])

    print(format_table(
        ["site", "month", "kWh/m^2/day", "solar duration",
         "utilization", "solar share of chip energy"],
        rows,
    ))
    print(
        "\nSites with excellent resource (PFCI) keep the chip on solar for"
        "\nmost of the day year-round; low-resource sites (ORNL) lean on the"
        "\nutility in winter — the paper's Figure 19 story."
    )


if __name__ == "__main__":
    main()
