"""Characterize a PV module the way the paper's Section 3 does.

Run:  python examples/panel_characterization.py

Sweeps the BP3180N module across irradiance and temperature, printing the
landmark points of every curve (Isc, Voc, MPP) plus an ASCII P-V plot —
the paper's Figures 6 and 7 in terminal form — and demonstrates building a
custom module from cell-level parameters.
"""

from repro import PVModule, bp3180n, find_mpp
from repro.harness.reporting import format_table, sparkline
from repro.pv import CellParameters, ModuleParameters, sample_iv_curve


def sweep(module: PVModule, conditions, fixed_label: str) -> None:
    rows = []
    for label, irradiance, temp in conditions:
        curve = sample_iv_curve(module, irradiance, temp, n_points=120)
        mpp = find_mpp(module, irradiance, temp)
        rows.append([
            label,
            f"{curve.isc:.2f}",
            f"{curve.voc:.2f}",
            f"{mpp.voltage:.2f}",
            f"{mpp.power:.1f}",
            sparkline(curve.power, width=36),
        ])
    print(f"\n{fixed_label}")
    print(format_table(
        ["condition", "Isc A", "Voc V", "Vmpp V", "Pmax W", "P-V curve"], rows
    ))


def main() -> None:
    module = PVModule(bp3180n())
    print(f"Module: {module.params.name} "
          f"({module.params.cells_series} cells in series)")

    sweep(
        module,
        [(f"G={g:4.0f}", float(g), 25.0) for g in (400, 600, 800, 1000)],
        "Irradiance sweep at 25 C (paper Figure 6):",
    )
    sweep(
        module,
        [(f"T={t:3.0f}C", 1000.0, float(t)) for t in (0, 25, 50, 75)],
        "Temperature sweep at 1000 W/m^2 (paper Figure 7):",
    )

    # Building a custom module from cell parameters.
    custom = PVModule(
        ModuleParameters(
            name="Custom-60",
            cell=CellParameters(isc_ref=8.5, voc_ref=0.62, ideality=1.2),
            cells_series=60,
        )
    )
    mpp = find_mpp(custom, 1000.0, 25.0)
    print(
        f"\nCustom 60-cell module: Voc={custom.open_circuit_voltage(1000, 25):.1f} V, "
        f"Pmax={mpp.power:.0f} W at {mpp.voltage:.1f} V"
    )


if __name__ == "__main__":
    main()
