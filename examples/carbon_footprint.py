"""Carbon-footprint campaign: the paper's motivating metric, quantified.

Run:  python examples/carbon_footprint.py

Runs a multi-realization campaign (several independent weather days per
site/season cell) and reports the CO2 displaced by running the processor
from the panel instead of the regional grid — "maximally reducing the
carbon footprint of computing systems", the paper's stated goal.
"""

from repro import ALL_LOCATIONS
from repro.core import run_campaign
from repro.harness.reporting import format_table
from repro.metrics import GRID_INTENSITY_KG_PER_KWH, carbon_report


def main() -> None:
    campaign = run_campaign(
        "HM2",
        list(ALL_LOCATIONS),
        months=(1, 7),
        days_per_cell=3,
    )

    rows = []
    for location in ALL_LOCATIONS:
        days = [
            day
            for cell in campaign.cells
            if cell.location_code == location.code
            for day in cell.days
        ]
        report = carbon_report(days)
        rows.append([
            f"{location.code} ({location.potential})",
            f"{GRID_INTENSITY_KG_PER_KWH[location.code]:.2f}",
            f"{report.solar_kwh:.2f}",
            f"{report.avoided_kg:.2f}",
            f"{report.reduction_fraction:.0%}",
        ])

    print(f"Campaign: {campaign.mix_name}, {campaign.days_per_cell} weather "
          f"realizations x {{Jan, Jul}} x 4 stations, policy {campaign.policy}\n")
    print(format_table(
        ["site", "grid kgCO2/kWh", "solar kWh", "kgCO2 avoided",
         "footprint reduction"],
        rows,
    ))

    total = campaign.carbon()
    print(f"\nfleet total: {total.avoided_kg:.2f} kg CO2 avoided over "
          f"{len(campaign.all_days)} chip-days "
          f"({total.reduction_fraction:.0%} below an all-grid fleet)")
    print(
        "Note the interplay: Colorado's coal-heavy grid makes every solar"
        "\nkWh there worth ~60% more carbon than in Arizona."
    )


if __name__ == "__main__":
    main()
