"""Full-system solar day: chip + memory + disk + NIC under one panel.

Run:  python examples/fullsystem_day.py

The paper's Section 8 future work, implemented: the SolarCore controller
coordinates per-core DVFS, DRAM power states, DRPM disk rotation speed, and
NIC link rate against a two-module PV array, allocating each marginal watt
to whichever knob buys the most weighted system service.
"""

from repro import PHOENIX_AZ, OAK_RIDGE_TN, mix
from repro.fullsystem import default_server, run_day_fullsystem
from repro.harness.reporting import format_table, sparkline


def main() -> None:
    server = default_server(mix("ML2"))
    print("Server power envelope:")
    floor = server.floor_power_at(0.0)
    server.chip.set_all_levels(5)
    for component in server.components:
        component.set_level(component.n_levels - 1)
    peak = server.total_power_at(0.0)
    print(f"  floor {floor:.0f} W  ...  peak {peak:.0f} W  (panel: 2x BP3180N)")

    rows = []
    for location, month in ((PHOENIX_AZ, 7), (PHOENIX_AZ, 1), (OAK_RIDGE_TN, 1)):
        day = run_day_fullsystem("ML2", location, month)
        rows.append([
            f"{location.code} m{month}",
            f"{day.energy_utilization:.0%}",
            f"{day.effective_duration_fraction:.0%}",
            f"{day.mean_system_utility:.2f}",
        ])
        if location is PHOENIX_AZ and month == 7:
            print("\nJuly day at Phoenix:")
            print(f"  MPP budget   |{sparkline(day.mpp_w)}|")
            print(f"  server draw  |{sparkline(day.consumed_w)}|")
            print(f"  system util  |{sparkline(day.system_utility)}|")

    print()
    print(format_table(
        ["site/month", "energy utilization", "solar duration",
         "mean system service (0-1.65)"],
        rows,
    ))


if __name__ == "__main__":
    main()
