"""Watch the three-step MPPT controller converge, step by step.

Run:  python examples/mppt_tracking_demo.py

Drives a single tracking event by hand at several irradiance levels and
prints the operating point after every knob movement — the transfer ratio
``k``, the per-core DVFS levels, the rail voltage, and how close the drawn
power sits to the true maximum power point.
"""

from repro import MultiCoreChip, PVArray, find_mpp, mix
from repro.core import SolarCoreConfig, SolarCoreController, make_tuner
from repro.power import DCDCConverter


def show(label: str, controller, chip, converter, irradiance, cell_temp) -> None:
    op = controller.solve(irradiance, cell_temp, minute=0.0)
    mpp = find_mpp(controller.array, irradiance, cell_temp)
    print(
        f"  {label:24s} k={converter.k:5.2f}  rail={op.output_voltage:6.2f} V  "
        f"P={op.output_power:6.1f} W ({op.output_power / mpp.power:6.1%} of MPP)  "
        f"levels={chip.levels}"
    )


def main() -> None:
    array = PVArray()
    for irradiance, cell_temp in ((950.0, 48.0), (600.0, 38.0), (320.0, 28.0)):
        chip = MultiCoreChip(mix("HM2"))
        chip.set_all_levels(0)
        converter = DCDCConverter()
        config = SolarCoreConfig()
        controller = SolarCoreController(
            array, converter, chip, make_tuner("MPPT&Opt"), config
        )
        mpp = find_mpp(array, irradiance, cell_temp)
        print(
            f"\nG = {irradiance:.0f} W/m^2, cell {cell_temp:.0f} C "
            f"-> panel MPP = {mpp.power:.1f} W at {mpp.voltage:.1f} V"
        )
        show("before tracking", controller, chip, converter, irradiance, cell_temp)
        result = controller.track(irradiance, cell_temp, minute=0.0)
        show(
            f"after {result.iterations:2d} iterations",
            controller, chip, converter, irradiance, cell_temp,
        )
        if result.load_saturated:
            print("  (chip saturated at max V/F below the panel's MPP)")


if __name__ == "__main__":
    main()
