"""Compare the paper's power-management schemes on one site and season.

Run:  python examples/policy_comparison.py [site] [month]

Reproduces the Figure 21 comparison for a single (site, month): the three
MPPT load-adaptation policies (individual-core, round-robin, and SolarCore's
throughput-power-ratio optimization), the Fixed-Power baseline at its best
budget, and the battery-equipped bounds — all normalized to Battery-L.
"""

import sys

from repro import location_by_code, run_day, run_day_battery, run_day_fixed
from repro.harness.reporting import format_table


def main() -> None:
    site = sys.argv[1] if len(sys.argv) > 1 else "AZ"
    month = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    location = location_by_code(site)
    mix_name = "HM2"

    print(f"Comparing policies: {mix_name} at {location.name}, month {month}\n")

    battery_l = run_day_battery(mix_name, location, month, derating=0.81)
    battery_u = run_day_battery(mix_name, location, month, derating=0.92)

    rows = []
    for policy in ("MPPT&IC", "MPPT&RR", "MPPT&Opt"):
        day = run_day(mix_name, location, month, policy)
        rows.append([
            policy,
            f"{day.ptp / battery_l.ptp:.2f}",
            f"{day.energy_utilization:.1%}",
            f"{day.mean_tracking_error:.1%}",
        ])

    best_fixed = max(
        (run_day_fixed(mix_name, location, month, budget)
         for budget in (55.0, 75.0, 100.0, 125.0)),
        key=lambda d: d.ptp,
    )
    rows.append([
        best_fixed.policy + " (best)",
        f"{best_fixed.ptp / battery_l.ptp:.2f}",
        f"{best_fixed.energy_utilization:.1%}",
        "-",
    ])
    rows.append(["Battery-L (derate 0.81)", "1.00", "81.0%", "-"])
    rows.append([
        "Battery-U (derate 0.92)", f"{battery_u.ptp / battery_l.ptp:.2f}",
        "92.0%", "-",
    ])

    print(format_table(
        ["policy", "normalized PTP", "energy utilization", "tracking error"],
        rows,
    ))
    print(
        "\nSolarCore (MPPT&Opt) matches the best battery system's performance"
        "\nwithout storage cost, lifetime, or environmental drawbacks."
    )


if __name__ == "__main__":
    main()
