"""Annual solar-computing yield for a candidate installation.

Run:  python examples/annual_yield.py [site]

Extends the paper's four evaluated months to the full year (seasonal
interpolation of the weather regimes) and reports, month by month, the
panel's insolation and the SolarCore-managed chip's green-energy share —
the numbers behind a yearly total-cost / carbon projection.
"""

import sys

from repro import location_by_code, run_day
from repro.environment.annual import generate_month_trace
from repro.harness.reporting import format_table
from repro.metrics import GRID_INTENSITY_KG_PER_KWH, carbon_report

MONTHS = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec".split()


def main() -> None:
    site = sys.argv[1] if len(sys.argv) > 1 else "AZ"
    location = location_by_code(site)
    print(f"Annual yield projection: {location.name} "
          f"({location.potential} resource), mix ML2, MPPT&Opt\n")

    rows = []
    days = []
    for month in range(1, 13):
        trace = generate_month_trace(location, month)
        day = run_day("ML2", location, month if month in location.regimes else 7,
                      "MPPT&Opt", trace=trace)
        days.append(day)
        rows.append([
            MONTHS[month - 1],
            f"{trace.daily_insolation_kwh_m2():.2f}",
            f"{day.solar_used_wh:.0f}",
            f"{day.energy_utilization:.0%}",
            f"{day.effective_duration_fraction:.0%}",
        ])

    print(format_table(
        ["month", "kWh/m^2/day", "solar Wh/day", "utilization", "solar duration"],
        rows,
    ))

    report = carbon_report(days, GRID_INTENSITY_KG_PER_KWH.get(location.code))
    # Scale the 12 mid-month days to a ~365-day year.
    annual_solar_kwh = report.solar_kwh / 12.0 * 365.0
    annual_avoided = report.avoided_kg / 12.0 * 365.0
    print(f"\nprojected yearly harvest  {annual_solar_kwh:7.1f} kWh")
    print(f"projected CO2 avoided     {annual_avoided:7.1f} kg/year "
          f"({report.reduction_fraction:.0%} footprint reduction)")


if __name__ == "__main__":
    main()
