"""Quickstart: simulate one solar-powered day and print the headline metrics.

Run:  python examples/quickstart.py

Simulates a July day in Phoenix, AZ with the heterogeneous HM2 workload
(half high-EPI, half moderate-EPI SPEC2000 programs) on an 8-core chip
powered by a BP3180N panel under SolarCore's MPPT&Opt management.
"""

from repro import PHOENIX_AZ, run_day


def main() -> None:
    day = run_day("HM2", PHOENIX_AZ, month=7, policy="MPPT&Opt")

    print(f"workload             {day.mix_name}")
    print(f"station              {day.location_code} (Phoenix, AZ), July")
    print(f"solar available      {day.solar_available_wh:7.1f} Wh")
    print(f"solar consumed       {day.solar_used_wh:7.1f} Wh")
    print(f"energy utilization   {day.energy_utilization:7.1%}")
    print(f"effective duration   {day.effective_duration_fraction:7.1%} of daytime")
    print(f"mean tracking error  {day.mean_tracking_error:7.1%}")
    print(f"utility backup       {day.utility_wh:7.1f} Wh")
    print(f"instructions (solar) {day.ptp:7.0f} Ginst")
    print(f"tracking events      {day.tracking_events:7d}")


if __name__ == "__main__":
    main()
