"""Span-based wall-clock timing for the simulation hot paths.

A span measures one named region (``run_day``, ``controller.track``,
``rack.divide_budget``) with a monotonic clock, supports nesting (each span
knows its parent, so a trace of ``run_day`` shows how much of it was spent
inside tracking events), and folds every finished span into per-name
aggregate statistics the post-run summary table prints.

Spans are deliberately cheap: entering one appends to a stack and reads the
clock; exiting reads the clock again and updates a running aggregate.  The
full per-span record list is only kept when ``keep_records`` is set — day
simulations open thousands of inner spans and the aggregates are what the
ROADMAP's perf work needs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "SpanAggregate", "SpanTracker", "Span"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        name: Span name.
        duration_s: Wall-clock duration [s].
        depth: Nesting depth at which the span ran (0 = top level).
        parent: Enclosing span name, or None at top level.
        attrs: Free-form attributes given at span entry.
    """

    name: str
    duration_s: float
    depth: int
    parent: str | None
    attrs: dict


@dataclass
class SpanAggregate:
    """Running statistics for one span name.

    Attributes:
        name: Span name.
        count: Finished spans under this name.
        total_s: Summed duration [s].
        min_s: Fastest span [s].
        max_s: Slowest span [s].
        self_total_s: Summed duration minus time spent in child spans [s].
    """

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    self_total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean duration [s] (0 when no spans finished)."""
        return self.total_s / self.count if self.count else 0.0


class Span:
    """Context manager measuring one region; created by :class:`SpanTracker`."""

    __slots__ = ("tracker", "name", "attrs", "_start", "_child_s")

    def __init__(self, tracker: SpanTracker, name: str, attrs: dict) -> None:
        self.tracker = tracker
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._child_s = 0.0

    def __enter__(self) -> Span:
        self.tracker._stack.append(self)
        self._start = self.tracker.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self.tracker.clock() - self._start
        self.tracker._finish(self, duration)

    def add_child_time(self, seconds: float) -> None:
        """Book a child span's duration against this span's self time."""
        self._child_s += seconds


class SpanTracker:
    """Owns the active span stack and per-name aggregates.

    Args:
        keep_records: Retain every finished :class:`SpanRecord` (tests and
            deep profiling); aggregates are always kept.
        clock: Monotonic time source in seconds (injectable for tests).
    """

    def __init__(
        self,
        keep_records: bool = False,
        clock=time.perf_counter,
    ) -> None:
        self.keep_records = keep_records
        self.clock = clock
        self.records: list[SpanRecord] = []
        self.aggregates: dict[str, SpanAggregate] = {}
        # Nesting is a per-thread notion: the service runs day
        # simulations on several compute threads against one shared
        # tracker, and a shared stack would interleave their spans (and
        # trip the corruption check below).  Aggregates stay shared,
        # guarded by the lock.
        self._local = threading.local()
        self._agg_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet entered) span under ``name``."""
        return Span(self, name, attrs)

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _finish(self, span: Span, duration_s: float) -> None:
        stack = self._stack
        popped = stack.pop()
        if popped is not span:  # defensive: exits must nest properly
            raise RuntimeError(
                f"span stack corrupted: exiting {span.name!r} "
                f"but innermost is {popped.name!r}"
            )
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.add_child_time(duration_s)

        with self._agg_lock:
            agg = self.aggregates.get(span.name)
            if agg is None:
                agg = self.aggregates[span.name] = SpanAggregate(span.name)
            agg.count += 1
            agg.total_s += duration_s
            agg.self_total_s += max(0.0, duration_s - span._child_s)
            if duration_s < agg.min_s:
                agg.min_s = duration_s
            if duration_s > agg.max_s:
                agg.max_s = duration_s

            if self.keep_records:
                self.records.append(
                    SpanRecord(
                        name=span.name,
                        duration_s=duration_s,
                        depth=len(stack),
                        parent=parent.name if parent is not None else None,
                        attrs=span.attrs,
                    )
                )

    def merge(self, snapshot: dict[str, dict[str, float]]) -> None:
        """Fold another tracker's :meth:`snapshot` into this tracker.

        Used by the parallel sweep engine: worker processes ship their
        span aggregates back as plain data and the parent folds them in,
        so the post-run summary covers worker-side simulation time.
        Counts and totals add; ``max_s`` takes the maximum; per-span
        minima are not part of a snapshot and are left untouched.
        """
        for name, data in snapshot.items():
            agg = self.aggregates.get(name)
            if agg is None:
                agg = self.aggregates[name] = SpanAggregate(name)
            agg.count += int(data["count"])
            agg.total_s += data["total_s"]
            agg.self_total_s += data["self_s"]
            if data["max_s"] > agg.max_s:
                agg.max_s = data["max_s"]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Aggregates as plain data, sorted by total time descending."""
        ordered = sorted(
            self.aggregates.values(), key=lambda a: a.total_s, reverse=True
        )
        return {
            a.name: {
                "count": a.count,
                "total_s": a.total_s,
                "self_s": a.self_total_s,
                "mean_s": a.mean_s,
                "max_s": a.max_s,
            }
            for a in ordered
        }

    def reset(self) -> None:
        """Drop aggregates and records; open spans are unaffected."""
        self.records.clear()
        self.aggregates.clear()
