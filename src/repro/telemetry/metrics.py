"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the telemetry hub (the event stream is
the structured half): cheap monotonically increasing counters for things the
paper counts (tracking events, ``brentq`` solves, DVFS transitions, runner
cache hits), gauges for last-seen values, and histograms with fixed bucket
boundaries for distributions (tracking iterations per event, span
durations).  Percentiles are estimated from the bucket counts by linear
interpolation inside the winning bucket — the standard fixed-bucket
estimator used by Prometheus-style registries, chosen here so recording a
sample is O(#buckets) worst case and allocates nothing.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_S",
    "DEFAULT_ITERATION_BUCKETS",
]

#: Bucket upper bounds for span durations [seconds]: 100 us .. 100 s.
DEFAULT_DURATION_BUCKETS_S: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: Bucket upper bounds for small integer counts (tracking iterations etc.).
DEFAULT_ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128,
)


@dataclass
class Counter:
    """A monotonically increasing count.

    Attributes:
        name: Registry key.
        value: Current count.
    """

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins measurement.

    Attributes:
        name: Registry key.
        value: Most recently set value.
        updates: How many times the gauge was set.
    """

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """A fixed-bucket histogram with interpolated percentile estimates.

    Args:
        name: Registry key.
        buckets: Strictly increasing bucket upper bounds; samples above the
            last bound land in an implicit overflow bucket.
    """

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_S
    ) -> None:
        if len(buckets) < 1:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(buckets, buckets[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {buckets}")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        # One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        idx = bisect.bisect_left(self.bounds, value)
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation within the bucket containing the rank; the
        overflow bucket reports the observed maximum.  Exact for the
        recorded extremes: q=0 returns ``min`` and q=100 returns ``max``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        rank = q / 100.0 * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            prev_cumulative = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if idx >= len(self.bounds):  # overflow bucket
                    return self.max
                lo = self.bounds[idx - 1] if idx > 0 else min(self.min, self.bounds[idx])
                hi = self.bounds[idx]
                # Clamp interpolation to the observed range so estimates
                # never lie outside [min, max].
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi > self.max else hi
                fraction = (rank - prev_cumulative) / bucket_count
                return lo + (hi - lo) * fraction
        return self.max

    def snapshot(self) -> dict[str, float]:
        """Summary statistics as a plain dict (for summaries and JSON)."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "max": self.max,
        }


@dataclass
class MetricsRegistry:
    """Named collection of counters, gauges, and histograms.

    Lookup lazily creates the metric, so instrumentation sites never need a
    registration step; a given name must keep a single metric kind.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_S
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, buckets)
        return metric

    def snapshot(self) -> dict[str, dict]:
        """All metrics as one nested plain-data dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every registered metric."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
