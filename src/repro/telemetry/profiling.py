"""Hot-path phase profiler: where does a simulated day's wall-time go?

The span tracker answers "how long did ``run_day`` take"; this module
answers the finer question the ROADMAP's perf work needs: how that time
splits across the engine's per-step phases — trace stepping, the MPP
solve, the ATS/supply decision, the policy step (controller, DVFS,
load tuning), and the recorders — plus how much solver work (``brentq``
calls and iterations) each day performed.

Phase names follow a two-level convention:

* ``step.*`` and ``day.*`` phases form an **exclusive partition** of a
  day's wall-time: they never overlap, so their totals sum to the
  attributed time and their share of the measured day wall is the
  profile's *coverage* (the acceptance bar is >= 95%).
* every other name (``power.operating_point``, ``controller.track``,
  ``mppt.run_tracker``) is a **nested** phase: it runs *inside* a
  partition phase and is reported separately, never added to coverage.

Cost contract (same as the rest of the hub): profiling is disabled by
default — hot paths hoist ``prof = tel.profile`` once and guard every
timing site with ``prof.enabled``, so the off state costs one attribute
check per site.  Enabled profiling reads ``perf_counter`` twice per
phase and updates a dict entry; the overhead guard benchmark keeps the
disabled path honest.

Profiles are plain-data snapshots, mergeable across worker processes
exactly like span aggregates: each worker collects into a private
:class:`PhaseProfiler` and the parent folds the snapshots in, so a
``jobs=N`` sweep still reports one coherent "where does the time go"
table covering every worker's days.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "PhaseStat",
    "DayProfile",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "render_profile",
    "PARTITION_PREFIXES",
]

#: Phase-name prefixes that partition a day's wall-time exclusively
#: (everything else is nested inside one of these and excluded from
#: coverage accounting).
PARTITION_PREFIXES = ("step.", "day.")


def _is_partition(name: str) -> bool:
    return name.startswith(PARTITION_PREFIXES)


@dataclass
class PhaseStat:
    """Accumulated wall-time for one phase name.

    Attributes:
        name: Phase name (``step.mpp_solve``, ``power.operating_point``).
        count: Times the phase ran.
        total_s: Summed wall-clock [s].
    """

    name: str
    count: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean duration per occurrence [s] (0 when never run)."""
        return self.total_s / self.count if self.count else 0.0


@dataclass
class DayProfile:
    """One simulated day's complete phase breakdown.

    Attributes:
        label: Human-readable day identity (``run_day mix=HM2 ...``).
        cell: The (location, month) sweep cell, or None outside a sweep.
        wall_s: Measured wall-clock of the whole day [s].
        phases: Per-phase ``{name: (count, total_s)}`` for this day.
        counters: Per-day solver counters (``power.brentq_calls``, ...).
    """

    label: str
    cell: tuple | None
    wall_s: float
    phases: dict[str, tuple[int, float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def attributed_s(self) -> float:
        """Summed wall-time of the partition (``step.*``/``day.*``) phases."""
        return sum(t for name, (_, t) in self.phases.items() if _is_partition(name))

    @property
    def coverage(self) -> float:
        """Fraction of the day wall the partition phases account for."""
        return self.attributed_s / self.wall_s if self.wall_s > 0 else 0.0


class _DayContext:
    """Context manager bounding one day's profile; see PhaseProfiler.day."""

    __slots__ = ("_profiler", "_label", "_cell", "_start", "_active")

    def __init__(self, profiler: PhaseProfiler, label: str, cell: tuple | None) -> None:
        self._profiler = profiler
        self._label = label
        self._cell = cell
        self._start = 0.0
        self._active = False

    def __enter__(self) -> _DayContext:
        prof = self._profiler
        # Days never nest in practice (one engine runs one day); if a
        # caller does nest, the inner context records nothing rather
        # than corrupting the outer day's accounting.
        if prof._day_phases is None:
            prof._day_phases = {}
            prof._day_counters = {}
            self._active = True
            self._start = prof.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._active:
            return
        prof = self._profiler
        wall_s = prof.clock() - self._start
        day = DayProfile(
            label=self._label,
            cell=self._cell,
            wall_s=wall_s,
            phases={
                name: (entry[0], entry[1])
                for name, entry in prof._day_phases.items()
            },
            counters=dict(prof._day_counters),
        )
        prof._day_phases = None
        prof._day_counters = None
        prof._append_day(day)


class PhaseProfiler:
    """Accumulates phase wall-times, solver counters, and day profiles.

    Args:
        max_days: Per-day profiles kept (further days still feed the
            global phase totals; only the per-day list is bounded, and
            :attr:`truncated_days` counts what was dropped).
        clock: Monotonic time source [s] (injectable for tests).
    """

    enabled = True

    def __init__(self, max_days: int = 1024, clock=time.perf_counter) -> None:
        self.max_days = max_days
        self.clock = clock
        self.phases: dict[str, PhaseStat] = {}
        self.counters: dict[str, float] = {}
        self.days: list[DayProfile] = []
        self.truncated_days = 0
        # Open-day accumulators (None outside a day context).  Mutable
        # [count, total] lists keep the per-step hot path allocation-free
        # after the first occurrence of each phase.
        self._day_phases: dict[str, list] | None = None
        self._day_counters: dict[str, float] | None = None

    # -- hot-path recording ---------------------------------------------
    def add(self, phase: str, seconds: float) -> None:
        """Book ``seconds`` of wall-time against ``phase``."""
        stat = self.phases.get(phase)
        if stat is None:
            stat = self.phases[phase] = PhaseStat(phase)
        stat.count += 1
        stat.total_s += seconds
        day = self._day_phases
        if day is not None:
            entry = day.get(phase)
            if entry is None:
                day[phase] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the solver/work counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount
        day = self._day_counters
        if day is not None:
            day[name] = day.get(name, 0.0) + amount

    def day(self, label: str, cell: tuple | None = None) -> _DayContext:
        """A context manager bounding one simulated day's profile."""
        return _DayContext(self, label, cell)

    # -- aggregation -----------------------------------------------------
    def _append_day(self, day: DayProfile) -> None:
        if len(self.days) < self.max_days:
            self.days.append(day)
        else:
            self.truncated_days += 1

    def by_cell(self) -> dict[tuple, list[DayProfile]]:
        """Recorded day profiles grouped by sweep cell (None = no cell)."""
        groups: dict[tuple, list[DayProfile]] = {}
        for day in self.days:
            groups.setdefault(day.cell, []).append(day)
        return groups

    @property
    def total_wall_s(self) -> float:
        """Summed wall-clock of every recorded day [s]."""
        return sum(day.wall_s for day in self.days)

    @property
    def coverage(self) -> float:
        """Partition-phase share of the summed day wall (0 with no days)."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        attributed = sum(day.attributed_s for day in self.days)
        return attributed / wall

    # -- cross-process plumbing ------------------------------------------
    def snapshot(self) -> dict:
        """The complete profile as one plain-data (JSON-able) dict."""
        return {
            "phases": {
                name: {"count": stat.count, "total_s": stat.total_s}
                for name, stat in sorted(
                    self.phases.items(), key=lambda kv: kv[1].total_s, reverse=True
                )
            },
            "counters": dict(sorted(self.counters.items())),
            "days": [
                {
                    "label": day.label,
                    "cell": list(day.cell) if day.cell is not None else None,
                    "wall_s": day.wall_s,
                    "phases": {
                        name: [count, total]
                        for name, (count, total) in day.phases.items()
                    },
                    "counters": dict(day.counters),
                }
                for day in self.days
            ],
            "truncated_days": self.truncated_days,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Phase counts/totals and counters add; day profiles append (up to
        ``max_days``, counting the overflow).  Used by the parallel sweep
        engine exactly like :meth:`SpanTracker.merge`.
        """
        for name, data in snapshot.get("phases", {}).items():
            stat = self.phases.get(name)
            if stat is None:
                stat = self.phases[name] = PhaseStat(name)
            stat.count += int(data["count"])
            stat.total_s += data["total_s"]
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for day in snapshot.get("days", []):
            cell = day.get("cell")
            self._append_day(
                DayProfile(
                    label=day["label"],
                    cell=tuple(cell) if cell is not None else None,
                    wall_s=day["wall_s"],
                    phases={
                        name: (int(entry[0]), float(entry[1]))
                        for name, entry in day.get("phases", {}).items()
                    },
                    counters=dict(day.get("counters", {})),
                )
            )
        self.truncated_days += int(snapshot.get("truncated_days", 0))

    def reset(self) -> None:
        """Drop every accumulated phase, counter, and day profile."""
        self.phases.clear()
        self.counters.clear()
        self.days.clear()
        self.truncated_days = 0


class NullProfiler:
    """The disabled profiler: ``enabled`` is False and every op is a no-op.

    Correctly guarded hot paths never call these methods; they exist so
    unguarded calls stay harmless.
    """

    enabled = False
    clock = staticmethod(time.perf_counter)

    def add(self, phase: str, seconds: float) -> None:
        return None

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def day(self, label: str, cell: tuple | None = None):
        return _NULL_DAY

    def by_cell(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def merge(self, snapshot: dict) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullDay:
    """Shared no-op day context; one instance serves every call."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_DAY = _NullDay()

#: The shared disabled profiler (never mutated).
NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_profile(profiler: PhaseProfiler | NullProfiler, top: int = 12) -> str:
    """The "where does the time go" report as fixed-width ASCII tables.

    Three sections: the per-phase breakdown (partition phases with their
    share of the measured day wall, nested phases marked as such), the
    solver counters (``brentq`` calls/iterations with per-call means),
    and a per-sweep-cell rollup when day profiles carry cells.  Returns
    an empty string for a disabled or empty profiler.
    """
    if not profiler.enabled or not profiler.phases:
        return ""
    # Local import: repro.harness pulls in the experiment stack, which
    # imports telemetry — a top-level import would be circular.
    from repro.harness.reporting import format_table
    from repro.telemetry.summary import format_duration

    sections: list[str] = []
    wall = profiler.total_wall_s
    n_days = len(profiler.days)

    ordered = sorted(
        profiler.phases.values(), key=lambda s: s.total_s, reverse=True
    )
    rows = []
    for stat in ordered[:top]:
        share = (
            f"{stat.total_s / wall:6.1%}" if wall > 0 and _is_partition(stat.name)
            else "nested"
        )
        rows.append([
            stat.name,
            f"{stat.count:d}",
            format_duration(stat.total_s),
            format_duration(stat.mean_s),
            share,
        ])
    header = f"phase breakdown (top {min(top, len(ordered))} of {len(ordered)})"
    sections.append(
        header + "\n" + format_table(
            ["phase", "calls", "total", "mean", "share"], rows
        )
    )
    if n_days:
        sections.append(
            f"attributed {profiler.coverage:.1%} of "
            f"{format_duration(wall)} day wall-time across {n_days} day(s)"
            + (
                f" ({profiler.truncated_days} day profile(s) dropped over "
                f"the {profiler.max_days}-day cap)"
                if profiler.truncated_days
                else ""
            )
        )

    if profiler.counters:
        rows = []
        calls = profiler.counters.get("power.brentq_calls", 0.0)
        for name, value in sorted(profiler.counters.items()):
            per_call = ""
            if name == "power.brentq_iterations" and calls > 0:
                per_call = f"{value / calls:.1f} / call"
            rows.append([name, f"{value:g}", per_call])
        sections.append(
            "solver counters\n"
            + format_table(["counter", "total", "mean"], rows)
        )

    cells = {
        cell: days for cell, days in profiler.by_cell().items() if cell is not None
    }
    if cells:
        rows = []
        for cell, days in sorted(cells.items(), key=lambda kv: str(kv[0])):
            cell_wall = sum(d.wall_s for d in days)
            cell_attr = sum(d.attributed_s for d in days)
            rows.append([
                " ".join(str(part) for part in cell),
                f"{len(days):d}",
                format_duration(cell_wall),
                f"{cell_attr / cell_wall:6.1%}" if cell_wall > 0 else "-",
            ])
        sections.append(
            "per-cell wall-time\n"
            + format_table(["cell", "days", "wall", "attributed"], rows)
        )

    return "\n\n".join(sections)
