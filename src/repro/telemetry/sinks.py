"""Pluggable event sinks: ring buffer, JSONL file, and stdlib logging.

A sink receives every structured event the hub emits.  The three built-ins
cover the three consumption patterns:

* :class:`RingBufferSink` — bounded in-memory history for tests and
  post-run analysis without touching disk;
* :class:`JsonlSink` — one JSON object per line, the trace format the CLI's
  ``--trace`` flag writes and external tooling reads back;
* :class:`LoggingSink` — bridges events onto a stdlib logger so existing
  log routing (``--log-level``, handlers) sees them as human-readable
  lines.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from typing import IO, Iterable, Iterator, Protocol

from repro.telemetry.events import TelemetryEvent, event_from_dict, event_to_dict

__all__ = [
    "EventSink",
    "RingBufferSink",
    "JsonlSink",
    "LoggingSink",
    "read_jsonl_events",
]


class EventSink(Protocol):
    """Anything that can receive structured telemetry events."""

    def emit(self, event: TelemetryEvent) -> None:
        """Handle one event."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory.

    Args:
        capacity: Maximum retained events; older ones are dropped.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[TelemetryEvent] = deque(maxlen=capacity)
        self.total_emitted = 0

    def emit(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self.total_emitted += 1

    def close(self) -> None:  # nothing to release
        pass

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._events)

    def events(self, type_tag: str | None = None) -> list[TelemetryEvent]:
        """Retained events, optionally filtered by ``type_tag``."""
        if type_tag is None:
            return list(self._events)
        return [e for e in self._events if e.type_tag == type_tag]

    def clear(self) -> None:
        """Drop retained events (``total_emitted`` keeps counting)."""
        self._events.clear()


class JsonlSink:
    """Writes one JSON object per event to a file.

    Args:
        path_or_file: Destination path (opened for writing) or an already
            open text file object (not closed by :meth:`close`).
    """

    def __init__(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False
        self.path = path_or_file if isinstance(path_or_file, str) else None
        self.written = 0

    def emit(self, event: TelemetryEvent) -> None:
        json.dump(event_to_dict(event), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        if self._owns_file:
            self._file.close()


class LoggingSink:
    """Renders events as human-readable lines on a stdlib logger.

    Args:
        logger: Target logger (default ``repro.telemetry.events``).
        level: Log level for emitted lines.
    """

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.INFO
    ) -> None:
        self.logger = logger or logging.getLogger("repro.telemetry.events")
        self.level = level

    def emit(self, event: TelemetryEvent) -> None:
        if not self.logger.isEnabledFor(self.level):
            return
        payload = event_to_dict(event)
        tag = payload.pop("type")
        minute = payload.pop("minute", None)
        detail = " ".join(f"{k}={v}" for k, v in payload.items())
        prefix = f"[m={minute:.0f}] " if isinstance(minute, float) and minute >= 0 else ""
        self.logger.log(self.level, "%s%s %s", prefix, tag, detail)

    def close(self) -> None:  # logger lifecycle is not ours
        pass


def read_jsonl_events(path: str) -> Iterable[TelemetryEvent]:
    """Read a JSONL trace back into typed event records.

    Args:
        path: File written by :class:`JsonlSink`.

    Yields:
        One :class:`~repro.telemetry.events.TelemetryEvent` per line;
        blank lines are skipped.
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield event_from_dict(json.loads(line))
