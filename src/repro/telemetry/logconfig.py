"""Stdlib-logging configuration for the repro package.

Every ``repro`` module logs through ``logging.getLogger(__name__)`` and
emits nothing until a handler is installed — the library stays silent when
embedded.  :func:`configure_logging` is the one place that installs a
handler: the CLI calls it from the global ``--log-level`` flag, scripts and
notebooks call it directly.
"""

from __future__ import annotations

import logging

__all__ = ["configure_logging", "parse_level"]

#: Root logger of the whole package.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def parse_level(level: int | str) -> int:
    """Resolve a numeric or symbolic (``"debug"``, ``"INFO"``) log level.

    Raises:
        ValueError: Unknown level name.
    """
    if isinstance(level, int):
        return level
    if level.isdigit():
        return int(level)
    resolved = logging.getLevelName(level.upper())
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {level!r}; use debug/info/warning/error/critical"
        )
    return resolved


def configure_logging(
    level: int | str = logging.WARNING,
    stream=None,
    fmt: str = _FORMAT,
) -> logging.Logger:
    """Install a stream handler on the ``repro`` logger hierarchy.

    Idempotent: a handler previously installed by this function is
    replaced, not duplicated, so tests and REPL sessions can call it
    repeatedly with different levels.

    Args:
        level: Threshold for the ``repro`` hierarchy (name or number).
        stream: Destination stream (default: stderr).
        fmt: Log line format.

    Returns:
        The configured ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = parse_level(level)

    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry_handler", False):
            logger.removeHandler(handler)
            handler.close()

    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt, datefmt=_DATE_FORMAT))
    handler._repro_telemetry_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(resolved)
    # Stop records from also reaching the (possibly configured) root logger.
    logger.propagate = False
    return logger
