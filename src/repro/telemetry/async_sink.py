"""Bridge telemetry events from compute threads onto an asyncio loop.

Simulations run on the service's worker threads (and, before the service
existed, on the main thread); the streaming fan-out lives on the event
loop.  :class:`AsyncBridgeSink` is the seam: a regular
:class:`~repro.telemetry.sinks.EventSink` whose :meth:`emit` is safe to
call from *any* thread — it serializes the event to its JSON-safe dict
and hands it to the loop with ``call_soon_threadsafe``, where the
callback (typically :meth:`repro.service.stream.StreamHub.publish`)
delivers it.

Emission never blocks the simulation: ``call_soon_threadsafe`` appends to
the loop's ready queue and returns.  Overload protection is downstream —
the stream hub's bounded per-client queues drop-oldest — so a slow
WebSocket client can never stall a compute thread.  Events emitted after
the loop shut down are counted and dropped instead of raising into the
middle of a day simulation.
"""

from __future__ import annotations

import asyncio
import threading

from repro.telemetry.events import TelemetryEvent, event_to_dict

__all__ = ["AsyncBridgeSink"]


class AsyncBridgeSink:
    """Thread-safe event sink forwarding onto an asyncio loop.

    Args:
        loop: The loop the callback runs on.
        callback: Called as ``callback(payload: dict)`` on the loop for
            every event; the payload is the event's
            :func:`~repro.telemetry.events.event_to_dict` form.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, callback) -> None:
        self.loop = loop
        self.callback = callback
        #: Events forwarded to the loop.
        self.forwarded = 0
        #: Events dropped because the sink (or its loop) was closed.
        self.dropped = 0
        self._closed = False
        self._lock = threading.Lock()

    def emit(self, event: TelemetryEvent) -> None:
        """Forward one event; never blocks, never raises into the caller."""
        payload = event_to_dict(event)
        with self._lock:
            if self._closed:
                self.dropped += 1
                return
            try:
                self.loop.call_soon_threadsafe(self.callback, payload)
            except RuntimeError:  # loop already closed
                self.dropped += 1
                self._closed = True
                return
            self.forwarded += 1

    def close(self) -> None:
        """Stop forwarding (idempotent); later emits are counted drops."""
        with self._lock:
            self._closed = True
