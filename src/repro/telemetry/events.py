"""Typed telemetry event records.

One frozen dataclass per thing the paper's evaluation reasons about:
MPPT tracking events (Figure 9 iteration dynamics, Table 7 error),
supply switches (ATS solar/utility transfers), load-tuning decisions
(Table 6 policies), DVFS reallocation, and battery/rack transitions.
Every record renders to a flat JSON-safe dict via :func:`event_to_dict`,
keyed by a stable ``type`` tag so JSONL traces can be filtered with a
one-line ``grep`` or re-hydrated with :func:`event_from_dict`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = [
    "TelemetryEvent",
    "TrackingEvent",
    "SupplySwitchEvent",
    "LoadTuningEvent",
    "DVFSAllocationEvent",
    "BatteryEvent",
    "RackDivisionEvent",
    "EnergyBalanceEvent",
    "FaultInjectedEvent",
    "DegradedModeEvent",
    "RecoveryEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class for all structured telemetry records.

    Attributes:
        minute: Simulation time of the event [minutes since midnight];
            -1.0 for events outside a simulated day.
    """

    minute: float

    #: Stable tag written to the ``type`` field of serialized records.
    type_tag = "event"


@dataclass(frozen=True)
class TrackingEvent(TelemetryEvent):
    """One MPPT tracking event (paper Figure 9).

    Attributes:
        mix: Workload mix name.
        policy: Load-tuning policy name.
        iterations: Combined (k, w) iterations the event took.
        power_w: Load power after the event [W].
        best_power_w: The event's MPP estimate [W].
        mpp_w: True model MPP at the event [W] (for tracking error).
        rail_voltage: Rail voltage after the event [V].
        load_saturated: Whether the chip ran out of DVFS/PCPG headroom.
        triggered_by: ``"periodic"`` or ``"supply-change"``.
    """

    mix: str
    policy: str
    iterations: int
    power_w: float
    best_power_w: float
    mpp_w: float
    rail_voltage: float
    load_saturated: bool
    triggered_by: str = "periodic"

    type_tag = "tracking"

    @property
    def tracking_error(self) -> float:
        """Relative error of the controller's MPP estimate vs the model."""
        if self.mpp_w <= 0.0:
            return 0.0
        return abs(self.best_power_w - self.mpp_w) / self.mpp_w


@dataclass(frozen=True)
class SupplySwitchEvent(TelemetryEvent):
    """An automatic-transfer-switch transition.

    Attributes:
        source: The newly selected supply (``"solar"`` or ``"utility"``).
        available_solar_w: Panel MPP power at the switch [W].
        load_floor_w: Load minimum sustainable draw at the switch [W].
    """

    source: str
    available_solar_w: float
    load_floor_w: float

    type_tag = "supply_switch"


@dataclass(frozen=True)
class LoadTuningEvent(TelemetryEvent):
    """Aggregate load-tuning activity within one tracking event.

    Attributes:
        policy: Tuner name (Table 6).
        raises: Single-level load increases performed.
        sheds: Single-level load decreases performed.
    """

    policy: str
    raises: int
    sheds: int

    type_tag = "load_tuning"


@dataclass(frozen=True)
class DVFSAllocationEvent(TelemetryEvent):
    """A global budget (re)allocation of per-core DVFS levels.

    Attributes:
        budget_w: Power budget the allocator worked against [W].
        allocated_w: Chip power after allocation [W].
    """

    budget_w: float
    allocated_w: float

    type_tag = "dvfs_allocation"


@dataclass(frozen=True)
class BatteryEvent(TelemetryEvent):
    """Battery-baseline day bookkeeping (harvest or depletion).

    Attributes:
        phase: ``"harvested"`` or ``"depleted"``.
        energy_wh: Stored energy at the event [Wh].
        derating: De-rating chain factor in effect.
    """

    phase: str
    energy_wh: float
    derating: float

    type_tag = "battery"


@dataclass(frozen=True)
class RackDivisionEvent(TelemetryEvent):
    """One rack-coordinator budget division across chips.

    Attributes:
        policy: Division policy (equal/proportional/tpr).
        budget_w: Rack budget divided [W].
        shares_w: Per-chip shares [W].
    """

    policy: str
    budget_w: float
    shares_w: tuple[float, ...]

    type_tag = "rack_division"


@dataclass(frozen=True)
class EnergyBalanceEvent(TelemetryEvent):
    """End-of-day energy conservation summary from the engine's ledger.

    Attributes:
        policy: Supply policy that drove the day.
        solar_wh: Energy the panel delivered to the load [Wh].
        utility_wh: Energy the grid delivered to the load [Wh].
        load_wh: Energy the load consumed [Wh].
        residual_wh: Conservation residual (should be ~0) [Wh].
    """

    policy: str
    solar_wh: float
    utility_wh: float
    load_wh: float
    residual_wh: float

    type_tag = "energy_balance"


@dataclass(frozen=True)
class FaultInjectedEvent(TelemetryEvent):
    """A scheduled fault window became active.

    Attributes:
        kind: Fault kind (see :mod:`repro.faults.schedule`).
        start_min: Window start [minutes since midnight].
        end_min: Window end [minutes]; ``inf`` for open-ended faults.
        param: The kind-specific numeric knob, or None.
    """

    kind: str
    start_min: float
    end_min: float
    param: float | None

    type_tag = "fault_injected"


@dataclass(frozen=True)
class DegradedModeEvent(TelemetryEvent):
    """The controller fell back to a conservative power budget.

    Emitted when sensor readings stay stale beyond the configured
    staleness cap and the controller can no longer trust its hold-last-good
    estimate (see DESIGN.md section 10).

    Attributes:
        reason: What forced the fallback (e.g. ``"sensor-stale"``).
        stale_min: Minutes since the last good sensor reading.
        budget_w: Conservative budget the load was shed under [W]
            (floored at the chip's minimum sustainable configuration).
        allocated_w: Chip power after shedding [W] (<= ``budget_w``).
    """

    reason: str
    stale_min: float
    budget_w: float
    allocated_w: float

    type_tag = "degraded_mode"


@dataclass(frozen=True)
class RecoveryEvent(TelemetryEvent):
    """A fault window cleared, or the controller left degraded mode.

    Attributes:
        source: ``"fault:<kind>"`` for a cleared schedule window,
            ``"controller"`` for a degraded-mode exit.
        stale_min: Minutes the condition lasted (window length, or time
            since the last good sensor reading).
    """

    source: str
    stale_min: float

    type_tag = "recovery"


#: type tag -> record class, for deserialization.
EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    cls.type_tag: cls
    for cls in (
        TrackingEvent,
        SupplySwitchEvent,
        LoadTuningEvent,
        DVFSAllocationEvent,
        BatteryEvent,
        RackDivisionEvent,
        EnergyBalanceEvent,
        FaultInjectedEvent,
        DegradedModeEvent,
        RecoveryEvent,
    )
}


def event_to_dict(event: TelemetryEvent) -> dict:
    """Serialize a record to a flat JSON-safe dict (lists for tuples)."""
    payload = {"type": event.type_tag}
    for key, value in asdict(event).items():
        payload[key] = list(value) if isinstance(value, tuple) else value
    return payload


def event_from_dict(payload: dict) -> TelemetryEvent:
    """Re-hydrate a record produced by :func:`event_to_dict`.

    Raises:
        KeyError: Unknown ``type`` tag.
    """
    tag = payload["type"]
    try:
        cls = EVENT_TYPES[tag]
    except KeyError:
        raise KeyError(
            f"unknown event type {tag!r}; known: {sorted(EVENT_TYPES)}"
        ) from None
    kwargs = {}
    for f in fields(cls):
        value = payload[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)
