"""Observability for the SolarCore reproduction.

Three coordinated facilities behind one hub (:class:`Telemetry`):

* a **metrics registry** — counters, gauges, and fixed-bucket histograms
  (tracking events, ``brentq`` solves, DVFS transitions, cache hit rates);
* a **structured event stream** — typed records (tracking events, supply
  switches, load tuning, battery phases) fanned out to pluggable sinks
  (ring buffer, JSONL file, stdlib logging);
* **span timing** — nested wall-clock measurement of the hot paths
  (``with telemetry.span("run_day", mix=...)``).

Disabled by default: the process-wide hub starts as :data:`NULL_TELEMETRY`
and instrumented code guards every site with ``if tel.enabled:``, so the
off state costs one attribute check.  Enable process-wide with
:func:`set_telemetry` or scoped with :func:`telemetry_session`::

    from repro import telemetry

    with telemetry.telemetry_session() as tel:
        tel.add_sink(telemetry.RingBufferSink())
        day = run_day("HM2", PHOENIX_AZ, 7)
        print(telemetry.render_summary(tel))
"""

from repro.telemetry.events import (
    BatteryEvent,
    DegradedModeEvent,
    DVFSAllocationEvent,
    EVENT_TYPES,
    EnergyBalanceEvent,
    FaultInjectedEvent,
    LoadTuningEvent,
    RecoveryEvent,
    RackDivisionEvent,
    SupplySwitchEvent,
    TelemetryEvent,
    TrackingEvent,
    event_from_dict,
    event_to_dict,
)
from repro.telemetry.hub import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.logconfig import configure_logging, parse_level
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profiling import (
    NULL_PROFILER,
    DayProfile,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
    render_profile,
)
from repro.telemetry.async_sink import AsyncBridgeSink
from repro.telemetry.sinks import (
    EventSink,
    JsonlSink,
    LoggingSink,
    RingBufferSink,
    read_jsonl_events,
)
from repro.telemetry.spans import SpanAggregate, SpanRecord, SpanTracker
from repro.telemetry.summary import format_duration, render_summary

__all__ = [
    # hub
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "set_telemetry",
    "telemetry_session",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # events
    "TelemetryEvent",
    "TrackingEvent",
    "SupplySwitchEvent",
    "LoadTuningEvent",
    "DVFSAllocationEvent",
    "BatteryEvent",
    "RackDivisionEvent",
    "EnergyBalanceEvent",
    "FaultInjectedEvent",
    "DegradedModeEvent",
    "RecoveryEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    # sinks
    "EventSink",
    "AsyncBridgeSink",
    "RingBufferSink",
    "JsonlSink",
    "LoggingSink",
    "read_jsonl_events",
    # spans
    "SpanTracker",
    "SpanRecord",
    "SpanAggregate",
    # profiling
    "PhaseProfiler",
    "PhaseStat",
    "DayProfile",
    "NullProfiler",
    "NULL_PROFILER",
    "render_profile",
    # logging / summary
    "configure_logging",
    "parse_level",
    "render_summary",
    "format_duration",
]
