"""Post-run rendering of a telemetry snapshot as ASCII tables.

The CLI prints this after ``simulate``/``campaign``/``experiment`` when
telemetry is on, in the same fixed-width style as the paper-figure tables
(:mod:`repro.harness.reporting`).
"""

from __future__ import annotations

from repro.telemetry.hub import NullTelemetry, Telemetry

__all__ = ["render_summary", "format_duration"]


def format_duration(seconds: float) -> str:
    """Human-scale rendering of a duration: us/ms/s as appropriate."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def render_summary(telemetry: Telemetry | NullTelemetry) -> str:
    """Render counters, gauges, histograms, and span timings as tables.

    Returns an empty string for a disabled hub or one with no data, so
    callers can ``print`` unconditionally.
    """
    if not telemetry.enabled:
        return ""
    # Imported here, not at module top: repro.harness pulls in the whole
    # experiment stack (which itself imports telemetry) — a top-level
    # import would be circular.
    from repro.harness.reporting import format_table

    snap = telemetry.snapshot()
    sections: list[str] = []

    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    if counters or gauges:
        rows = [[name, f"{value:g}"] for name, value in counters.items()]
        rows.extend([f"{name} (gauge)", f"{value:g}"] for name, value in gauges.items())
        sections.append(
            "telemetry counters\n" + format_table(["metric", "value"], rows)
        )

    histograms = {
        name: stats
        for name, stats in snap.get("histograms", {}).items()
        if not name.startswith("span.") and stats["count"] > 0
    }
    if histograms:
        rows = [
            [
                name,
                f"{stats['count']:g}",
                f"{stats['mean']:.2f}",
                f"{stats['p50']:.2f}",
                f"{stats['p95']:.2f}",
                f"{stats['max']:.2f}",
            ]
            for name, stats in histograms.items()
        ]
        sections.append(
            "telemetry distributions\n"
            + format_table(["histogram", "n", "mean", "p50", "p95", "max"], rows)
        )

    spans = snap.get("spans", {})
    if spans:
        rows = [
            [
                name,
                f"{stats['count']:g}",
                format_duration(stats["total_s"]),
                format_duration(stats["self_s"]),
                format_duration(stats["mean_s"]),
                format_duration(stats["max_s"]),
            ]
            for name, stats in spans.items()
        ]
        sections.append(
            "span timings\n"
            + format_table(["span", "n", "total", "self", "mean", "max"], rows)
        )

    return "\n\n".join(sections)
