"""The telemetry hub: one object tying registry, sinks, and spans together.

Process-wide but injectable: instrumented code fetches the current hub via
:func:`current` (or accepts one as a parameter) and guards every
instrumentation site with the hub's ``enabled`` attribute, so the
disabled-by-default :class:`NullTelemetry` costs exactly one attribute
check on the hot paths.  :func:`set_telemetry` swaps the process-wide hub
(the CLI does this when ``--trace``/``--telemetry`` is given);
:func:`telemetry_session` scopes a hub to a ``with`` block for tests and
library embedding.
"""

from __future__ import annotations

import contextlib

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import (
    DEFAULT_DURATION_BUCKETS_S,
    DEFAULT_ITERATION_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.profiling import NULL_PROFILER, PhaseProfiler
from repro.telemetry.sinks import EventSink
from repro.telemetry.spans import SpanTracker

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "set_telemetry",
    "telemetry_session",
]


class Telemetry:
    """An enabled telemetry hub.

    Args:
        sinks: Event sinks receiving every emitted record.
        registry: Metrics registry (fresh one by default).
        keep_span_records: Retain per-span records, not just aggregates.
        profiler: Hot-path phase profiler; the shared disabled
            :data:`~repro.telemetry.profiling.NULL_PROFILER` unless one
            is supplied, so enabling telemetry alone never pays the
            per-phase clock reads.
    """

    #: Hot paths check this single attribute before doing any work.
    enabled = True

    def __init__(
        self,
        sinks: list[EventSink] | None = None,
        registry: MetricsRegistry | None = None,
        keep_span_records: bool = False,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.sinks: list[EventSink] = list(sinks or [])
        self.registry = registry or MetricsRegistry()
        self.spans = SpanTracker(keep_records=keep_span_records)
        self.profile = profiler if profiler is not None else NULL_PROFILER

    # -- event stream ---------------------------------------------------
    def emit(self, event: TelemetryEvent) -> None:
        """Fan one structured event out to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    def add_sink(self, sink: EventSink) -> None:
        """Attach another sink."""
        self.sinks.append(sink)

    # -- metrics --------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name``."""
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.registry.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_ITERATION_BUCKETS,
    ) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.registry.histogram(name, buckets).observe(value)

    # -- spans ----------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing the enclosed region.

        The duration also lands in the ``span.<name>`` histogram, so span
        percentiles show up next to plain metrics.
        """
        return _RecordingSpan(self, name, attrs)

    # -- cross-process aggregation --------------------------------------
    def merge_snapshot(self, data: dict) -> None:
        """Fold another hub's :meth:`snapshot` into this hub.

        The parallel sweep engine runs each worker under a private hub
        and ships the snapshot back; the parent merges so its post-run
        summary covers worker-side work.  Counters add, gauges are
        last-write-wins, and span aggregates fold via
        :meth:`SpanTracker.merge`.  Histogram snapshots carry only
        summary statistics (no bucket counts), so they cannot be merged
        faithfully and are skipped.
        """
        for name, value in data.get("counters", {}).items():
            self.count(name, value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name, value)
        self.spans.merge(data.get("spans", {}))
        profile = data.get("profile")
        if profile and self.profile.enabled:
            self.profile.merge(profile)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()

    def snapshot(self) -> dict:
        """Metrics + span aggregates (+ profile when enabled) as one dict."""
        data = self.registry.snapshot()
        data["spans"] = self.spans.snapshot()
        if self.profile.enabled:
            data["profile"] = self.profile.snapshot()
        return data


class _RecordingSpan:
    """Couples a tracker span with the span-duration histogram."""

    __slots__ = ("_telemetry", "_span")

    def __init__(self, telemetry: Telemetry, name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self._span = telemetry.spans.span(name, **attrs)

    def __enter__(self):
        self._span.__enter__()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        tracker = self._telemetry.spans
        start = self._span._start
        self._span.__exit__(exc_type, exc, tb)
        duration = tracker.clock() - start
        self._telemetry.registry.histogram(
            f"span.{self._span.name}", DEFAULT_DURATION_BUCKETS_S
        ).observe(duration)


class _NullSpan:
    """Shared no-op context manager; one instance serves every call."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def add_child_time(self, seconds: float) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled hub: every operation is a no-op.

    ``enabled`` is False, so correctly guarded instrumentation never calls
    these methods at all; they exist so unguarded calls stay harmless, and
    :meth:`span` returns a shared singleton so even an unguarded
    ``with telemetry.span(...)`` allocates nothing.
    """

    enabled = False

    #: Profiling is off along with everything else on the null hub.
    profile = NULL_PROFILER

    def emit(self, event: TelemetryEvent) -> None:
        return None

    def add_sink(self, sink: EventSink) -> None:
        raise RuntimeError(
            "cannot attach sinks to NullTelemetry; install a Telemetry hub "
            "with repro.telemetry.set_telemetry(Telemetry(...))"
        )

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float, buckets=()) -> None:
        return None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def merge_snapshot(self, data: dict) -> None:
        return None

    def close(self) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


#: The process-wide disabled hub (shared; never mutated).
NULL_TELEMETRY = NullTelemetry()

#: The process-wide current hub.  Module attribute, not a module-level
#: ``from``-import target: hot paths read ``hub._current`` through
#: :func:`current` or the module attribute so swaps take effect everywhere.
_current: Telemetry | NullTelemetry = NULL_TELEMETRY


def current() -> Telemetry | NullTelemetry:
    """The process-wide telemetry hub (the null hub unless installed)."""
    return _current


def set_telemetry(telemetry: Telemetry | NullTelemetry | None) -> Telemetry | NullTelemetry:
    """Install ``telemetry`` as the process-wide hub.

    Args:
        telemetry: The new hub, or None to restore the null hub.

    Returns:
        The previously installed hub (so callers can restore it).
    """
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextlib.contextmanager
def telemetry_session(telemetry: Telemetry | None = None, **kwargs):
    """Scope a hub to a ``with`` block, restoring the previous one after.

    Args:
        telemetry: Hub to install; a fresh :class:`Telemetry` built from
            ``kwargs`` when omitted.

    Yields:
        The installed hub.
    """
    hub = telemetry or Telemetry(**kwargs)
    previous = set_telemetry(hub)
    try:
        yield hub
    finally:
        set_telemetry(previous)
        hub.close()
