"""Request coalescing: one in-flight compute per cache key, N waiters.

The service's scaling story is "millions of users asking for the same
thing": when N concurrent jobs name the same simulation cell, exactly one
compute may run — everyone else attaches to its future.  The unit of
coalescing is the *task cache key* (the same tuple the memory and disk
caches use, so "identical" here means identical down to config, seed,
faults, and solver), which also coalesces jobs that merely *overlap*.

Cancellation semantics: detaching a waiter never interrupts the compute.
A thread already running a day simulation cannot be preempted safely, and
killing it would waste the work — so an entry whose last waiter detached
is *orphaned*: it runs to completion, stores its result into the shared
cache (keeping cache and ledger consistent for the cancellation tests),
and only then disappears.  A failed compute removes its entry immediately
so a later identical request retries instead of being served the stale
exception forever.

Loop affinity: every method must be called from the event-loop thread.
The compute itself runs wherever the supplied factory puts it (the
service uses :class:`~repro.harness.async_bridge.AsyncRunner`'s thread
pool); only the bookkeeping is loop-bound.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field

__all__ = ["Coalescer", "InFlight"]

log = logging.getLogger(__name__)


@dataclass
class InFlight:
    """One in-flight compute and everyone waiting on it."""

    key: tuple
    future: asyncio.Future
    waiters: int = 1
    #: True once every waiter detached while the compute still ran.
    orphaned: bool = False
    #: The asyncio task driving the compute (held so it cannot be GC'd).
    runner_task: asyncio.Task | None = field(default=None, repr=False)


class Coalescer:
    """Exactly-once in-flight computes, keyed by task cache key."""

    def __init__(self) -> None:
        self._inflight: dict[tuple, InFlight] = {}
        #: Computes actually started (the service's "computes" truth —
        #: counted on the loop, so immune to thread races).
        self.computed = 0
        #: Requests that attached to an existing in-flight compute.
        self.coalesced = 0
        #: Entries whose every waiter detached before completion.
        self.orphans = 0
        #: Waiters that survived a dead leader by starting a new compute.
        self.reelected = 0
        #: Entries whose compute was truly cancelled on last-waiter exit.
        self.hard_cancels = 0

    def stats(self) -> dict[str, int]:
        """Loop-side counters for ``/stats`` and the load bench."""
        return {
            "computed": self.computed,
            "coalesced": self.coalesced,
            "orphans": self.orphans,
            "reelected": self.reelected,
            "hard_cancels": self.hard_cancels,
            "inflight": len(self._inflight),
        }

    def acquire(self, key: tuple, start) -> tuple[InFlight, bool]:
        """Attach to the in-flight compute for ``key``, starting one if needed.

        Args:
            key: The task's full cache key.
            start: Zero-argument callable returning an *awaitable* that
                performs the compute; invoked only when this key has no
                compute in flight.

        Returns:
            ``(entry, attached)`` — the (possibly shared)
            :class:`InFlight` entry, and whether this call *attached* to
            an existing compute (True) or started the one compute
            (False).  Await ``entry.future`` for the result; always pair
            with :meth:`release` (normally via :meth:`wait`).
        """
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self.coalesced += 1
            return entry, True
        loop = asyncio.get_running_loop()
        entry = InFlight(key=key, future=loop.create_future())
        self._inflight[key] = entry
        self.computed += 1
        entry.runner_task = loop.create_task(self._drive(entry, start))
        return entry, False

    async def _drive(self, entry: InFlight, start) -> None:
        """Run the compute and resolve the shared future."""
        try:
            result = await start()
        except BaseException as exc:  # noqa: BLE001 — delivered to waiters
            # Failed computes must not be sticky: drop the entry first so
            # a retry submitted from a waiter's error handler recomputes.
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                if isinstance(exc, asyncio.CancelledError):
                    entry.future.cancel()
                else:
                    entry.future.set_exception(exc)
            else:
                log.warning("orphaned compute for %r failed: %s", entry.key, exc)
        else:
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                entry.future.set_result(result)

    def release(self, entry: InFlight, *, hard: bool = False) -> None:
        """Detach one waiter (a cancelled or finished job).

        ``hard=True`` changes what happens when the *last* waiter leaves
        an unfinished compute: instead of orphaning it (run to
        completion, warm the cache), the driving task is cancelled — if
        the underlying work has not started yet (a queued executor
        future) it never runs.  Deadline enforcement and drain use this;
        plain job cancellation keeps the warm-the-cache default.
        """
        entry.waiters -= 1
        if entry.waiters <= 0 and not entry.future.done() and not entry.orphaned:
            if hard and entry.runner_task is not None:
                entry.orphaned = True
                self.hard_cancels += 1
                entry.future.add_done_callback(_consume_exception)
                entry.runner_task.cancel()
                log.info("compute for %r hard-cancelled (last waiter left)",
                         entry.key)
                return
            entry.orphaned = True
            self.orphans += 1
            # Swallow the eventual result so "everyone cancelled" does not
            # surface an 'exception was never retrieved' warning; the
            # compute itself keeps running and still warms the cache.
            entry.future.add_done_callback(_consume_exception)
            log.info(
                "compute for %r orphaned (all waiters cancelled); "
                "letting it finish to keep the cache warm", entry.key,
            )

    async def wait(self, entry: InFlight, start=None, *, hard: bool = False):
        """Await the shared result, detaching cleanly on cancellation.

        Leader-death safety: if the shared future is *cancelled* — the
        leader's driving task died without delivering a result — a
        follower must not be collateral damage.  When ``start`` is
        given, the follower re-elects: it re-acquires the key (becoming
        the new leader, or attaching to whichever racer won) and keeps
        waiting.  Without ``start`` the cancellation propagates.

        A waiter whose *own* task is cancelled still detaches cleanly:
        the shield keeps the shared future alive for everyone else.
        ``hard`` is forwarded to :meth:`release` (see there).
        """
        while True:
            try:
                result = await asyncio.shield(entry.future)
            except asyncio.CancelledError:
                self.release(entry, hard=hard)
                if entry.future.cancelled() and start is not None:
                    # The leader died, not us: start (or join) a new compute.
                    self.reelected += 1
                    log.info("re-electing compute for %r after leader death",
                             entry.key)
                    entry, _ = self.acquire(entry.key, start)
                    continue
                raise
            except BaseException:
                self.release(entry, hard=hard)
                raise
            else:
                self.release(entry, hard=hard)
                return result


def _consume_exception(future: asyncio.Future) -> None:
    if future.cancelled():
        return
    exc = future.exception()
    if exc is not None:
        log.warning("orphaned compute failed: %s: %s", type(exc).__name__, exc)
