"""A stdlib asyncio client for the SolarCore service.

Primarily the test harness's and load bench's view of the server — the
same hand-rolled HTTP/1.1 + RFC 6455 subset the server speaks, from the
client side (one request per connection, masked client frames).  It is
also a usable programmatic client: ``async with ServiceClient(...)``
costs nothing to enter, and every call opens its own short-lived
connection, so one client object can be shared across concurrent tasks.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os

from repro.service import wsproto

__all__ = ["ServiceClient", "ServiceError", "WSClient"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Attributes:
        status: The HTTP status code.
        body: The decoded JSON body (usually ``{"error": ...}``).
        headers: Lower-cased response headers (e.g. ``retry-after`` on a
            429 overload answer).
    """

    def __init__(self, status: int, body, headers: dict | None = None) -> None:
        message = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body
        self.headers = headers or {}

    @property
    def retry_after_s(self) -> float | None:
        """The parsed ``Retry-After`` header, if the server sent one."""
        value = self.headers.get("retry-after")
        try:
            return float(value) if value is not None else None
        except ValueError:
            return None


class ServiceClient:
    """Talks to one :class:`~repro.service.app.SolarCoreService`.

    Args:
        host / port: Where the service listens.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    # -- HTTP ------------------------------------------------------------
    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        """One HTTP request; returns the decoded JSON body.

        Raises:
            ServiceError: The service answered with a non-2xx status.
        """
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write((
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1") + payload)
            await writer.drain()
            status, headers, doc = await _read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
        if not 200 <= status < 300:
            raise ServiceError(status, doc, headers)
        return doc

    async def healthz(self) -> dict:
        return await self.request("GET", "/healthz")

    async def readyz(self) -> dict:
        """Readiness; raises :class:`ServiceError` (503) while draining."""
        return await self.request("GET", "/readyz")

    async def stats(self) -> dict:
        return await self.request("GET", "/stats")

    async def submit(self, spec: dict, *, wait: bool = False) -> dict:
        """Submit a job spec; with ``wait`` blocks until terminal."""
        path = "/jobs?wait=1" if wait else "/jobs"
        return await self.request("POST", path, spec)

    async def jobs(self) -> list[dict]:
        return (await self.request("GET", "/jobs"))["jobs"]

    async def job(self, job_id: str) -> dict:
        return await self.request("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: str) -> dict:
        return await self.request("POST", f"/jobs/{job_id}/cancel")

    async def wait_terminal(
        self, job_id: str, *, poll_s: float = 0.02
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        from repro.service.jobs import TERMINAL_STATES

        while True:
            doc = await self.job(job_id)
            if doc["state"] in TERMINAL_STATES:
                return doc
            await asyncio.sleep(poll_s)

    # -- WebSocket -------------------------------------------------------
    async def ws(self, path: str) -> WSClient:
        """Open a WebSocket to ``path`` (e.g. ``/ws/telemetry``)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write((
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        headers = await _read_headers(reader)
        if " 101 " not in status_line:
            writer.close()
            raise ServiceError(
                int(status_line.split(" ")[1]) if " " in status_line else 500,
                {"error": f"handshake refused: {status_line.strip()}"},
            )
        expected = wsproto.accept_key(key)
        got = headers.get("sec-websocket-accept")
        if got != expected:
            writer.close()
            raise ServiceError(
                502, {"error": f"bad Sec-WebSocket-Accept {got!r}"}
            )
        return WSClient(reader, writer)

    # -- lifecycle (stateless; the context manager is for symmetry) ------
    async def __aenter__(self) -> ServiceClient:
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        return None


class WSClient:
    """One established client-side WebSocket (frames masked, per §5.3)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.closed = False
        #: Close code from the server's close frame (e.g. 1001 on drain);
        #: None for a codeless close or a dropped connection.
        self.close_code: int | None = None
        self.close_reason: str = ""

    async def recv(self) -> dict | None:
        """The next JSON message; None once the server closed.

        Pings are answered transparently; binary frames are rejected
        (the service only ever sends JSON text).
        """
        while True:
            if self.closed:
                return None
            try:
                opcode, payload = await wsproto.read_frame(self.reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                self.closed = True
                return None
            if opcode == wsproto.OP_CLOSE:
                if len(payload) >= 2:
                    self.close_code = int.from_bytes(payload[:2], "big")
                    self.close_reason = payload[2:].decode("utf-8", "replace")
                await self.close()
                return None
            if opcode == wsproto.OP_PING:
                await self._send_frame(wsproto.OP_PONG, payload)
                continue
            if opcode == wsproto.OP_PONG:
                continue
            if opcode != wsproto.OP_TEXT:
                raise wsproto.WSProtocolError(
                    f"unexpected opcode 0x{opcode:x} from the service"
                )
            return json.loads(payload.decode("utf-8"))

    async def drain_until_closed(self, *, limit: int = 100000) -> list[dict]:
        """Every remaining message until the server closes the stream."""
        messages = []
        while len(messages) < limit:
            message = await self.recv()
            if message is None:
                return messages
            messages.append(message)
        return messages

    async def ping(self, payload: bytes = b"") -> None:
        await self._send_frame(wsproto.OP_PING, payload)

    async def _send_frame(self, opcode: int, payload: bytes) -> None:
        self.writer.write(wsproto.encode_frame(opcode, payload, masked=True))
        await self.writer.drain()

    async def close(self) -> None:
        """Send a close frame (best effort) and drop the connection."""
        if self.closed:
            return
        self.closed = True
        try:
            await self._send_frame(wsproto.OP_CLOSE, b"")
        except (ConnectionError, RuntimeError):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> WSClient:
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], dict]:
    status_line = (await reader.readline()).decode("latin-1")
    try:
        status = int(status_line.split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ServiceError(
            502, {"error": f"malformed status line {status_line!r}"}
        ) from None
    headers = await _read_headers(reader)
    length = headers.get("content-length")
    if length is not None:
        body = await reader.readexactly(int(length))
    else:
        body = await reader.read()
    try:
        doc = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        doc = {"error": body.decode("utf-8", "replace")}
    return status, headers, doc
