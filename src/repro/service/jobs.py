"""The service's job model: specs, a strict state machine, and a table.

Everything in this module is *synchronous and loop-free* on purpose: the
job lifecycle (``queued -> running -> done/failed/cancelled``) and its
notification guarantee are the most safety-critical part of the service,
so they live in plain objects that a Hypothesis state machine can drive
through arbitrary interleavings (``tests/service/test_property_lifecycle``)
without an event loop in the way.  The asyncio layer
(:mod:`repro.service.app`) owns all concurrency and calls into this table
from the event-loop thread only.

* :class:`JobSpec` — a validated, immutable description of what to
  simulate, parsed from the JSON a client POSTs.  A spec is a set of
  :class:`~repro.harness.parallel.SweepTask` cells plus a solver choice,
  so its cache identity is exactly the runner's cache identity — the
  property request coalescing keys on.
* :class:`Job` — one submitted job: id, spec, state, timing, outcome.
* :class:`JobTable` — creates jobs, enforces transitions, and fans every
  state change out to subscribers.  Subscribing to a job that is already
  terminal *immediately* delivers the terminal notification: a client can
  never miss the end of a job by racing its completion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.harness.parallel import SweepTask, grid_tasks
from repro.multicore.spec import ChipSpec

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransition",
    "JobSpecError",
    "JobSpec",
    "Job",
    "Subscription",
    "JobTable",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = frozenset({QUEUED, RUNNING, DONE, FAILED, CANCELLED})

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The complete transition relation.  Anything not listed here raises
#: :class:`InvalidTransition` — there is no "forgiving" path that would
#: let a terminal job silently resurrect or a queued job skip to done
#: without having run.
VALID_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED, FAILED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class InvalidTransition(RuntimeError):
    """An illegal job state transition was attempted (and not applied)."""


class JobSpecError(ValueError):
    """A submitted job document failed validation; the message says how."""


#: Solver modes a spec may request (mirrors ``SolarCoreConfig.solver``).
_SOLVERS = ("exact", "table")

#: Keys allowed in a single task document.
_TASK_KEYS = frozenset({
    "kind", "mix", "site", "location", "month", "policy",
    "budget_w", "derating", "seed", "faults",
})


def _parse_task(doc: dict, where: str) -> SweepTask:
    """One task document -> a validated :class:`SweepTask`."""
    if not isinstance(doc, dict):
        raise JobSpecError(f"{where}: task must be an object, got {type(doc).__name__}")
    unknown = set(doc) - _TASK_KEYS
    if unknown:
        raise JobSpecError(
            f"{where}: unknown task field(s) {sorted(unknown)}; "
            f"known: {sorted(_TASK_KEYS)}"
        )
    site = doc.get("site", doc.get("location"))
    if site is None:
        raise JobSpecError(f"{where}: a task requires 'site' (or 'location')")
    month = doc.get("month")
    if not isinstance(month, int) or isinstance(month, bool):
        raise JobSpecError(f"{where}: 'month' must be an integer, got {month!r}")
    kind = doc.get("kind", "mppt")
    try:
        return SweepTask(
            kind,
            doc.get("mix", "HM2"),
            site,
            month,
            policy=doc.get("policy", "MPPT&Opt"),
            budget_w=doc.get("budget_w"),
            derating=doc.get("derating"),
            seed=doc.get("seed"),
            faults=doc.get("faults"),
        )
    except (ValueError, KeyError) as exc:
        raise JobSpecError(f"{where}: {exc}") from exc


def _parse_campaign(doc: dict) -> list[SweepTask]:
    """A campaign document -> its per-seed task grid.

    Mirrors :func:`repro.core.campaign.run_campaign`'s shape: every
    (site, month) cell is simulated ``days`` times under seeds
    ``0 .. days-1``.
    """
    if not isinstance(doc, dict):
        raise JobSpecError("'campaign' must be an object")
    days = doc.get("days", 3)
    if not isinstance(days, int) or isinstance(days, bool) or days < 1:
        raise JobSpecError(f"campaign 'days' must be a positive integer, got {days!r}")
    sites = doc.get("sites", doc.get("locations"))
    months = doc.get("months")
    if not sites or not months:
        raise JobSpecError("campaign requires non-empty 'sites' and 'months'")
    try:
        return grid_tasks(
            (doc.get("mix", "HM2"),),
            tuple(sites),
            tuple(months),
            policies=(doc.get("policy", "MPPT&Opt"),),
            seeds=tuple(range(days)),
            faults=doc.get("faults"),
        )
    except (ValueError, KeyError) as exc:
        raise JobSpecError(f"campaign: {exc}") from exc


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable job description.

    Attributes:
        tasks: The day-simulation cells the job asks for (deduplicated,
            submission order preserved).
        solver: Electrical solver mode (``exact`` or ``table``).
        label: Free-form client label echoed in status responses.
        chip: Canonical :class:`~repro.multicore.spec.ChipSpec` string —
            the chip every task in the job simulates.  Part of the job's
            cache identity: two jobs coalesce only when they agree on it.
    """

    tasks: tuple[SweepTask, ...]
    solver: str = "exact"
    label: str = ""
    chip: str = "alpha8"

    @classmethod
    def from_dict(cls, doc: dict) -> JobSpec:
        """Parse the JSON document a client POSTs to ``/jobs``.

        Three shapes are accepted:

        * a single task — ``{"mix": "HM2", "site": "AZ", "month": 7}``;
        * a sweep — ``{"tasks": [{...}, {...}]}``;
        * a campaign — ``{"campaign": {"mix": ..., "sites": [...],
          "months": [...], "days": N}}`` (expands to one seeded task per
          cell per day, exactly like ``repro campaign``).

        Raises:
            JobSpecError: The document is malformed; the message names
                the offending field.
        """
        if not isinstance(doc, dict):
            raise JobSpecError(f"job spec must be an object, got {type(doc).__name__}")
        solver = doc.get("solver", "exact")
        if solver not in _SOLVERS:
            raise JobSpecError(
                f"'solver' must be one of {list(_SOLVERS)}, got {solver!r}"
            )
        label = doc.get("label", "")
        if not isinstance(label, str):
            raise JobSpecError(f"'label' must be a string, got {label!r}")
        chip = doc.get("chip", "alpha8")
        if not isinstance(chip, str):
            raise JobSpecError(f"'chip' must be a spec string, got {chip!r}")
        try:
            chip = ChipSpec.parse(chip).canonical()
        except ValueError as exc:
            raise JobSpecError(f"'chip': {exc}") from exc
        shapes = [key for key in ("tasks", "campaign") if key in doc]
        if len(shapes) > 1:
            raise JobSpecError("give either 'tasks' or 'campaign', not both")
        if "tasks" in doc:
            raw = doc["tasks"]
            if not isinstance(raw, list) or not raw:
                raise JobSpecError("'tasks' must be a non-empty list")
            tasks = [_parse_task(t, f"tasks[{i}]") for i, t in enumerate(raw)]
        elif "campaign" in doc:
            tasks = _parse_campaign(doc["campaign"])
        else:
            task_doc = {k: v for k, v in doc.items()
                        if k not in ("solver", "label", "chip")}
            tasks = [_parse_task(task_doc, "job")]
        return cls(
            tasks=tuple(dict.fromkeys(tasks)), solver=solver, label=label,
            chip=chip,
        )

    def describe(self) -> str:
        """Short human-readable identity for logs and status payloads."""
        chip = "" if self.chip == "alpha8" else f" chip={self.chip}"
        if len(self.tasks) == 1:
            return f"{self.tasks[0].describe()} solver={self.solver}{chip}"
        return f"{len(self.tasks)} task(s) solver={self.solver}{chip}"


@dataclass
class Job:
    """One submitted job and everything the API reports about it.

    State is mutated exclusively through :meth:`JobTable.transition`, so
    every change is validated and every subscriber notified.
    """

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    #: ``TypeName: message`` of the failure (``state == failed`` only).
    error: str | None = None
    #: Per-task scalar summaries (``state == done`` only).
    result: list[dict] | None = None
    #: How many of the job's tasks were answered without a fresh compute.
    cache_hits: int = 0
    #: How many of the job's tasks attached to another job's in-flight
    #: compute instead of starting their own.
    coalesced: int = 0

    def status(self) -> dict:
        """The JSON-safe status document served by the API."""
        doc = {
            "job_id": self.job_id,
            "state": self.state,
            "label": self.spec.label,
            "spec": self.spec.describe(),
            "tasks": len(self.spec.tasks),
            "solver": self.spec.solver,
            "chip": self.spec.chip,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result"] = self.result
        return doc


@dataclass
class Subscription:
    """A subscriber's private, ordered view of one job's state changes.

    Notifications are plain dicts (``{"job_id", "state", ...}``) appended
    by the table; the consumer drains :attr:`pending` at its own pace.
    The asyncio layer additionally sets :attr:`listener` to push each
    notification into a bounded WebSocket stream the moment it happens.
    """

    job_id: str
    pending: list[dict] = field(default_factory=list)
    #: Optional ``listener(notification)`` callable invoked on every push.
    listener: object = field(default=None, repr=False, compare=False)

    def drain(self) -> list[dict]:
        """All undelivered notifications, oldest first (and forget them)."""
        out, self.pending = self.pending, []
        return out


class JobTable:
    """All known jobs plus the state machine and notification fan-out.

    Not thread-safe by design: the service mutates it from the event-loop
    thread only, and the property suite drives it single-threaded.
    """

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._subs: dict[str, list[Subscription]] = {}
        self._ids = itertools.count(1)
        #: Transition counters by target state (service /stats section).
        self.transitions: dict[str, int] = dict.fromkeys(JOB_STATES, 0)

    # -- creation and lookup -------------------------------------------
    def create(self, spec: JobSpec) -> Job:
        """Register a new queued job."""
        job = Job(job_id=f"job-{next(self._ids):06d}", spec=spec)
        self._jobs[job.job_id] = job
        self.transitions[QUEUED] += 1
        return job

    def get(self, job_id: str) -> Job:
        """The job, or raise ``KeyError`` with the known ids."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every job, oldest first."""
        return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """How many jobs currently sit in each state."""
        counts = dict.fromkeys(sorted(JOB_STATES), 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    # -- the state machine ---------------------------------------------
    def transition(self, job: Job, new_state: str, *,
                   error: str | None = None,
                   result: list[dict] | None = None) -> None:
        """Move ``job`` to ``new_state`` and notify every subscriber.

        Raises:
            InvalidTransition: ``new_state`` is not reachable from the
                job's current state; the job is left untouched.
        """
        if new_state not in JOB_STATES:
            raise InvalidTransition(
                f"{job.job_id}: unknown state {new_state!r}"
            )
        if new_state not in VALID_TRANSITIONS[job.state]:
            raise InvalidTransition(
                f"{job.job_id}: cannot go {job.state} -> {new_state}"
            )
        job.state = new_state
        if error is not None:
            job.error = error
        if result is not None:
            job.result = result
        self.transitions[new_state] += 1
        self._notify(job)

    def cancel(self, job: Job) -> bool:
        """Cancel ``job`` if it is still live.

        Returns:
            True if this call cancelled the job, False if it was already
            terminal (cancelling a finished job is an API no-op, not an
            error — clients race completions all the time).
        """
        if job.state in TERMINAL_STATES:
            return False
        self.transition(job, CANCELLED)
        return True

    # -- subscriptions ---------------------------------------------------
    def subscribe(self, job_id: str) -> Subscription:
        """Follow a job's state changes from now on.

        The guarantee the property suite pins: if the job is *already*
        terminal, the terminal notification is delivered immediately —
        a subscriber can never block forever on a job that finished just
        before it subscribed.
        """
        job = self.get(job_id)
        sub = Subscription(job_id=job_id)
        self._subs.setdefault(job_id, []).append(sub)
        if job.state in TERMINAL_STATES:
            self._push(sub, self._notification(job))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Stop delivering to ``sub`` (idempotent)."""
        subs = self._subs.get(sub.job_id, [])
        if sub in subs:
            subs.remove(sub)

    def _notification(self, job: Job) -> dict:
        return {"type": "job", **job.status()}

    def _push(self, sub: Subscription, notification: dict) -> None:
        sub.pending.append(notification)
        if sub.listener is not None:
            sub.listener(notification)

    def _notify(self, job: Job) -> None:
        notification = self._notification(job)
        for sub in self._subs.get(job.job_id, []):
            self._push(sub, notification)
