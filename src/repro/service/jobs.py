"""The service's job model: specs, a strict state machine, and a table.

Everything in this module is *synchronous and loop-free* on purpose: the
job lifecycle (``queued -> running -> done/failed/cancelled``, plus the
durability states ``interrupted`` and ``deadline_exceeded``) and its
notification guarantee are the most safety-critical part of the service,
so they live in plain objects that a Hypothesis state machine can drive
through arbitrary interleavings (``tests/service/test_property_lifecycle``)
without an event loop in the way.  The asyncio layer
(:mod:`repro.service.app`) owns all concurrency and calls into this table
from the event-loop thread only.

* :class:`JobSpec` — a validated, immutable description of what to
  simulate, parsed from the JSON a client POSTs.  A spec is a set of
  :class:`~repro.harness.parallel.SweepTask` cells plus a solver choice,
  so its cache identity is exactly the runner's cache identity — the
  property request coalescing keys on.
* :class:`Job` — one submitted job: id, spec, state, timing, outcome.
* :class:`JobTable` — creates jobs, enforces transitions, and fans every
  state change out to subscribers.  Subscribing to a job that is already
  terminal *immediately* delivers the terminal notification: a client can
  never miss the end of a job by racing its completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.parallel import SweepTask, grid_tasks
from repro.multicore.spec import ChipSpec

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "INTERRUPTED",
    "DEADLINE_EXCEEDED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransition",
    "JobSpecError",
    "JobSpec",
    "Job",
    "Subscription",
    "JobTable",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: The job was running (or queued behind a drain) when its process went
#: away — a crash, a SIGKILL, or a drain timeout.  Non-terminal: journal
#: replay moves it to ``queued`` (retry) or ``failed`` per the server's
#: ``--recover`` policy.
INTERRUPTED = "interrupted"
#: The job's ``deadline_s`` elapsed before it produced a result.
DEADLINE_EXCEEDED = "deadline_exceeded"

JOB_STATES = frozenset({
    QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED,
    DEADLINE_EXCEEDED,
})

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, DEADLINE_EXCEEDED})

#: The complete transition relation.  Anything not listed here raises
#: :class:`InvalidTransition` — there is no "forgiving" path that would
#: let a terminal job silently resurrect or a queued job skip to done
#: without having run.  ``interrupted`` is the one state that may go
#: *back* to ``queued``: it exists precisely so a crashed or drained
#: server can re-enqueue the work it was holding.
VALID_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED, FAILED, DEADLINE_EXCEEDED}),
    RUNNING: frozenset({
        DONE, FAILED, CANCELLED, DEADLINE_EXCEEDED, INTERRUPTED,
    }),
    INTERRUPTED: frozenset({QUEUED, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
    DEADLINE_EXCEEDED: frozenset(),
}


class InvalidTransition(RuntimeError):
    """An illegal job state transition was attempted (and not applied)."""


class JobSpecError(ValueError):
    """A submitted job document failed validation; the message says how."""


#: Solver modes a spec may request (mirrors ``SolarCoreConfig.solver``).
_SOLVERS = ("exact", "table")

#: Keys allowed in a single task document.
_TASK_KEYS = frozenset({
    "kind", "mix", "site", "location", "month", "policy",
    "budget_w", "derating", "seed", "faults",
})


def _parse_task(doc: dict, where: str) -> SweepTask:
    """One task document -> a validated :class:`SweepTask`."""
    if not isinstance(doc, dict):
        raise JobSpecError(f"{where}: task must be an object, got {type(doc).__name__}")
    unknown = set(doc) - _TASK_KEYS
    if unknown:
        raise JobSpecError(
            f"{where}: unknown task field(s) {sorted(unknown)}; "
            f"known: {sorted(_TASK_KEYS)}"
        )
    site = doc.get("site", doc.get("location"))
    if site is None:
        raise JobSpecError(f"{where}: a task requires 'site' (or 'location')")
    month = doc.get("month")
    if not isinstance(month, int) or isinstance(month, bool):
        raise JobSpecError(f"{where}: 'month' must be an integer, got {month!r}")
    kind = doc.get("kind", "mppt")
    try:
        return SweepTask(
            kind,
            doc.get("mix", "HM2"),
            site,
            month,
            policy=doc.get("policy", "MPPT&Opt"),
            budget_w=doc.get("budget_w"),
            derating=doc.get("derating"),
            seed=doc.get("seed"),
            faults=doc.get("faults"),
        )
    except (ValueError, KeyError) as exc:
        raise JobSpecError(f"{where}: {exc}") from exc


def _parse_campaign(doc: dict) -> list[SweepTask]:
    """A campaign document -> its per-seed task grid.

    Mirrors :func:`repro.core.campaign.run_campaign`'s shape: every
    (site, month) cell is simulated ``days`` times under seeds
    ``0 .. days-1``.
    """
    if not isinstance(doc, dict):
        raise JobSpecError("'campaign' must be an object")
    days = doc.get("days", 3)
    if not isinstance(days, int) or isinstance(days, bool) or days < 1:
        raise JobSpecError(f"campaign 'days' must be a positive integer, got {days!r}")
    sites = doc.get("sites", doc.get("locations"))
    months = doc.get("months")
    if not sites or not months:
        raise JobSpecError("campaign requires non-empty 'sites' and 'months'")
    try:
        return grid_tasks(
            (doc.get("mix", "HM2"),),
            tuple(sites),
            tuple(months),
            policies=(doc.get("policy", "MPPT&Opt"),),
            seeds=tuple(range(days)),
            faults=doc.get("faults"),
        )
    except (ValueError, KeyError) as exc:
        raise JobSpecError(f"campaign: {exc}") from exc


def _task_doc(task: SweepTask) -> dict:
    """One :class:`SweepTask` -> the task document ``_parse_task`` accepts."""
    doc: dict = {
        "kind": task.kind,
        "mix": task.mix_name,
        "site": task.location_code,
        "month": task.month,
        "policy": task.policy,
    }
    for key in ("budget_w", "derating", "seed", "faults"):
        value = getattr(task, key)
        if value is not None:
            doc[key] = value
    return doc


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable job description.

    Attributes:
        tasks: The day-simulation cells the job asks for (deduplicated,
            submission order preserved).
        solver: Electrical solver mode (``exact`` or ``table``).
        label: Free-form client label echoed in status responses.
        chip: Canonical :class:`~repro.multicore.spec.ChipSpec` string —
            the chip every task in the job simulates.  Part of the job's
            cache identity: two jobs coalesce only when they agree on it.
        deadline_s: Optional wall-clock budget for the whole job.  When it
            elapses the service cancels the work and the job lands in the
            terminal ``deadline_exceeded`` state.
    """

    tasks: tuple[SweepTask, ...]
    solver: str = "exact"
    label: str = ""
    chip: str = "alpha8"
    deadline_s: float | None = None

    @classmethod
    def from_dict(cls, doc: dict) -> JobSpec:
        """Parse the JSON document a client POSTs to ``/jobs``.

        Three shapes are accepted:

        * a single task — ``{"mix": "HM2", "site": "AZ", "month": 7}``;
        * a sweep — ``{"tasks": [{...}, {...}]}``;
        * a campaign — ``{"campaign": {"mix": ..., "sites": [...],
          "months": [...], "days": N}}`` (expands to one seeded task per
          cell per day, exactly like ``repro campaign``).

        Raises:
            JobSpecError: The document is malformed; the message names
                the offending field.
        """
        if not isinstance(doc, dict):
            raise JobSpecError(f"job spec must be an object, got {type(doc).__name__}")
        solver = doc.get("solver", "exact")
        if solver not in _SOLVERS:
            raise JobSpecError(
                f"'solver' must be one of {list(_SOLVERS)}, got {solver!r}"
            )
        label = doc.get("label", "")
        if not isinstance(label, str):
            raise JobSpecError(f"'label' must be a string, got {label!r}")
        chip = doc.get("chip", "alpha8")
        if not isinstance(chip, str):
            raise JobSpecError(f"'chip' must be a spec string, got {chip!r}")
        try:
            chip = ChipSpec.parse(chip).canonical()
        except ValueError as exc:
            raise JobSpecError(f"'chip': {exc}") from exc
        deadline_s = doc.get("deadline_s")
        if deadline_s is not None:
            if (isinstance(deadline_s, bool)
                    or not isinstance(deadline_s, (int, float))
                    or deadline_s <= 0):
                raise JobSpecError(
                    f"'deadline_s' must be a positive number, got {deadline_s!r}"
                )
            deadline_s = float(deadline_s)
        shapes = [key for key in ("tasks", "campaign") if key in doc]
        if len(shapes) > 1:
            raise JobSpecError("give either 'tasks' or 'campaign', not both")
        if "tasks" in doc:
            raw = doc["tasks"]
            if not isinstance(raw, list) or not raw:
                raise JobSpecError("'tasks' must be a non-empty list")
            tasks = [_parse_task(t, f"tasks[{i}]") for i, t in enumerate(raw)]
        elif "campaign" in doc:
            tasks = _parse_campaign(doc["campaign"])
        else:
            task_doc = {k: v for k, v in doc.items()
                        if k not in ("solver", "label", "chip", "deadline_s")}
            tasks = [_parse_task(task_doc, "job")]
        return cls(
            tasks=tuple(dict.fromkeys(tasks)), solver=solver, label=label,
            chip=chip, deadline_s=deadline_s,
        )

    def to_dict(self) -> dict:
        """A JSON-safe document that :meth:`from_dict` round-trips exactly.

        This is the journal's wire format for specs: a replayed server
        re-parses it through the same validation path a client submission
        takes, so a journal can never smuggle in a spec the API would
        have rejected.
        """
        doc: dict = {
            "tasks": [_task_doc(task) for task in self.tasks],
            "solver": self.solver,
            "label": self.label,
            "chip": self.chip,
        }
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        return doc

    def describe(self) -> str:
        """Short human-readable identity for logs and status payloads."""
        chip = "" if self.chip == "alpha8" else f" chip={self.chip}"
        if len(self.tasks) == 1:
            return f"{self.tasks[0].describe()} solver={self.solver}{chip}"
        return f"{len(self.tasks)} task(s) solver={self.solver}{chip}"


@dataclass
class Job:
    """One submitted job and everything the API reports about it.

    State is mutated exclusively through :meth:`JobTable.transition`, so
    every change is validated and every subscriber notified.
    """

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    #: ``TypeName: message`` of the failure (``state == failed`` only).
    error: str | None = None
    #: Per-task scalar summaries (``state == done`` only).
    result: list[dict] | None = None
    #: How many of the job's tasks were answered without a fresh compute.
    cache_hits: int = 0
    #: How many of the job's tasks attached to another job's in-flight
    #: compute instead of starting their own.
    coalesced: int = 0

    def status(self) -> dict:
        """The JSON-safe status document served by the API."""
        doc = {
            "job_id": self.job_id,
            "state": self.state,
            "label": self.spec.label,
            "spec": self.spec.describe(),
            "tasks": len(self.spec.tasks),
            "solver": self.spec.solver,
            "chip": self.spec.chip,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
        }
        if self.spec.deadline_s is not None:
            doc["deadline_s"] = self.spec.deadline_s
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result"] = self.result
        return doc


@dataclass(eq=False)
class Subscription:
    """A subscriber's private, ordered view of one job's state changes.

    Notifications are plain dicts (``{"job_id", "state", ...}``) appended
    by the table; the consumer drains :attr:`pending` at its own pace.
    The asyncio layer additionally sets :attr:`listener` to push each
    notification into a bounded WebSocket stream the moment it happens.

    ``eq=False`` is load-bearing: two drained subscriptions to the same
    job are value-equal, and :meth:`JobTable.unsubscribe` must detach
    *this* subscriber, not the first look-alike in the list.
    """

    job_id: str
    pending: list[dict] = field(default_factory=list)
    #: Optional ``listener(notification)`` callable invoked on every push.
    listener: object = field(default=None, repr=False, compare=False)

    def drain(self) -> list[dict]:
        """All undelivered notifications, oldest first (and forget them)."""
        out, self.pending = self.pending, []
        return out


class JobTable:
    """All known jobs plus the state machine and notification fan-out.

    Not thread-safe by design: the service mutates it from the event-loop
    thread only, and the property suite drives it single-threaded.

    The optional ``observer`` is the journal hook: it is called
    ``observer("submit", job)`` the moment a job is created and
    ``observer("transition", job)`` after every state change is applied
    but *before* subscribers are notified — so a record reaches durable
    storage before any client can learn the state it describes.
    """

    def __init__(self, observer=None) -> None:
        self._jobs: dict[str, Job] = {}
        self._subs: dict[str, list[Subscription]] = {}
        self._next_id = 1
        #: Optional ``observer(event, job)`` hook (the journal).
        self.observer = observer
        #: Transition counters by target state (service /stats section).
        self.transitions: dict[str, int] = dict.fromkeys(JOB_STATES, 0)

    @property
    def next_id(self) -> int:
        """The integer suffix the next created job will use."""
        return self._next_id

    # -- creation and lookup -------------------------------------------
    def create(self, spec: JobSpec) -> Job:
        """Register a new queued job."""
        job = Job(job_id=f"job-{self._next_id:06d}", spec=spec)
        self._next_id += 1
        self._jobs[job.job_id] = job
        self.transitions[QUEUED] += 1
        if self.observer is not None:
            self.observer("submit", job)
        return job

    def restore(self, job: Job) -> None:
        """Re-insert a job reconstructed from the journal.

        No observer call (the journal already knows this job) and no
        subscriber notification (nobody can have subscribed yet — this
        runs before the server starts accepting connections).  The id
        counter is bumped past the restored id so new submissions never
        collide with replayed ones.
        """
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate restore of {job.job_id!r}")
        self._jobs[job.job_id] = job
        suffix = job.job_id.rsplit("-", 1)[-1]
        if suffix.isdigit():
            self._next_id = max(self._next_id, int(suffix) + 1)

    def get(self, job_id: str) -> Job:
        """The job, or raise ``KeyError`` with the known ids."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every job, oldest first."""
        return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """How many jobs currently sit in each state."""
        counts = dict.fromkeys(sorted(JOB_STATES), 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    # -- the state machine ---------------------------------------------
    def transition(self, job: Job, new_state: str, *,
                   error: str | None = None,
                   result: list[dict] | None = None) -> None:
        """Move ``job`` to ``new_state`` and notify every subscriber.

        Raises:
            InvalidTransition: ``new_state`` is not reachable from the
                job's current state; the job is left untouched.
        """
        if new_state not in JOB_STATES:
            raise InvalidTransition(
                f"{job.job_id}: unknown state {new_state!r}"
            )
        if new_state not in VALID_TRANSITIONS[job.state]:
            raise InvalidTransition(
                f"{job.job_id}: cannot go {job.state} -> {new_state}"
            )
        job.state = new_state
        if error is not None:
            job.error = error
        if result is not None:
            job.result = result
        self.transitions[new_state] += 1
        if self.observer is not None:
            self.observer("transition", job)
        self._notify(job)

    def cancel(self, job: Job) -> bool:
        """Cancel ``job`` if it is still live.

        Returns:
            True if this call cancelled the job, False if it was already
            terminal (cancelling a finished job is an API no-op, not an
            error — clients race completions all the time).
        """
        if job.state in TERMINAL_STATES:
            return False
        self.transition(job, CANCELLED)
        return True

    # -- subscriptions ---------------------------------------------------
    def subscribe(self, job_id: str) -> Subscription:
        """Follow a job's state changes from now on.

        The guarantee the property suite pins: if the job is *already*
        terminal, the terminal notification is delivered immediately —
        a subscriber can never block forever on a job that finished just
        before it subscribed.
        """
        job = self.get(job_id)
        sub = Subscription(job_id=job_id)
        self._subs.setdefault(job_id, []).append(sub)
        if job.state in TERMINAL_STATES:
            self._push(sub, self._notification(job))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Stop delivering to ``sub`` (idempotent)."""
        subs = self._subs.get(sub.job_id, [])
        if sub in subs:
            subs.remove(sub)

    def _notification(self, job: Job) -> dict:
        return {"type": "job", **job.status()}

    def _push(self, sub: Subscription, notification: dict) -> None:
        sub.pending.append(notification)
        if sub.listener is not None:
            sub.listener(notification)

    def _notify(self, job: Job) -> None:
        notification = self._notification(job)
        for sub in self._subs.get(job.job_id, []):
            self._push(sub, notification)
