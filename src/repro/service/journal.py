"""Crash-safe job journal: append-only JSONL + atomic snapshot compaction.

The durability contract the service builds on:

* **Write-ahead acknowledgment.**  Every submission and every state
  transition is appended (and, by default, ``fsync``\\ ed) *before* the
  HTTP response that reports it leaves the process.  If a client holds a
  202 for a job, that job survives ``kill -9``.
* **Append-only.**  The journal file (``journal.jsonl``) only ever grows
  between compactions; a crash can at worst leave one torn line at the
  tail.
* **Loud, bounded truncation.**  On replay, a corrupt record *at the
  tail* is truncated (with a warning) — that is the torn-write case and
  losing an un-acknowledged suffix is correct.  Corruption *before* valid
  records is also reported, but replay keeps every record it can parse.
* **Atomic compaction.**  A snapshot (``snapshot.json``) is written to a
  temp file, fsynced, and ``os.replace``\\ d into place before the journal
  is truncated, so every instant in time has a complete recovery set:
  either (old snapshot + full journal) or (new snapshot + empty journal).

Record shapes (one JSON object per line)::

    {"op": "submit", "job_id": "job-000001", "spec": {...}}
    {"op": "state", "job_id": "job-000001", "state": "running", ...}

The snapshot is ``{"format": 1, "next_id": N, "jobs": [job docs]}``.

Replay (:meth:`JobJournal.replay`) rebuilds :class:`~repro.service.jobs.Job`
objects by re-parsing each spec through :meth:`JobSpec.from_dict` — the
same validation path a live submission takes.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.jobs import JOB_STATES, Job, JobSpec, JobSpecError

__all__ = ["JournalCorruption", "ReplayReport", "JobJournal"]

#: Bumped when a record/snapshot shape change breaks old readers.
JOURNAL_FORMAT = 1


class JournalCorruption(UserWarning):
    """A journal or snapshot record could not be used; the message says why."""


@dataclass
class ReplayReport:
    """Everything :meth:`JobJournal.replay` reconstructed and discarded."""

    #: Reconstructed jobs, submission order preserved.
    jobs: list[Job] = field(default_factory=list)
    #: The id counter floor (1 + highest replayed id suffix).
    next_id: int = 1
    #: How many journal records were applied.
    records: int = 0
    #: How many unusable lines were dropped (torn tail, bad JSON, bad spec).
    corrupt_lines: int = 0
    #: Bytes trimmed off the journal tail (0 when the tail was clean).
    truncated_bytes: int = 0
    #: True when ``snapshot.json`` existed but could not be parsed.
    corrupt_snapshot: bool = False


class JobJournal:
    """The service's durable job log, bound to one directory.

    Args:
        root: Directory holding ``journal.jsonl`` + ``snapshot.json``
            (created if missing).
        fsync: Force every append to stable storage before returning.
            Leave on in production — it *is* the acknowledgment
            guarantee; tests may turn it off for speed.
        compact_every: Appends between automatic compactions (the service
            calls :meth:`maybe_compact` after each append).
    """

    def __init__(self, root: str | os.PathLike, *, fsync: bool = True,
                 compact_every: int = 1024) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self.fsync = fsync
        self.compact_every = max(1, int(compact_every))
        self.appends = 0
        self.compactions = 0
        self._since_compact = 0
        self._fh = None

    # -- appending -------------------------------------------------------
    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        """Write one record and (by default) force it to stable storage."""
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.appends += 1
        self._since_compact += 1

    def record_submit(self, job: Job) -> None:
        self.append({
            "op": "submit", "job_id": job.job_id,
            "spec": job.spec.to_dict(),
        })

    def record_state(self, job: Job) -> None:
        record = {"op": "state", "job_id": job.job_id, "state": job.state}
        if job.error is not None:
            record["error"] = job.error
        if job.cache_hits:
            record["cache_hits"] = job.cache_hits
        if job.coalesced:
            record["coalesced"] = job.coalesced
        # Results are served from the disk cache after recovery; persisting
        # per-task summaries here would bloat the journal for no new truth.
        self.append(record)

    def observer(self, event: str, job: Job) -> None:
        """``JobTable`` observer adapter: journal every submit/transition."""
        if event == "submit":
            self.record_submit(job)
        else:
            self.record_state(job)

    # -- replay ----------------------------------------------------------
    def replay(self) -> ReplayReport:
        """Rebuild job state from snapshot + journal, trimming a torn tail."""
        report = ReplayReport()
        jobs: dict[str, Job] = {}
        self._load_snapshot(jobs, report)
        self._replay_journal(jobs, report)
        report.jobs = list(jobs.values())
        for job in report.jobs:
            suffix = job.job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                report.next_id = max(report.next_id, int(suffix) + 1)
        return report

    def _load_snapshot(self, jobs: dict[str, Job], report: ReplayReport) -> None:
        if not self.snapshot_path.exists():
            return
        try:
            doc = json.loads(self.snapshot_path.read_text(encoding="utf-8"))
            if doc.get("format") != JOURNAL_FORMAT:
                raise ValueError(f"unknown snapshot format {doc.get('format')!r}")
            for job_doc in doc["jobs"]:
                job = self._job_from_doc(job_doc)
                jobs[job.job_id] = job
            report.next_id = max(report.next_id, int(doc.get("next_id", 1)))
        except (ValueError, KeyError, TypeError, OSError, JobSpecError) as exc:
            report.corrupt_snapshot = True
            jobs.clear()
            warnings.warn(
                f"{self.snapshot_path}: unusable snapshot ({exc}); "
                "recovering from the journal alone",
                JournalCorruption, stacklevel=3,
            )

    def _replay_journal(self, jobs: dict[str, Job], report: ReplayReport) -> None:
        if not self.journal_path.exists():
            return
        good_end = 0
        with open(self.journal_path, "rb") as fh:
            offset = 0
            for raw in fh:
                offset += len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    good_end = offset
                    continue
                try:
                    record = json.loads(line)
                    self._apply(record, jobs)
                except (ValueError, KeyError, TypeError, JobSpecError) as exc:
                    report.corrupt_lines += 1
                    warnings.warn(
                        f"{self.journal_path}: dropping unusable record "
                        f"at byte {offset - len(raw)} ({exc}): {line[:120]!r}",
                        JournalCorruption, stacklevel=3,
                    )
                else:
                    report.records += 1
                    good_end = offset
        size = self.journal_path.stat().st_size
        if good_end < size:
            # Torn tail from a crash mid-append: trim it so the next
            # append starts on a clean line boundary.
            report.truncated_bytes = size - good_end
            warnings.warn(
                f"{self.journal_path}: truncating {report.truncated_bytes} "
                f"byte(s) of torn tail after byte {good_end}",
                JournalCorruption, stacklevel=3,
            )
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(good_end)

    def _apply(self, record: dict, jobs: dict[str, Job]) -> None:
        op = record["op"]
        job_id = record["job_id"]
        if op == "submit":
            spec = JobSpec.from_dict(record["spec"])
            jobs[job_id] = Job(job_id=job_id, spec=spec)
        elif op == "state":
            job = jobs[job_id]  # KeyError -> counted as corrupt
            state = record["state"]
            if state not in JOB_STATES:
                raise ValueError(f"unknown state {state!r}")
            job.state = state
            job.error = record.get("error", job.error)
            job.cache_hits = record.get("cache_hits", job.cache_hits)
            job.coalesced = record.get("coalesced", job.coalesced)
        else:
            raise ValueError(f"unknown op {op!r}")

    def _job_from_doc(self, doc: dict) -> Job:
        state = doc["state"]
        if state not in JOB_STATES:
            raise ValueError(f"unknown state {state!r}")
        return Job(
            job_id=doc["job_id"],
            spec=JobSpec.from_dict(doc["spec"]),
            state=state,
            error=doc.get("error"),
            cache_hits=doc.get("cache_hits", 0),
            coalesced=doc.get("coalesced", 0),
        )

    # -- compaction ------------------------------------------------------
    def compact(self, jobs: list[Job], next_id: int) -> None:
        """Fold the journal into an atomic snapshot and start a fresh log.

        Write order is the whole safety argument: the new snapshot is
        durable *before* the journal is truncated, so a crash at any
        point leaves either (old snapshot + full journal) or (new
        snapshot + empty journal) — both complete.
        """
        doc = {
            "format": JOURNAL_FORMAT,
            "next_id": int(next_id),
            "jobs": [
                {
                    "job_id": job.job_id,
                    "spec": job.spec.to_dict(),
                    "state": job.state,
                    **({"error": job.error} if job.error is not None else {}),
                    **({"cache_hits": job.cache_hits} if job.cache_hits else {}),
                    **({"coalesced": job.coalesced} if job.coalesced else {}),
                }
                for job in jobs
            ],
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix="snapshot-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
            self._fh = None
        with open(self.journal_path, "w", encoding="utf-8"):
            pass
        self.compactions += 1
        self._since_compact = 0

    def maybe_compact(self, jobs: list[Job], next_id: int) -> bool:
        """Compact when ``compact_every`` appends have accumulated."""
        if self._since_compact < self.compact_every:
            return False
        self.compact(jobs, next_id)
        return True

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "appends": self.appends,
            "compactions": self.compactions,
            "journal_bytes": (
                self.journal_path.stat().st_size
                if self.journal_path.exists() else 0
            ),
        }

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None
