"""SolarCore as a service: async job API with live telemetry streaming.

The package turns the batch harness into a long-running server without
changing the simulation stack:

* :mod:`repro.service.jobs` — job specs (the :class:`SweepTask` config
  surface as JSON) and the strict queued → running → terminal state
  machine (plus the durability states ``interrupted`` /
  ``deadline_exceeded``), pure-sync so property tests can drive it;
* :mod:`repro.service.journal` — the crash-safe append-only job journal
  with atomic snapshot compaction (``--journal-dir``);
* :mod:`repro.service.coalesce` — exactly-one in-flight compute per task
  cache key, with orphaned computes running to completion and follower
  re-election when a leader dies;
* :mod:`repro.service.stream` — bounded drop-oldest fan-out to
  subscribed clients;
* :mod:`repro.service.wsproto` — the hand-rolled RFC 6455 subset
  (the image ships no websocket library);
* :mod:`repro.service.app` — the HTTP + WebSocket server tying the
  above onto :class:`~repro.harness.async_bridge.AsyncRunner`;
* :mod:`repro.service.client` — the matching asyncio client used by the
  tests, the load bench, and ``repro serve`` consumers.

Start one with ``repro serve`` or programmatically::

    async with SolarCoreService(cache_dir="cache") as service:
        client = ServiceClient(service.host, service.port)
        job = await client.submit({"mix": "HM2", "site": "PHX", "month": 6},
                                  wait=True)
"""

from repro.service.app import (
    ServiceDraining,
    ServiceOverloaded,
    SolarCoreService,
    summarize_result,
)
from repro.service.client import ServiceClient, ServiceError, WSClient
from repro.service.coalesce import Coalescer, InFlight
from repro.service.jobs import (
    CANCELLED,
    DEADLINE_EXCEEDED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
    JobSpecError,
    JobTable,
    Subscription,
)
from repro.service.journal import JobJournal, JournalCorruption, ReplayReport
from repro.service.stream import ClientStream, StreamHub

__all__ = [
    "SolarCoreService",
    "ServiceOverloaded",
    "ServiceDraining",
    "summarize_result",
    "ServiceClient",
    "ServiceError",
    "WSClient",
    "Coalescer",
    "InFlight",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "INTERRUPTED",
    "DEADLINE_EXCEEDED",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransition",
    "Job",
    "JobSpec",
    "JobSpecError",
    "JobTable",
    "Subscription",
    "JobJournal",
    "JournalCorruption",
    "ReplayReport",
    "ClientStream",
    "StreamHub",
]
