"""Live streaming fan-out with per-client bounded queues.

The producer side (telemetry events arriving from compute threads via
:class:`~repro.telemetry.async_sink.AsyncBridgeSink`, job state changes,
periodic metric snapshots) must **never block and never grow without
bound**, no matter how slow or stuck a subscribed WebSocket client is.
The contract, pinned by ``tests/service/test_backpressure.py``:

* :meth:`StreamHub.publish` is synchronous, loop-bound, and O(clients);
  it never awaits.
* Each client owns a bounded queue.  When it is full the *oldest* queued
  message is dropped to admit the new one (live telemetry is only useful
  live — a stalled client that wakes up wants the recent past, not a
  backlog of ancient events) and the drop is counted, per client and
  hub-wide, so operators can see slow consumers instead of guessing.
"""

from __future__ import annotations

import asyncio
from collections import deque

__all__ = ["ClientStream", "StreamHub"]


class ClientStream:
    """One subscriber's bounded message queue (drop-oldest on overflow)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._messages: deque[dict] = deque()
        self._wakeup = asyncio.Event()
        #: Messages this client lost to backpressure.
        self.drops = 0
        #: Messages ever offered to this client.
        self.offered = 0
        self.closed = False
        #: WebSocket close code the server should send (None = default 1000).
        self.close_code: int | None = None
        #: Close reason bytes accompanying :attr:`close_code`.
        self.close_reason: bytes = b""

    def push(self, message: dict) -> None:
        """Enqueue without blocking, evicting the oldest on overflow."""
        self.offered += 1
        if len(self._messages) >= self.capacity:
            self._messages.popleft()
            self.drops += 1
        self._messages.append(message)
        self._wakeup.set()

    def close(self, code: int | None = None, reason: bytes = b"") -> None:
        """Wake any pending :meth:`get` with a ``None`` end-of-stream.

        ``code``/``reason`` are recorded for the WebSocket layer to put
        on the wire — a draining server closes with 1001 (going away) so
        well-behaved clients reconnect elsewhere instead of retrying.
        """
        if code is not None and self.close_code is None:
            self.close_code = code
            self.close_reason = reason
        self.closed = True
        self._wakeup.set()

    async def get(self) -> dict | None:
        """The next message, or None once the stream is closed and drained."""
        while True:
            if self._messages:
                return self._messages.popleft()
            if self.closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def __len__(self) -> int:
        return len(self._messages)


class StreamHub:
    """Fan-out of live messages to every subscribed client.

    Args:
        client_queue_size: Per-client bounded-queue capacity.
    """

    def __init__(self, client_queue_size: int = 256) -> None:
        if client_queue_size < 1:
            raise ValueError(
                f"client_queue_size must be >= 1, got {client_queue_size}"
            )
        self.client_queue_size = client_queue_size
        self._clients: set[ClientStream] = set()
        #: Messages ever published through the hub.
        self.published = 0
        #: Sum of every client's backpressure drops (including departed
        #: clients — the hub-wide number /stats reports).
        self.drops_total = 0

    def subscribe(self) -> ClientStream:
        """A fresh bounded stream receiving everything published from now on."""
        client = ClientStream(self.client_queue_size)
        self._clients.add(client)
        return client

    def unsubscribe(self, client: ClientStream, code: int | None = None,
                    reason: bytes = b"") -> None:
        """Detach and close ``client`` (idempotent); keeps its drop count."""
        if client in self._clients:
            self._clients.remove(client)
            self.drops_total += client.drops
        client.close(code, reason)

    def publish(self, message: dict) -> None:
        """Offer ``message`` to every client.  Never blocks, never awaits."""
        self.published += 1
        for client in self._clients:
            client.push(message)

    def stats(self) -> dict[str, int]:
        """Hub-wide counters for ``/stats``."""
        live_drops = sum(client.drops for client in self._clients)
        return {
            "clients": len(self._clients),
            "published": self.published,
            "drops": self.drops_total + live_drops,
        }

    def close(self, code: int | None = None, reason: bytes = b"") -> None:
        """Close every client stream (server shutdown or drain)."""
        for client in list(self._clients):
            self.unsubscribe(client, code, reason)
