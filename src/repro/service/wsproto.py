"""A minimal RFC 6455 WebSocket codec over asyncio streams.

The container image ships neither ``websockets`` nor ``aiohttp``, so the
service speaks the protocol directly.  Only what the service needs is
implemented — and that subset is implemented *correctly*:

* the opening handshake (``Sec-WebSocket-Accept`` per RFC 6455 §4.2.2);
* single-frame text/binary messages plus ping/pong/close control frames;
* client-to-server masking (mandatory per §5.3) and unmasked
  server-to-client frames;
* 7-bit, 16-bit, and 64-bit payload lengths, bounded by ``max_size``.

Fragmented messages (FIN=0 continuation chains) are rejected with
:class:`WSProtocolError` rather than mis-assembled: neither our server
nor our client ever fragments, and silently concatenating frames we never
test is worse than a loud close.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

__all__ = [
    "GUID",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WSProtocolError",
    "accept_key",
    "encode_frame",
    "read_frame",
]

#: The protocol's fixed handshake GUID (RFC 6455 §1.3).
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = frozenset({OP_CLOSE, OP_PING, OP_PONG})
_DATA_OPS = frozenset({OP_TEXT, OP_BINARY})


class WSProtocolError(RuntimeError):
    """The peer violated the (implemented subset of the) protocol."""


def accept_key(sec_websocket_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value answering a handshake key."""
    digest = hashlib.sha1((sec_websocket_key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _mask(payload: bytes, key: bytes) -> bytes:
    """XOR-mask ``payload`` with the 4-byte ``key`` (involutive)."""
    if not payload:
        return payload
    # One big-int XOR instead of a per-byte loop: frames can carry whole
    # telemetry snapshots and this runs on the event loop.
    repeated = (key * (len(payload) // 4 + 1))[: len(payload)]
    value = int.from_bytes(payload, "little") ^ int.from_bytes(repeated, "little")
    return value.to_bytes(len(payload), "little")


def encode_frame(opcode: int, payload: bytes, *, masked: bool = False) -> bytes:
    """One complete FIN=1 frame.

    Args:
        opcode: ``OP_TEXT`` / ``OP_BINARY`` / ``OP_CLOSE`` / ``OP_PING``
            / ``OP_PONG``.
        payload: Frame payload (already UTF-8 encoded for text).
        masked: Mask the payload (clients MUST, servers MUST NOT).
    """
    if opcode in _CONTROL_OPS and len(payload) > 125:
        raise WSProtocolError(
            f"control frame payload must be <= 125 bytes, got {len(payload)}"
        )
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if masked else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if masked:
        key = os.urandom(4)
        return bytes(head) + key + _mask(payload, key)
    return bytes(head) + payload


async def read_frame(
    reader: asyncio.StreamReader, *, max_size: int = 1 << 20
) -> tuple[int, bytes]:
    """Read one complete frame.

    Returns:
        ``(opcode, payload)`` with the payload unmasked.

    Raises:
        WSProtocolError: Fragmented/reserved-bit/oversized frame.
        asyncio.IncompleteReadError: The peer hung up mid-frame.
    """
    b1, b2 = await reader.readexactly(2)
    fin, rsv, opcode = b1 & 0x80, b1 & 0x70, b1 & 0x0F
    if rsv:
        raise WSProtocolError(f"reserved bits set (0x{rsv:02x}); no extensions negotiated")
    if opcode == OP_CONT or not fin:
        raise WSProtocolError("fragmented messages are not supported")
    if opcode not in _DATA_OPS and opcode not in _CONTROL_OPS:
        raise WSProtocolError(f"unknown opcode 0x{opcode:x}")
    masked = bool(b2 & 0x80)
    length = b2 & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > max_size:
        raise WSProtocolError(f"frame of {length} bytes exceeds max_size={max_size}")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = _mask(payload, key)
    return opcode, payload
