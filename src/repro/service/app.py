"""SolarCore-as-a-service: the asyncio HTTP + WebSocket application.

One long-running process serves many concurrent clients on top of the
existing harness — nothing about the simulation stack changed to make
this possible; the service is strictly a concurrency shell:

* **jobs** are submitted as JSON (the same config surface as
  :class:`~repro.harness.parallel.SweepTask`, including ``solver`` and
  ``faults``), tracked by the strict state machine of
  :mod:`repro.service.jobs`, and executed on the shared
  :class:`~repro.harness.runner.SimulationRunner` through the
  :class:`~repro.harness.async_bridge.AsyncRunner` thread bridge;
* **identical work coalesces**: each task's full cache key is checked
  memory-tier first (cache-hit-first serving), and misses go through the
  :class:`~repro.service.coalesce.Coalescer`, so N concurrent requests
  for the same cell run exactly one compute with N fan-out responses;
* **telemetry streams live**: the PR 1 event stream (bridged off the
  compute threads by
  :class:`~repro.telemetry.async_sink.AsyncBridgeSink`) plus periodic
  metric/profiler snapshots fan out to WebSocket subscribers through
  bounded drop-oldest queues — a slow client loses old messages, never
  stalls the service;
* **terminal states persist**: every finished/failed/cancelled job can
  record a PR 5 run-ledger manifest, so "what did the service run and
  from which cache tier" outlives the process;
* **acknowledged jobs survive ``kill -9``**: with ``journal_dir`` set,
  every submission and state change is fsynced to an append-only journal
  (:mod:`repro.service.journal`) *before* the response that reports it,
  and a restarted server replays the journal — queued jobs re-enqueue,
  jobs caught running are marked ``interrupted`` and retried (or failed,
  per the ``recover`` policy);
* **overload is a first-class answer**: a bounded queue (``max_queue``)
  turns excess submissions into ``429`` + ``Retry-After`` with a
  machine-readable envelope instead of unbounded memory growth, and a
  per-job ``deadline_s`` lands over-budget work in the terminal
  ``deadline_exceeded`` state with its compute truly cancelled;
* **shutdown is graceful**: :meth:`SolarCoreService.drain` (wired to
  SIGTERM/SIGINT by ``repro serve``) stops admission, fails readiness
  (``/readyz``) while liveness (``/healthz``) stays green, waits up to
  ``drain_timeout_s`` for in-flight jobs, journals the stragglers as
  ``interrupted``, and closes WebSocket clients with a 1001 going-away
  frame.

HTTP API (JSON in/out)::

    GET  /healthz                liveness (always "ok" while the loop runs)
    GET  /readyz                 readiness (503 once draining)
    GET  /stats                  jobs, coalescing, cache, stream counters
    GET  /jobs                   every job's status
    POST /jobs                   submit a job spec; ?wait=1 blocks to terminal
                                 (429 when the queue is full, 503 draining)
    GET  /jobs/<id>              one job's status
    POST /jobs/<id>/cancel       cancel (no-op if already terminal)
    GET  /ws/jobs/<id>           WebSocket: state changes until terminal
    GET  /ws/telemetry           WebSocket: live events + snapshots
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import struct
import time
import urllib.parse
from collections import deque
from dataclasses import fields as dataclass_fields

from repro.core.config import SolarCoreConfig
from repro.harness.async_bridge import AsyncRunner
from repro.harness.runner import SimulationRunner
from repro.service import wsproto
from repro.service.coalesce import Coalescer
from repro.service.jobs import (
    CANCELLED,
    DEADLINE_EXCEEDED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobSpec,
    JobSpecError,
    JobTable,
)
from repro.service.journal import JobJournal
from repro.service.stream import ClientStream, StreamHub
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.async_sink import AsyncBridgeSink
from repro.telemetry.hub import Telemetry

__all__ = [
    "SolarCoreService",
    "ServiceOverloaded",
    "ServiceDraining",
    "summarize_result",
]

log = logging.getLogger(__name__)

#: Result attributes surfaced in job summaries (fields *or* properties;
#: whichever of these a result type has is included).
_SUMMARY_ATTRS = (
    "ptp",
    "energy_utilization",
    "effective_duration_fraction",
    "mean_tracking_error",
    "solar_used_wh",
    "solar_available_wh",
    "utility_wh",
    "harvested_wh",
    "runtime_minutes",
    "tracking_events",
    "dvfs_transitions",
)


def summarize_result(task, result) -> dict:
    """A JSON-safe scalar summary of one task's day result.

    Time series stay server-side (they are large and cached); the summary
    carries the headline scalars plus every plain scalar field.
    """
    doc = {"task": task.describe()}
    scalar_fields = {
        f.name for f in dataclass_fields(result)
        if isinstance(getattr(result, f.name), (int, float, str, bool))
    }
    for name in sorted(scalar_fields):
        doc[name] = getattr(result, name)
    for name in _SUMMARY_ATTRS:
        value = getattr(result, name, None)
        if isinstance(value, (int, float, str, bool)):
            doc[name] = value
    return doc


class _HttpError(Exception):
    """Routed straight into an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceOverloaded(RuntimeError):
    """The bounded job queue is full; try again after ``retry_after_s``."""

    def __init__(self, live_jobs: int, max_queue: int,
                 retry_after_s: float) -> None:
        super().__init__(
            f"job queue full ({live_jobs}/{max_queue} live jobs); "
            f"retry in ~{retry_after_s:.0f}s"
        )
        self.live_jobs = live_jobs
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s


class ServiceDraining(RuntimeError):
    """The server is shutting down and no longer admits work."""


class SolarCoreService:
    """The long-running job server.

    Args:
        config: Base simulation configuration; a job's ``solver`` field
            overrides the solver per job (each solver gets its own
            runner, since the solver is part of the cache identity).
        host / port: Bind address (port 0 = ephemeral, for tests).
        cache_dir: Shared persistent result cache for every runner.
        sweep_jobs: ``jobs=`` for the underlying runners (worker
            *processes* used by grid prefetches; 1 = in-process).
        max_workers: Compute threads per solver bridge.
        client_queue_size: Per-WebSocket-client bounded queue capacity.
        snapshot_interval_s: Cadence of telemetry snapshots on the
            stream (0 disables them).
        runs_dir: Record a run-ledger manifest per terminal job under
            this directory (None disables the ledger).
        ws_max_size: Largest accepted WebSocket frame [bytes].
        max_queue: Bounded admission: at most this many live (non-
            terminal) jobs; excess submissions get a 429 with
            ``Retry-After``.  None = unbounded (the pre-durability
            behavior).
        journal_dir: Crash-safe job journal directory (None disables
            durability).  With it set, every acknowledged submission
            survives ``kill -9`` and is recovered on restart.
        recover: What happens to jobs found ``interrupted`` during
            journal replay: ``"retry"`` re-enqueues them, ``"fail"``
            fails them with an explanatory error.
        drain_timeout_s: Default budget :meth:`drain` waits for in-flight
            jobs before journaling them as ``interrupted``.
        journal_fsync: Force every journal append to stable storage (the
            acknowledgment guarantee).  Tests may disable for speed.
        lease_stale_s: When set (with ``cache_dir``), runners use
            cross-process compute leases: N server processes sharing the
            cache directory produce exactly one compute per key, and a
            leader silent for this many seconds is considered dead.
    """

    def __init__(
        self,
        config: SolarCoreConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        sweep_jobs: int = 1,
        max_workers: int = 4,
        client_queue_size: int = 256,
        snapshot_interval_s: float = 1.0,
        runs_dir=None,
        ws_max_size: int = 1 << 20,
        max_queue: int | None = None,
        journal_dir=None,
        recover: str = "retry",
        drain_timeout_s: float = 10.0,
        journal_fsync: bool = True,
        lease_stale_s: float | None = None,
    ) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        if recover not in ("retry", "fail"):
            raise ValueError(f"recover must be 'retry' or 'fail', got {recover!r}")
        self.config = config or SolarCoreConfig()
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.sweep_jobs = sweep_jobs
        self.max_workers = max_workers
        self.snapshot_interval_s = snapshot_interval_s
        self.ws_max_size = ws_max_size
        self.max_queue = max_queue
        self.recover = recover
        self.drain_timeout_s = drain_timeout_s
        self.lease_stale_s = lease_stale_s if cache_dir is not None else None
        self.table = JobTable()
        self.coalescer = Coalescer()
        self.stream_hub = StreamHub(client_queue_size=client_queue_size)
        self.journal: JobJournal | None = None
        if journal_dir is not None:
            self.journal = JobJournal(journal_dir, fsync=journal_fsync)
        #: Replay/recovery report of the last :meth:`start` (None without
        #: a journal).
        self.recovery: dict | None = None
        #: Report of the completed :meth:`drain` (None until drained).
        self.drain_report: dict | None = None
        #: Admission counters for /stats.
        self.rejected_overload = 0
        self.rejected_draining = 0
        self.ledger = None
        if runs_dir is not None:
            from repro.harness.runledger import RunLedger

            self.ledger = RunLedger(runs_dir)
        self._draining = False
        self._bridges: dict[tuple[str, str], AsyncRunner] = {}
        self._job_tasks: dict[str, asyncio.Task] = {}
        self._job_done: dict[str, asyncio.Event] = {}
        self._job_started_s: dict[str, float] = {}
        self._durations_s: deque[float] = deque(maxlen=32)
        self._job_streams: set[ClientStream] = set()
        self._server: asyncio.AbstractServer | None = None
        self._snapshot_task: asyncio.Task | None = None
        self._sink: AsyncBridgeSink | None = None
        self._previous_hub = None
        self._owns_hub = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Replay the journal, bind the server, arm the telemetry bridge.

        Recovery runs strictly before the socket binds: no client can
        observe (or submit into) a half-recovered table.
        """
        loop = asyncio.get_running_loop()
        hub = telemetry_hub.current()
        if not hub.enabled:
            # The service needs live counters (runner.computes, cache
            # tiers) and an event stream; install a hub for its lifetime
            # and restore whatever was there on close.
            hub = Telemetry()
            self._previous_hub = telemetry_hub.set_telemetry(hub)
            self._owns_hub = True
        self._sink = AsyncBridgeSink(loop, self._publish_event)
        hub.add_sink(self._sink)
        if self.journal is not None:
            self._recover()
        if self.snapshot_interval_s > 0:
            self._snapshot_task = loop.create_task(self._snapshot_loop())
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("solarcore service listening on %s:%d", self.host, self.port)

    def _recover(self) -> None:
        """Replay the journal into the table and relaunch recoverable jobs."""
        t0 = time.perf_counter()
        report = self.journal.replay()
        for job in report.jobs:
            self.table.restore(job)
        # Arm the observer only now: restores are already journaled, but
        # every recovery *transition* below must hit the journal again.
        self.table.observer = self._on_job_event
        requeued = failed = 0
        for job in report.jobs:
            if job.state == RUNNING:
                # The old process died holding this job.
                self.table.transition(job, INTERRUPTED)
            if job.state == INTERRUPTED:
                if self.recover == "retry":
                    self.table.transition(job, QUEUED)
                else:
                    failed += 1
                    self.table.transition(
                        job, FAILED,
                        error="interrupted by server crash (recover=fail)",
                    )
            if job.state == QUEUED:
                requeued += 1
                self._launch(job)
        self.recovery = {
            "jobs": len(report.jobs),
            "requeued": requeued,
            "failed": failed,
            "records": report.records,
            "corrupt_lines": report.corrupt_lines,
            "truncated_bytes": report.truncated_bytes,
            "corrupt_snapshot": report.corrupt_snapshot,
            "replay_s": time.perf_counter() - t0,
        }
        # Fold the replayed history into a fresh snapshot immediately, so
        # repeated crash/restart cycles do not re-pay an ever-longer log.
        self.journal.compact(self.table.jobs(), self.table.next_id)
        if report.jobs:
            log.info(
                "journal recovery: %d job(s) replayed, %d requeued, "
                "%d failed (%.3fs)",
                len(report.jobs), requeued, failed,
                self.recovery["replay_s"],
            )

    async def aclose(self) -> None:
        """Stop accepting, cancel live jobs, release the telemetry hub."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        for job_id, task in list(self._job_tasks.items()):
            job = self.table.get(job_id)
            if job.state in (QUEUED, RUNNING):
                # Drained (interrupted) jobs keep their state: the journal
                # already promised they will be recovered, not cancelled.
                self.table.cancel(job)
            task.cancel()
        if self._job_tasks:
            await asyncio.gather(
                *self._job_tasks.values(), return_exceptions=True
            )
        for bridge in self._bridges.values():
            await bridge.aclose(cancel_pending=self._draining)
        self.stream_hub.close()
        for stream in list(self._job_streams):
            stream.close()
        if self.journal is not None:
            self.journal.close()
        hub = telemetry_hub.current()
        if self._sink is not None:
            self._sink.close()
            if hub.enabled and self._sink in getattr(hub, "sinks", []):
                hub.sinks.remove(self._sink)
            self._sink = None
        if self._owns_hub:
            telemetry_hub.set_telemetry(self._previous_hub)
            self._owns_hub = False

    async def __aenter__(self) -> SolarCoreService:
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's ``repro serve`` loop)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Execution engine
    # ------------------------------------------------------------------
    def _bridge(self, solver: str, chip: str | None = None) -> AsyncRunner:
        """The per-(solver, chip) runner bridge.

        Both axes are part of the runner's cache identity, so jobs that
        differ in either get separate runners (and never false-coalesce).
        """
        base = self.config
        chip = base.chip_spec if chip is None else chip
        key = (solver, chip)
        bridge = self._bridges.get(key)
        if bridge is None:
            config = (
                base
                if base.solver == solver and base.chip_spec == chip
                else SolarCoreConfig(**{
                    **{f.name: getattr(base, f.name)
                       for f in dataclass_fields(base)},
                    "solver": solver,
                    "chip_spec": chip,
                })
            )
            bridge = AsyncRunner(
                SimulationRunner(
                    config, jobs=self.sweep_jobs, cache_dir=self.cache_dir,
                    lease_stale_s=self.lease_stale_s,
                ),
                max_workers=self.max_workers,
            )
            self._bridges[key] = bridge
        return bridge

    def _on_job_event(self, event: str, job: Job) -> None:
        """``JobTable`` observer: journal first, then maybe compact.

        Called synchronously inside ``create``/``transition``, i.e.
        strictly before the HTTP response that reports the change — this
        ordering *is* the write-ahead acknowledgment guarantee.
        """
        try:
            self.journal.observer(event, job)
            self.journal.maybe_compact(self.table.jobs(), self.table.next_id)
        except Exception:  # noqa: BLE001 — a sick disk must not wedge the table
            log.exception("journal append failed for %s (%s)", job.job_id, event)

    @property
    def live_jobs(self) -> int:
        """Jobs admitted but not yet terminal (the admission meter)."""
        return len(self._job_tasks)

    def _retry_after_s(self) -> float:
        """Honest Retry-After estimate from recent job durations."""
        if not self._durations_s:
            return 1.0
        mean = sum(self._durations_s) / len(self._durations_s)
        # One queue slot frees roughly every mean/(worker) seconds.
        return float(max(1, math.ceil(mean / max(1, self.max_workers))))

    def submit(self, spec: JobSpec) -> Job:
        """Register and launch a job (event-loop only).

        Raises:
            ServiceDraining: The server no longer admits work.
            ServiceOverloaded: ``max_queue`` live jobs already exist; the
                exception carries an honest ``retry_after_s``.
        """
        if self._draining:
            self.rejected_draining += 1
            raise ServiceDraining("server is draining; submit elsewhere")
        if self.max_queue is not None and self.live_jobs >= self.max_queue:
            self.rejected_overload += 1
            raise ServiceOverloaded(
                self.live_jobs, self.max_queue, self._retry_after_s()
            )
        job = self.table.create(spec)
        self._launch(job)
        return job

    def _launch(self, job: Job) -> None:
        """Start (or, after recovery, restart) a queued job's task."""
        self._job_done[job.job_id] = asyncio.Event()
        self._job_started_s[job.job_id] = time.perf_counter()
        self._job_tasks[job.job_id] = asyncio.get_running_loop().create_task(
            self._run_job(job)
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True if this call cancelled it (event-loop only)."""
        job = self.table.get(job_id)
        cancelled = self.table.cancel(job)
        if cancelled:
            task = self._job_tasks.get(job_id)
            if task is not None:
                task.cancel()
        return cancelled

    async def wait_terminal(self, job_id: str) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.table.get(job_id)
        event = self._job_done.get(job_id)
        if event is not None:
            await event.wait()
        return job

    async def _run_job(self, job: Job) -> None:
        try:
            self.table.transition(job, RUNNING)
            if job.spec.deadline_s is not None:
                try:
                    summary = await asyncio.wait_for(
                        self._execute(job), job.spec.deadline_s
                    )
                except asyncio.TimeoutError:
                    # wait_for cancelled _execute, which hard-released its
                    # coalescer entries: unstarted computes never run.
                    if job.state in (QUEUED, RUNNING):
                        self.table.transition(
                            job, DEADLINE_EXCEEDED,
                            error=f"deadline of {job.spec.deadline_s}s exceeded",
                        )
                    return
            else:
                summary = await self._execute(job)
            self.table.transition(job, DONE, result=summary)
        except asyncio.CancelledError:
            # Normal path: self.cancel() already moved the job to
            # cancelled before cancelling this task.  Drain path: the job
            # was journaled as interrupted and must keep that state.
            if job.state in (QUEUED, RUNNING):
                self.table.transition(job, CANCELLED)
            raise
        except Exception as exc:  # noqa: BLE001 — any failure fails the job
            log.warning("job %s failed: %s", job.job_id, exc)
            if job.state not in TERMINAL_STATES:
                self.table.transition(
                    job, FAILED, error=f"{type(exc).__name__}: {exc}"
                )
        finally:
            self._finish_job(job)

    async def _execute(self, job: Job) -> list[dict]:
        """Run every task of ``job`` through the coalescer; returns summaries."""
        bridge = self._bridge(job.spec.solver, job.spec.chip)
        # Deadline jobs hard-release: their cancellation must truly stop
        # queued work.  Ordinary cancellations keep the warm-the-cache
        # orphan semantics.
        hard = job.spec.deadline_s is not None
        acquired: list[tuple] = []  # (task, entry, start) not yet awaited
        try:
            results: dict = {}
            for task in job.spec.tasks:
                cached = bridge.peek_memory(task)
                if cached is not None:
                    # Cache-hit-first: answered inline, no executor hop.
                    job.cache_hits += 1
                    results[task] = cached
                    continue
                start = lambda task=task: bridge.run_task(task)  # noqa: E731
                entry, attached = self.coalescer.acquire(
                    bridge.cache_key(task), start
                )
                if attached:
                    job.coalesced += 1
                acquired.append((task, entry, start))
            while acquired:
                task, entry, start = acquired.pop(0)
                # wait() releases the entry however the await ends, and
                # re-elects a new leader if the current one's task dies.
                results[task] = await self.coalescer.wait(
                    entry, start, hard=hard
                )
            return [
                summarize_result(task, results[task])
                for task in job.spec.tasks
            ]
        finally:
            for _task, entry, _start in acquired:
                self.coalescer.release(entry, hard=hard)

    async def drain(self, timeout: float | None = None) -> dict:
        """Graceful shutdown, phase one: stop admitting, settle in-flight.

        * Readiness (``/readyz``) starts failing immediately; liveness
          stays green so orchestrators do not kill a draining process.
        * In-flight jobs get ``timeout`` (default ``drain_timeout_s``)
          to finish.
        * Stragglers are journaled as ``interrupted`` (so a successor
          process recovers them) and their tasks cancelled; without a
          journal they are plainly cancelled.
        * Every WebSocket client is closed with 1001 (going away).

        Idempotent; returns a report dict (also kept as
        :attr:`drain_report`).  Call :meth:`aclose` afterwards.
        """
        if self.drain_report is not None:
            return self.drain_report
        self._draining = True
        if timeout is None:
            timeout = self.drain_timeout_s
        t0 = time.perf_counter()
        tasks = list(self._job_tasks.values())
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=timeout)
        else:
            done, pending = set(), set()
        interrupted = cancelled = 0
        if pending:
            for job_id, task in list(self._job_tasks.items()):
                if task.done():
                    continue
                job = self.table.get(job_id)
                if self.journal is not None and job.state == RUNNING:
                    # Journaled before the cancel below: the successor
                    # process owes these jobs a retry.
                    self.table.transition(job, INTERRUPTED)
                    interrupted += 1
                elif job.state in (QUEUED, RUNNING):
                    cancelled += 1
                task.cancel()
            await asyncio.gather(
                *[t for t in self._job_tasks.values()], return_exceptions=True
            )
        self.stream_hub.close(1001, b"server draining")
        for stream in list(self._job_streams):
            stream.close(1001, b"server draining")
        if self.journal is not None:
            try:
                self.journal.compact(self.table.jobs(), self.table.next_id)
            except Exception:  # noqa: BLE001
                log.exception("journal compaction during drain failed")
        self.drain_report = {
            "drained": len(done),
            "interrupted": interrupted,
            "cancelled": cancelled,
            "duration_s": time.perf_counter() - t0,
            "timed_out": bool(pending),
        }
        log.info("drain complete: %s", self.drain_report)
        return self.drain_report

    def _finish_job(self, job: Job) -> None:
        """Terminal bookkeeping: wake waiters, record the ledger manifest."""
        self._job_tasks.pop(job.job_id, None)
        started = self._job_started_s.pop(job.job_id, None)
        if started is not None:
            self._durations_s.append(time.perf_counter() - started)
        event = self._job_done.get(job.job_id)
        if event is not None:
            event.set()
        if self.ledger is None:
            return
        try:
            from repro.harness.runledger import build_manifest

            duration = (
                time.perf_counter() - started if started is not None else None
            )
            manifest = build_manifest(
                "service-job",
                [],
                config=self._bridge(job.spec.solver, job.spec.chip).runner.config,
                faults=None,
                jobs=self.sweep_jobs,
                duration_s=duration,
                extra={
                    "job_id": job.job_id,
                    "state": job.state,
                    "label": job.spec.label,
                    "spec": job.spec.describe(),
                    "tasks": len(job.spec.tasks),
                    "cache_hits": job.cache_hits,
                    "coalesced": job.coalesced,
                    "error": job.error,
                },
            )
            self.ledger.record(manifest)
        except Exception:  # noqa: BLE001 — provenance must not kill serving
            log.exception("could not record ledger manifest for %s", job.job_id)

    # ------------------------------------------------------------------
    # Live streaming
    # ------------------------------------------------------------------
    def _publish_event(self, payload: dict) -> None:
        """Loop-side callback of the telemetry bridge sink."""
        self.stream_hub.publish({"type": "event", "event": payload})

    def _snapshot_message(self) -> dict:
        hub = telemetry_hub.current()
        snap = hub.snapshot() if hub.enabled else {}
        message = {
            "type": "snapshot",
            "counters": snap.get("counters", {}),
            "jobs": self.table.counts(),
            "coalesce": self.coalescer.stats(),
            "stream": self.stream_hub.stats(),
        }
        profile = snap.get("profile")
        if profile:
            message["profile"] = {
                "phases": {
                    name: {"count": data["count"], "total_s": data["total_s"]}
                    for name, data in profile.get("phases", {}).items()
                },
                "counters": profile.get("counters", {}),
            }
        return message

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval_s)
            if len(self.stream_hub._clients):
                self.stream_hub.publish(self._snapshot_message())

    def stats(self) -> dict:
        """The ``/stats`` document."""
        doc = {
            "jobs": self.table.counts(),
            "transitions": dict(self.table.transitions),
            "coalesce": self.coalescer.stats(),
            "stream": self.stream_hub.stats(),
            "admission": {
                "live_jobs": self.live_jobs,
                "max_queue": self.max_queue,
                "draining": self._draining,
                "rejected_overload": self.rejected_overload,
                "rejected_draining": self.rejected_draining,
            },
            "runners": {
                f"{solver}/{chip}": bridge.stats()
                for (solver, chip), bridge in sorted(self._bridges.items())
            },
        }
        if self.journal is not None:
            doc["journal"] = self.journal.stats()
        if self.recovery is not None:
            doc["recovery"] = self.recovery
        if self.drain_report is not None:
            doc["drain"] = self.drain_report
        hub = telemetry_hub.current()
        if hub.enabled:
            counters = hub.snapshot().get("counters", {})
            doc["counters"] = {
                name: counters[name]
                for name in sorted(counters)
                if name.startswith(("runner.", "cache.", "service."))
            }
        return doc

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, headers, body = await self._read_request(
                    reader
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except _HttpError as exc:
                await self._respond_error(writer, exc.status, str(exc))
                return
            try:
                await self._route(
                    method, path, query, headers, body, reader, writer
                )
            except _HttpError as exc:
                await self._respond_error(writer, exc.status, str(exc))
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            except Exception as exc:  # noqa: BLE001 — one conn must not kill serving
                log.exception("unhandled error serving %s %s", method, path)
                try:
                    await self._respond_error(
                        writer, 500, f"{type(exc).__name__}: {exc}"
                    )
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        parsed = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 64 or len(line) > 8192:
                raise _HttpError(431, "too many / too large headers")
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if n > self.ws_max_size:
                raise _HttpError(413, f"body of {n} bytes is too large")
            body = await reader.readexactly(n)
        return method.upper(), parsed.path, query, headers, body

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, doc: dict, *,
        reason: str = "OK", headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._respond_json(
            writer, status, {"error": message}, reason="Error"
        )

    async def _route(
        self, method, path, query, headers, body, reader, writer
    ) -> None:
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"] and method == "GET":
            # Liveness: stays "ok" for the whole process lifetime (even
            # while draining) — orchestrators must not kill a drainer.
            await self._respond_json(writer, 200, {"status": "ok"})
        elif parts == ["readyz"] and method == "GET":
            if self._draining:
                await self._respond_json(
                    writer, 503,
                    {"status": "draining", "ready": False},
                    reason="Service Unavailable",
                )
            else:
                await self._respond_json(
                    writer, 200, {"status": "ok", "ready": True}
                )
        elif parts == ["stats"] and method == "GET":
            await self._respond_json(writer, 200, self.stats())
        elif parts == ["jobs"] and method == "GET":
            await self._respond_json(
                writer, 200, {"jobs": [j.status() for j in self.table.jobs()]}
            )
        elif parts == ["jobs"] and method == "POST":
            await self._handle_submit(query, body, writer)
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            job = self._job_or_404(parts[1])
            await self._respond_json(writer, 200, job.status())
        elif (
            len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel"
            and method == "POST"
        ):
            job = self._job_or_404(parts[1])
            cancelled = self.cancel(job.job_id)
            await self._respond_json(
                writer, 200, {"cancelled": cancelled, **job.status()}
            )
        elif len(parts) == 3 and parts[0] == "ws" and parts[1] == "jobs":
            job = self._job_or_404(parts[2])
            await self._handle_ws(
                headers, reader, writer, lambda: self._job_stream(job)
            )
        elif parts == ["ws", "telemetry"]:
            await self._handle_ws(
                headers, reader, writer, self._telemetry_stream
            )
        else:
            raise _HttpError(404, f"no route for {method} {path}")

    def _job_or_404(self, job_id: str) -> Job:
        try:
            return self.table.get(job_id)
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from None

    async def _handle_submit(self, query, body, writer) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from None
        try:
            spec = JobSpec.from_dict(doc)
        except JobSpecError as exc:
            raise _HttpError(422, str(exc)) from None
        try:
            job = self.submit(spec)
        except ServiceOverloaded as exc:
            await self._respond_json(
                writer, 429,
                {
                    "error": str(exc),
                    "code": "overloaded",
                    "live_jobs": exc.live_jobs,
                    "max_queue": exc.max_queue,
                    "retry_after_s": exc.retry_after_s,
                },
                reason="Too Many Requests",
                headers={"Retry-After": f"{exc.retry_after_s:.0f}"},
            )
            return
        except ServiceDraining as exc:
            await self._respond_json(
                writer, 503,
                {"error": str(exc), "code": "draining"},
                reason="Service Unavailable",
            )
            return
        if query.get("wait") in ("1", "true", "yes"):
            await self.wait_terminal(job.job_id)
            await self._respond_json(writer, 200, job.status())
        else:
            await self._respond_json(writer, 202, job.status(), reason="Accepted")

    # ------------------------------------------------------------------
    # WebSocket endpoints
    # ------------------------------------------------------------------
    async def _handle_ws(self, headers, reader, writer, open_stream) -> None:
        """Upgrade the connection, then pump ``open_stream()`` to the peer."""
        if headers.get("upgrade", "").lower() != "websocket":
            raise _HttpError(426, "this endpoint speaks WebSocket; send an Upgrade")
        key = headers.get("sec-websocket-key")
        if not key:
            raise _HttpError(400, "missing Sec-WebSocket-Key")
        accept = wsproto.accept_key(key)
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()
        stream, cleanup = open_stream()
        reader_task = asyncio.get_running_loop().create_task(
            self._ws_reader(reader, writer, stream)
        )
        try:
            while True:
                message = await stream.get()
                if message is None:
                    break
                writer.write(wsproto.encode_frame(
                    wsproto.OP_TEXT,
                    json.dumps(message, sort_keys=True).encode("utf-8"),
                ))
                await writer.drain()
                if message.get("type") == "job" and (
                    message.get("state") in TERMINAL_STATES
                ):
                    break
            payload = b""
            if stream.close_code is not None:
                # e.g. 1001 "going away" during drain, so clients know to
                # reconnect elsewhere rather than retry here.
                payload = struct.pack("!H", stream.close_code) + stream.close_reason
            writer.write(wsproto.encode_frame(wsproto.OP_CLOSE, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            cleanup()

    async def _ws_reader(self, reader, writer, stream) -> None:
        """Drain client frames: answer pings, honor close, ignore data."""
        try:
            while True:
                opcode, payload = await wsproto.read_frame(
                    reader, max_size=self.ws_max_size
                )
                if opcode == wsproto.OP_CLOSE:
                    stream.close()
                    return
                if opcode == wsproto.OP_PING:
                    writer.write(
                        wsproto.encode_frame(wsproto.OP_PONG, payload)
                    )
                    await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            wsproto.WSProtocolError,
        ):
            stream.close()

    def _telemetry_stream(self):
        """Stream + cleanup for ``/ws/telemetry``."""
        stream = self.stream_hub.subscribe()
        stream.push(self._snapshot_message())
        return stream, lambda: self.stream_hub.unsubscribe(stream)

    def _job_stream(self, job: Job):
        """Stream + cleanup for ``/ws/jobs/<id>``.

        Subscribes *before* reading the current state, so a transition
        can never fall between the snapshot and the live feed; the
        table's subscribe-after-terminal guarantee covers finished jobs.
        """
        stream = ClientStream(self.stream_hub.client_queue_size)
        self._job_streams.add(stream)
        sub = self.table.subscribe(job.job_id)
        sub.listener = stream.push
        delivered_terminal = False
        for notification in sub.drain():
            stream.push(notification)
            delivered_terminal = True
        if not delivered_terminal:
            stream.push({"type": "job", **job.status()})

        def cleanup() -> None:
            self.table.unsubscribe(sub)
            self._job_streams.discard(stream)
            stream.close()

        return stream, cleanup
