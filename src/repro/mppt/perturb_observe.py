"""Perturb-and-observe MPPT (paper reference [32], Femia et al.).

The classic hill climber: perturb ``k`` by one step, observe the drawn
power; keep the direction if power rose, reverse if it fell.  At steady
state the operating point oscillates around the MPP with an amplitude set
by ``delta_k`` — the well-known accuracy/agility trade-off.
"""

from __future__ import annotations

import logging

from repro.mppt.base import MPPTAlgorithm
from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPoint
from repro.telemetry import hub as telemetry_hub

__all__ = ["PerturbObserve"]

log = logging.getLogger(__name__)


class PerturbObserve(MPPTAlgorithm):
    """P&O hill climbing on the transfer ratio."""

    name = "P&O"

    def __init__(self, converter: DCDCConverter) -> None:
        super().__init__(converter)
        self._last_power: float | None = None
        self._direction = 1  # +1 = step k up, -1 = step k down

    def reset(self) -> None:
        self._last_power = None
        self._direction = 1

    def step(self, point: OperatingPoint) -> None:
        power = point.pv_power
        if self._last_power is not None and power < self._last_power:
            self._direction = -self._direction
            tel = telemetry_hub.current()
            if tel.enabled:
                tel.count("mppt.po_reversals")
        self._last_power = power
        if self._direction > 0:
            self.converter.step_up()
        else:
            self.converter.step_down()
