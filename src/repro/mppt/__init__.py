"""Conventional MPPT algorithms (hill climbers on the converter alone)."""

from repro.mppt.base import MPPTAlgorithm, TrackerRun, run_tracker
from repro.mppt.incremental_conductance import IncrementalConductance
from repro.mppt.perturb_observe import PerturbObserve

__all__ = [
    "MPPTAlgorithm",
    "TrackerRun",
    "run_tracker",
    "PerturbObserve",
    "IncrementalConductance",
]
