"""Conventional MPPT algorithm interface (paper references [3], [32], [33]).

These trackers adjust only the converter's transfer ratio ``k`` against a
*fixed* electrical load — the classic hill-climbing family the paper
contrasts with SolarCore's joint (k, w) optimization.  They demonstrate the
paper's Section 2.3 point: transfer-ratio tuning alone can pin the panel at
its MPP, but without load adaptation the recovered power does not translate
into processor performance.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPoint, solve_operating_point
from repro.pv.curves import PVDevice
from repro.telemetry import hub as telemetry_hub

__all__ = ["MPPTAlgorithm", "TrackerRun", "run_tracker"]

log = logging.getLogger(__name__)


class MPPTAlgorithm(ABC):
    """A hill-climbing tracker driving one converter knob."""

    name: str = "abstract"

    def __init__(self, converter: DCDCConverter) -> None:
        self.converter = converter

    @abstractmethod
    def step(self, point: OperatingPoint) -> None:
        """Observe the operating point and move ``k`` by one decision."""

    def reset(self) -> None:
        """Clear any internal observation history (default: stateless)."""


@dataclass(frozen=True)
class TrackerRun:
    """Outcome of running a tracker over an irradiance profile.

    Attributes:
        name: Tracker name.
        powers: Power drawn at each control step [W].
        mpp_powers: True MPP power at each control step [W].
    """

    name: str
    powers: list[float]
    mpp_powers: list[float]

    @property
    def tracking_efficiency(self) -> float:
        """Total energy drawn / total MPP energy over the run."""
        total_mpp = sum(self.mpp_powers)
        if total_mpp <= 0.0:
            return 0.0
        return sum(self.powers) / total_mpp


def run_tracker(
    tracker: MPPTAlgorithm,
    device: PVDevice,
    load_resistance: float,
    profile: list[tuple[float, float]],
    steps_per_condition: int = 25,
) -> TrackerRun:
    """Drive a tracker across an (irradiance, temperature) profile.

    The tracker takes ``steps_per_condition`` control decisions at each
    environmental condition — modelling a control loop much faster than the
    weather.

    Args:
        tracker: The algorithm under test (owns its converter).
        device: PV module or array.
        load_resistance: The fixed load at the converter output [ohm].
        profile: Sequence of (irradiance, cell temperature) conditions.
        steps_per_condition: Control decisions per condition.

    Returns:
        A :class:`TrackerRun` with per-step drawn and available power.
    """
    from repro.pv.mpp import find_mpp

    tel = telemetry_hub.current()
    prof = tel.profile
    if prof.enabled:
        prof_start = prof.clock()
    powers: list[float] = []
    mpp_powers: list[float] = []
    with tel.span("mppt.run_tracker", tracker=tracker.name):
        for irradiance, temp in profile:
            mpp_power = find_mpp(device, irradiance, temp).power
            for _ in range(steps_per_condition):
                point = solve_operating_point(
                    device, tracker.converter, load_resistance, irradiance, temp
                )
                tracker.step(point)
                after = solve_operating_point(
                    device, tracker.converter, load_resistance, irradiance, temp
                )
                powers.append(after.pv_power)
                mpp_powers.append(mpp_power)
        if tel.enabled:
            tel.count("mppt.steps", len(powers))
    if prof.enabled:
        prof.add("mppt.run_tracker", prof.clock() - prof_start)
        prof.count("mppt.tracker_steps", float(len(powers)))
    run = TrackerRun(tracker.name, powers, mpp_powers)
    log.debug(
        "run_tracker %s: %d steps, tracking efficiency %.1f%%",
        tracker.name, len(powers), 100.0 * run.tracking_efficiency,
    )
    return run
