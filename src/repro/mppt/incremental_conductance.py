"""Incremental-conductance MPPT (paper reference [33], Esram & Chapman).

Uses the MPP condition ``dP/dV = 0``, i.e. ``dI/dV = -I/V``: when the
incremental conductance exceeds the negative instantaneous conductance the
operating point is left of the MPP (raise the PV voltage), and vice versa.
Unlike P&O it can detect arrival at the MPP and hold still, removing the
steady-state oscillation.
"""

from __future__ import annotations

import logging

from repro.mppt.base import MPPTAlgorithm
from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPoint
from repro.telemetry import hub as telemetry_hub

__all__ = ["IncrementalConductance"]

log = logging.getLogger(__name__)


class IncrementalConductance(MPPTAlgorithm):
    """Incremental conductance on the transfer ratio.

    Raising ``k`` raises the PV-side voltage (the load reflects as
    ``k^2 * R``), so "move right" maps to ``step_up``.
    """

    name = "IncCond"

    def __init__(self, converter: DCDCConverter, tolerance: float = 0.02) -> None:
        super().__init__(converter)
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = tolerance
        self._last: OperatingPoint | None = None

    def reset(self) -> None:
        self._last = None

    def step(self, point: OperatingPoint) -> None:
        if self._last is None or point.pv_voltage == self._last.pv_voltage:
            # No voltage increment to differentiate against: probe upward.
            self.converter.step_up()
            self._last = point
            return

        dv = point.pv_voltage - self._last.pv_voltage
        di = point.pv_current - self._last.pv_current
        incremental = di / dv
        instantaneous = (
            -point.pv_current / point.pv_voltage if point.pv_voltage > 0 else 0.0
        )
        # At the MPP, incremental == -I/V; tolerance sets the dead zone.
        error = incremental - instantaneous
        scale = abs(instantaneous) if instantaneous != 0.0 else 1.0
        if abs(error) <= self.tolerance * scale:
            # Holding at the MPP — the behaviour that distinguishes IncCond.
            tel = telemetry_hub.current()
            if tel.enabled:
                tel.count("mppt.ic_holds")
        elif error > 0:
            self.converter.step_up()  # left of MPP: move right
        else:
            self.converter.step_down()  # right of MPP: move left
        self._last = point
