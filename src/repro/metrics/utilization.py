"""Solar-energy utilization metrics (paper Section 6.3, Figures 18-20).

Utilization is *actual total solar energy consumed / theoretical maximum
solar energy supply* over the daytime window.  The helpers aggregate per-day
results across months and bucket them by effective operation duration the
way Figure 20 does.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.simulation import DayResult

__all__ = [
    "mean_utilization",
    "mean_effective_duration",
    "bucket_by_duration",
    "DURATION_BUCKETS",
]

#: Figure 20's effective-duration buckets (% of daytime), high to low.
DURATION_BUCKETS = ((0.9, 1.01), (0.8, 0.9), (0.7, 0.8), (0.6, 0.7), (0.5, 0.6))


def mean_utilization(results: Iterable[DayResult]) -> float:
    """Energy-weighted mean utilization across day results.

    Weighted by each day's available solar energy, so a cloudless day counts
    for more than an overcast one — the same convention as summing energies
    across the whole evaluation period.
    """
    results = list(results)
    if not results:
        raise ValueError("no results to aggregate")
    used = sum(r.solar_used_wh for r in results)
    available = sum(r.solar_available_wh for r in results)
    if available <= 0.0:
        return 0.0
    return used / available


def mean_effective_duration(results: Iterable[DayResult]) -> float:
    """Unweighted mean effective operation duration fraction."""
    results = list(results)
    if not results:
        raise ValueError("no results to aggregate")
    return float(np.mean([r.effective_duration_fraction for r in results]))


def bucket_by_duration(
    results: Iterable[DayResult],
) -> dict[tuple[float, float], list[DayResult]]:
    """Group day results into Figure 20's effective-duration buckets.

    Days below the lowest bucket are dropped, as in the figure.
    """
    buckets: dict[tuple[float, float], list[DayResult]] = {
        bucket: [] for bucket in DURATION_BUCKETS
    }
    for result in results:
        duration = result.effective_duration_fraction
        for low, high in DURATION_BUCKETS:
            if low <= duration < high:
                buckets[(low, high)].append(result)
                break
    return buckets
