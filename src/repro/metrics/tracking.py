"""MPP tracking accuracy metrics (paper Section 6.1, Table 7).

The relative tracking error in a tracking period is ``|P - B| / B`` where
``P`` is the actual load power and ``B`` the maximal power budget (the MPP
power).  Table 7 reports one value per (location, month, workload).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.simulation import DayResult

__all__ = ["relative_tracking_error", "tracking_error_table"]


def relative_tracking_error(result: DayResult) -> float:
    """Mean relative tracking error of one simulated day."""
    return result.mean_tracking_error


def tracking_error_table(
    results: Iterable[DayResult],
) -> dict[tuple[str, int, str], float]:
    """Build Table 7: (location, month, mix) -> mean relative error."""
    table: dict[tuple[str, int, str], float] = {}
    for result in results:
        key = (result.location_code, result.month, result.mix_name)
        if key in table:
            raise ValueError(f"duplicate day result for {key}")
        table[key] = relative_tracking_error(result)
    return table


def summarize_errors(errors: Iterable[float]) -> dict[str, float]:
    """Mean/min/max summary of a collection of tracking errors."""
    arr = np.asarray(list(errors), dtype=float)
    if len(arr) == 0:
        raise ValueError("no errors to summarize")
    return {
        "mean": float(np.mean(arr)),
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }
