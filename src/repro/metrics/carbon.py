"""Carbon-footprint accounting (the paper's motivating metric).

The paper's abstract frames SolarCore as "the first step on maximally
reducing the carbon footprint of computing systems through the usage of
renewable energy sources".  This module quantifies that step: every
solar-powered watt-hour displaces a grid watt-hour whose carbon intensity
depends on the regional generation mix.

Intensities are 2009-era US eGRID-style subregion averages [kg CO2 / kWh],
matching the paper's timeframe.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.simulation import DayResult

__all__ = ["GRID_INTENSITY_KG_PER_KWH", "CarbonReport", "carbon_report"]

#: Grid carbon intensity per station region [kg CO2 / kWh], ~2009 eGRID.
GRID_INTENSITY_KG_PER_KWH = {
    "PFCI": 0.53,  # AZ: AZNM subregion (gas/nuclear/coal mix)
    "BMS": 0.87,   # CO: RMPA subregion (coal-heavy)
    "ECSU": 0.51,  # NC: SRVC subregion
    "ORNL": 0.61,  # TN: SRTV subregion
}

#: Fallback intensity when a station is not in the table [kg CO2 / kWh].
DEFAULT_INTENSITY = 0.60


@dataclass(frozen=True)
class CarbonReport:
    """Carbon accounting over a set of simulated days.

    Attributes:
        solar_kwh: Renewable energy the chip consumed [kWh].
        utility_kwh: Grid energy the chip consumed [kWh].
        avoided_kg: CO2 displaced by the solar share [kg].
        emitted_kg: CO2 emitted by the grid share [kg].
    """

    solar_kwh: float
    utility_kwh: float
    avoided_kg: float
    emitted_kg: float

    @property
    def green_fraction(self) -> float:
        """Solar share of the chip's total energy."""
        total = self.solar_kwh + self.utility_kwh
        if total <= 0.0:
            return 0.0
        return self.solar_kwh / total

    @property
    def reduction_fraction(self) -> float:
        """Fraction of the all-grid footprint avoided."""
        baseline = self.avoided_kg + self.emitted_kg
        if baseline <= 0.0:
            return 0.0
        return self.avoided_kg / baseline


def carbon_report(
    results: Iterable[DayResult],
    intensity_kg_per_kwh: float | None = None,
) -> CarbonReport:
    """Account the carbon impact of a set of day simulations.

    Args:
        results: Day results (possibly spanning stations).
        intensity_kg_per_kwh: Override grid intensity; by default each
            day uses its station's regional intensity.

    Returns:
        The aggregated :class:`CarbonReport`.
    """
    solar_kwh = utility_kwh = avoided = emitted = 0.0
    seen_any = False
    for day in results:
        seen_any = True
        intensity = (
            intensity_kg_per_kwh
            if intensity_kg_per_kwh is not None
            else GRID_INTENSITY_KG_PER_KWH.get(day.location_code, DEFAULT_INTENSITY)
        )
        day_solar = day.solar_used_wh / 1000.0
        day_utility = day.utility_wh / 1000.0
        solar_kwh += day_solar
        utility_kwh += day_utility
        avoided += day_solar * intensity
        emitted += day_utility * intensity
    if not seen_any:
        raise ValueError("no results to account")
    return CarbonReport(
        solar_kwh=solar_kwh,
        utility_kwh=utility_kwh,
        avoided_kg=avoided,
        emitted_kg=emitted,
    )
