"""Performance-time product (PTP) aggregation (paper Section 4.3).

PTP is the paper's figure of merit: average throughput times operation
duration, measured as total instructions committed per day.  The helpers
here aggregate and normalize PTP across days and policies the way the
paper's Figure 21 does (normalized to the Battery-L baseline).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.simulation import BatteryDayResult, DayResult

__all__ = ["ptp_of", "normalized_ptp", "geometric_mean"]


def ptp_of(result: DayResult | BatteryDayResult) -> float:
    """The performance-time product of a day result [Ginst/day]."""
    return result.ptp


def normalized_ptp(
    results: Mapping[str, DayResult | BatteryDayResult],
    baseline: str,
) -> dict[str, float]:
    """Normalize a set of same-day results to one of them.

    Args:
        results: Policy name -> day result (all for the same workload/day).
        baseline: Key of the baseline policy (paper: ``"Battery-L"``).

    Returns:
        Policy name -> PTP relative to the baseline.
    """
    if baseline not in results:
        raise KeyError(
            f"baseline {baseline!r} not among results: {sorted(results)}"
        )
    base = ptp_of(results[baseline])
    if base <= 0.0:
        raise ValueError(f"baseline {baseline!r} has non-positive PTP {base}")
    return {name: ptp_of(r) / base for name, r in results.items()}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper's Table 7 aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0.0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
