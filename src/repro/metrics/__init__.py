"""Evaluation metrics: PTP, energy utilization, tracking accuracy, carbon."""

from repro.metrics.carbon import (
    GRID_INTENSITY_KG_PER_KWH,
    CarbonReport,
    carbon_report,
)
from repro.metrics.ptp import geometric_mean, normalized_ptp, ptp_of
from repro.metrics.tracking import (
    relative_tracking_error,
    summarize_errors,
    tracking_error_table,
)
from repro.metrics.utilization import (
    DURATION_BUCKETS,
    bucket_by_duration,
    mean_effective_duration,
    mean_utilization,
)

__all__ = [
    "ptp_of",
    "normalized_ptp",
    "geometric_mean",
    "relative_tracking_error",
    "tracking_error_table",
    "summarize_errors",
    "mean_utilization",
    "mean_effective_duration",
    "bucket_by_duration",
    "DURATION_BUCKETS",
    "CarbonReport",
    "carbon_report",
    "GRID_INTENSITY_KG_PER_KWH",
]
