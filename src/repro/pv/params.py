"""Physical constants and parameter sets for photovoltaic device models.

The cell model follows the paper's "moderate complexity" single-diode
equivalent circuit (Section 2.1): a photocurrent source in parallel with one
diode, plus a series resistance.  Shunt (parallel) resistance is neglected,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19
#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23
#: Standard Test Conditions irradiance [W/m^2].
STC_IRRADIANCE = 1000.0
#: Standard Test Conditions cell temperature [degrees Celsius].
STC_TEMPERATURE_C = 25.0
#: Silicon band gap [eV] used in the diode saturation-current law.
SILICON_BANDGAP_EV = 1.12


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return temperature_c + 273.15


@dataclass(frozen=True)
class CellParameters:
    """Electrical parameters of a single PV cell at STC.

    Attributes:
        isc_ref: Short-circuit current at STC [A].
        voc_ref: Open-circuit voltage at STC [V].
        ideality: Diode ideality factor ``n`` (1.0 for an ideal junction).
        series_resistance: Series resistance ``Rs`` [ohm], modeling internal
            conduction losses (paper Figure 3).
        isc_temp_coeff: Temperature coefficient ``Ki`` of the short-circuit
            current [A/K].
        bandgap_ev: Semiconductor band gap [eV].
    """

    isc_ref: float
    voc_ref: float
    ideality: float = 1.3
    series_resistance: float = 5.0e-3
    isc_temp_coeff: float = 3.0e-3
    bandgap_ev: float = SILICON_BANDGAP_EV

    def __post_init__(self) -> None:
        if self.isc_ref <= 0:
            raise ValueError(f"isc_ref must be positive, got {self.isc_ref}")
        if self.voc_ref <= 0:
            raise ValueError(f"voc_ref must be positive, got {self.voc_ref}")
        if self.ideality <= 0:
            raise ValueError(f"ideality must be positive, got {self.ideality}")
        if self.series_resistance < 0:
            raise ValueError(
                f"series_resistance must be non-negative, got {self.series_resistance}"
            )

    def thermal_voltage(self, temperature_c: float) -> float:
        """Diode thermal voltage ``n*k*T/q`` [V] at the given cell temperature."""
        t_kelvin = celsius_to_kelvin(temperature_c)
        return self.ideality * BOLTZMANN * t_kelvin / ELEMENTARY_CHARGE


@dataclass(frozen=True)
class ModuleParameters:
    """Datasheet-level parameters of a PV module.

    A module is ``cells_series`` identical cells in series, ``cells_parallel``
    strings in parallel.  The BP3180N module used in the paper (180 W
    polycrystalline) is provided by :func:`bp3180n`.

    Attributes:
        name: Human-readable module name.
        cell: Per-cell electrical parameters.
        cells_series: Number of series-connected cells.
        cells_parallel: Number of parallel strings.
        noct_c: Nominal Operating Cell Temperature [C], used to derive cell
            temperature from ambient temperature and irradiance.
    """

    name: str
    cell: CellParameters
    cells_series: int
    cells_parallel: int = 1
    noct_c: float = 47.0

    def __post_init__(self) -> None:
        if self.cells_series < 1:
            raise ValueError(f"cells_series must be >= 1, got {self.cells_series}")
        if self.cells_parallel < 1:
            raise ValueError(f"cells_parallel must be >= 1, got {self.cells_parallel}")

    @property
    def voc_ref(self) -> float:
        """Module open-circuit voltage at STC [V]."""
        return self.cell.voc_ref * self.cells_series

    @property
    def isc_ref(self) -> float:
        """Module short-circuit current at STC [A]."""
        return self.cell.isc_ref * self.cells_parallel


def bp3180n() -> ModuleParameters:
    """The BP3180N 180 W polycrystalline module modeled in the paper (ref [11]).

    Datasheet values: 72 series cells, Voc 43.6 V, Isc 5.4 A, Vmpp ~35.8 V,
    Impp ~5.0 A, Pmax 180 W at STC.
    """
    return ModuleParameters(
        name="BP3180N",
        cell=CellParameters(
            isc_ref=5.4,
            voc_ref=43.6 / 72,
            ideality=1.15,
            series_resistance=5.5e-3,
            isc_temp_coeff=3.5e-3 / 72,
        ),
        cells_series=72,
        cells_parallel=1,
        noct_c=47.0,
    )
