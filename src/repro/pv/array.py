"""PV array model: series/parallel interconnection of identical modules.

The paper powers an 8-core processor (tens to ~150 W) from a BP3180N-class
panel; an array of one module is the default configuration, but the class
supports arbitrary series strings and parallel branches for larger loads.

Like :class:`repro.pv.module.PVModule`, the terminal interface takes *cell*
temperature; :meth:`PVArray.cell_temperature_from_ambient` converts from
meteorological ambient temperature.
"""

from __future__ import annotations

import numpy as np

from repro.pv.module import PVModule
from repro.pv.params import ModuleParameters, bp3180n

__all__ = ["PVArray"]


class PVArray:
    """A PV array of identical modules under uniform irradiance.

    Args:
        module_params: Parameters of each module (defaults to the BP3180N).
        modules_series: Modules per series string.
        modules_parallel: Number of parallel strings.
    """

    def __init__(
        self,
        module_params: ModuleParameters | None = None,
        modules_series: int = 1,
        modules_parallel: int = 1,
    ) -> None:
        if modules_series < 1:
            raise ValueError(f"modules_series must be >= 1, got {modules_series}")
        if modules_parallel < 1:
            raise ValueError(f"modules_parallel must be >= 1, got {modules_parallel}")
        self.module = PVModule(module_params or bp3180n())
        self.modules_series = modules_series
        self.modules_parallel = modules_parallel

    def cell_temperature_from_ambient(
        self, irradiance: float, ambient_c: float
    ) -> float:
        """Cell temperature [C] from ambient via the module's NOCT model."""
        return self.module.cell_temperature_from_ambient(irradiance, ambient_c)

    def current(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """Array output current [A] at the given array terminal voltage."""
        module_v = voltage / self.modules_series
        return (
            self.module.current(module_v, irradiance, cell_temp_c)
            * self.modules_parallel
        )

    def voltage(self, current: float, irradiance: float, cell_temp_c: float) -> float:
        """Array terminal voltage [V] at the given output current."""
        module_i = current / self.modules_parallel
        return (
            self.module.voltage(module_i, irradiance, cell_temp_c)
            * self.modules_series
        )

    def power(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """Array output power [W] at the given array terminal voltage."""
        return voltage * self.current(voltage, irradiance, cell_temp_c)

    def currents(
        self, voltages: np.ndarray, irradiance: float, cell_temp_c: float
    ) -> np.ndarray:
        """Vectorized :meth:`current` over an array of terminal voltages."""
        return np.array(
            [self.current(float(v), irradiance, cell_temp_c) for v in voltages]
        )

    def short_circuit_current(self, irradiance: float, cell_temp_c: float) -> float:
        """Array ``Isc`` [A]."""
        return self.current(0.0, irradiance, cell_temp_c)

    def open_circuit_voltage(self, irradiance: float, cell_temp_c: float) -> float:
        """Array ``Voc`` [V] (zero in darkness)."""
        return (
            self.module.open_circuit_voltage(irradiance, cell_temp_c)
            * self.modules_series
        )
