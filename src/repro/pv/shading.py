"""Partial shading: series strings under non-uniform irradiance.

When series-connected modules see different irradiance (a cloud edge, roof
shadow, soiling), the string current is pinned by the weakest module unless
its bypass diode conducts — producing a *multi-peaked* P-V characteristic.
Hill-climbing MPPT (P&O, incremental conductance, and SolarCore's
perturb-observe stage alike) can lock onto a local peak; only a periodic
global sweep recovers the true optimum.  This module models the physics
and provides the global-search reference.

``ShadedSeriesString`` satisfies the :class:`repro.pv.curves.PVDevice`
protocol, so every existing tool (curve sampling, operating-point solving,
trackers) works on it unchanged.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq, minimize_scalar

from repro.pv.module import PVModule
from repro.pv.mpp import MaxPowerPoint
from repro.pv.params import ModuleParameters, bp3180n
from repro.telemetry import hub as telemetry_hub

__all__ = ["ShadedSeriesString", "find_global_mpp"]

#: Forward drop of a conducting bypass diode [V].
_BYPASS_DROP_V = 0.5


class ShadedSeriesString:
    """Series-connected modules with bypass diodes under per-module irradiance.

    The irradiance argument of the device protocol is interpreted as the
    irradiance on the *unshaded* modules; each module's actual irradiance is
    scaled by its entry in ``shading_factors``.

    Args:
        shading_factors: One multiplicative factor in (0, 1] per module;
            1.0 = unshaded.
        module_params: Module type (defaults to the BP3180N).
    """

    def __init__(
        self,
        shading_factors: tuple[float, ...],
        module_params: ModuleParameters | None = None,
    ) -> None:
        if not shading_factors:
            raise ValueError("need at least one module")
        if any(not 0.0 < f <= 1.0 for f in shading_factors):
            raise ValueError(
                f"shading factors must be in (0, 1], got {shading_factors}"
            )
        self.shading_factors = tuple(shading_factors)
        self.module = PVModule(module_params or bp3180n())

    @property
    def n_modules(self) -> int:
        """Modules in the string."""
        return len(self.shading_factors)

    def cell_temperature_from_ambient(
        self, irradiance: float, ambient_c: float
    ) -> float:
        """NOCT conversion using the unshaded irradiance (conservative)."""
        return self.module.cell_temperature_from_ambient(irradiance, ambient_c)

    # ------------------------------------------------------------------
    # String characteristics
    # ------------------------------------------------------------------
    def string_voltage(
        self, current: float, irradiance: float, cell_temp_c: float
    ) -> float:
        """String voltage [V] at a string current.

        Each module contributes its own V(I); a module that cannot carry
        the current is bypassed at a fixed diode drop.
        """
        if current < 0:
            raise ValueError(f"current must be >= 0, got {current}")
        total = 0.0
        for factor in self.shading_factors:
            local_g = irradiance * factor
            try:
                v_module = self.module.voltage(current, local_g, cell_temp_c)
            except ValueError:  # current exceeds this module's capability
                v_module = -_BYPASS_DROP_V
            total += max(v_module, -_BYPASS_DROP_V)
        return total

    def max_string_current(self, irradiance: float, cell_temp_c: float) -> float:
        """Short-circuit current of the *brightest* module [A]."""
        brightest = max(self.shading_factors)
        return self.module.short_circuit_current(
            irradiance * brightest, cell_temp_c
        )

    def open_circuit_voltage(self, irradiance: float, cell_temp_c: float) -> float:
        """String Voc [V]: the sum of module Vocs at their local irradiance."""
        if irradiance <= 0.0:
            return 0.0
        return sum(
            self.module.open_circuit_voltage(irradiance * f, cell_temp_c)
            for f in self.shading_factors
        )

    def current(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """String current [A] at a terminal voltage (inverts V(I)).

        ``V(I)`` is non-increasing, so the inversion brackets on
        ``[0, Isc_max]``.
        """
        if irradiance <= 0.0:
            return 0.0
        i_max = self.max_string_current(irradiance, cell_temp_c)
        v_at_zero = self.string_voltage(0.0, irradiance, cell_temp_c)
        if voltage >= v_at_zero:
            return 0.0
        v_at_max = self.string_voltage(i_max, irradiance, cell_temp_c)
        if voltage <= v_at_max:
            return i_max

        def mismatch(i: float) -> float:
            return self.string_voltage(i, irradiance, cell_temp_c) - voltage

        # Same solver contract as repro.power.operating_point: the root
        # work is booked on the shared brentq counters, and bracketing
        # failures surface as OperatingPointError with full coordinates
        # instead of scipy's bare ValueError.
        prof = telemetry_hub.current().profile
        try:
            if prof.enabled:
                root, info = brentq(
                    mismatch, 0.0, i_max, xtol=1e-9, full_output=True
                )
                prof.count("power.brentq_calls")
                prof.count("power.brentq_iterations", float(info.iterations))
                return float(root)
            return float(brentq(mismatch, 0.0, i_max, xtol=1e-9))
        except ValueError as exc:
            from repro.power.operating_point import OperatingPointError

            raise OperatingPointError(
                f"shaded-string current solve failed on (0, Isc={i_max!r} A): "
                f"{exc} (V={voltage!r} V, G={irradiance!r} W/m^2, "
                f"T={cell_temp_c!r} C, shading={self.shading_factors!r})"
            ) from exc

    def power(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """String power [W] at a terminal voltage."""
        return voltage * self.current(voltage, irradiance, cell_temp_c)


def find_global_mpp(
    device: ShadedSeriesString,
    irradiance: float,
    cell_temp_c: float,
    n_samples: int = 120,
) -> MaxPowerPoint:
    """Global MPP of a (possibly multi-peaked) shaded string.

    Samples the P-V surface densely, then refines around the best sample by
    bounded maximization — the "global sweep" real inverters periodically
    run to escape local peaks.
    """
    if irradiance <= 0.0:
        return MaxPowerPoint(0.0, 0.0, 0.0, irradiance, cell_temp_c)
    voc = device.open_circuit_voltage(irradiance, cell_temp_c)
    voltages = np.linspace(1e-3, voc * 0.999, n_samples)
    powers = np.array(
        [device.power(float(v), irradiance, cell_temp_c) for v in voltages]
    )
    best = int(np.argmax(powers))
    lo = voltages[max(0, best - 1)]
    hi = voltages[min(n_samples - 1, best + 1)]
    result = minimize_scalar(
        lambda v: -device.power(v, irradiance, cell_temp_c),
        bounds=(float(lo), float(hi)),
        method="bounded",
        options={"xatol": 1e-5},
    )
    v_mpp = float(result.x)
    i_mpp = device.current(v_mpp, irradiance, cell_temp_c)
    return MaxPowerPoint(
        voltage=v_mpp,
        current=i_mpp,
        power=v_mpp * i_mpp,
        irradiance=irradiance,
        temperature_c=cell_temp_c,
    )
