"""Exact maximum power point (MPP) solving for PV devices (paper Section 2.2).

Under fixed irradiance and temperature the P-V characteristic is unimodal on
[0, Voc]: power rises roughly linearly (current-source region), peaks at the
MPP, then collapses (diode region).  Bounded scalar maximization finds it to
high precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import minimize_scalar

from repro.pv.curves import PVDevice

__all__ = ["MaxPowerPoint", "find_mpp"]


@dataclass(frozen=True)
class MaxPowerPoint:
    """The maximum power point of a PV device at fixed (G, T).

    Attributes:
        voltage: MPP terminal voltage ``Vmpp`` [V].
        current: MPP output current ``Impp`` [A].
        power: Maximum output power ``Pmax`` [W].
        irradiance: Irradiance [W/m^2] at which the MPP holds.
        temperature_c: Ambient temperature [C] at which the MPP holds.
    """

    voltage: float
    current: float
    power: float
    irradiance: float
    temperature_c: float


def find_mpp(
    device: PVDevice,
    irradiance: float,
    temperature_c: float,
    tolerance: float = 1e-6,
) -> MaxPowerPoint:
    """Locate the maximum power point of ``device`` at fixed (G, T).

    Args:
        device: Cell, module, or array.
        irradiance: Plane-of-array irradiance [W/m^2].  Non-positive
            irradiance yields a zero-power MPP (the panel is dark).
        temperature_c: Ambient temperature [C].
        tolerance: Absolute voltage tolerance of the bounded maximization.

    Returns:
        The exact :class:`MaxPowerPoint`.
    """
    if irradiance <= 0.0:
        return MaxPowerPoint(0.0, 0.0, 0.0, irradiance, temperature_c)
    voc = device.open_circuit_voltage(irradiance, temperature_c)

    result = minimize_scalar(
        lambda v: -v * device.current(v, irradiance, temperature_c),
        bounds=(0.0, voc),
        method="bounded",
        options={"xatol": tolerance},
    )
    v_mpp = float(result.x)
    i_mpp = device.current(v_mpp, irradiance, temperature_c)
    return MaxPowerPoint(
        voltage=v_mpp,
        current=i_mpp,
        power=v_mpp * i_mpp,
        irradiance=irradiance,
        temperature_c=temperature_c,
    )
