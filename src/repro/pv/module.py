"""PV module model: series/parallel interconnection of identical cells.

A module exposes the same terminal interface as a cell (current/voltage/
power as functions of irradiance and *cell* temperature) with voltages scaled
by the series cell count and currents by the parallel string count.  The
paper's Figures 6 and 7 sweep module curves directly against temperature, so
the public interface is in cell temperature; use
:meth:`PVModule.cell_temperature_from_ambient` (NOCT model) to convert
meteorological ambient temperature, as the day-long simulation does.
"""

from __future__ import annotations

import numpy as np

from repro.pv.cell import PVCell
from repro.pv.params import ModuleParameters

__all__ = ["PVModule"]

#: Irradiance [W/m^2] at which NOCT is specified.
_NOCT_IRRADIANCE = 800.0
#: Ambient temperature [C] at which NOCT is specified.
_NOCT_AMBIENT_C = 20.0


class PVModule:
    """A photovoltaic module built from identical series/parallel cells.

    Args:
        params: Module datasheet parameters (see
            :func:`repro.pv.params.bp3180n` for the paper's BP3180N).
    """

    def __init__(self, params: ModuleParameters) -> None:
        self.params = params
        self.cell = PVCell(params.cell)

    # ------------------------------------------------------------------
    # Thermal model
    # ------------------------------------------------------------------
    def cell_temperature_from_ambient(
        self, irradiance: float, ambient_c: float
    ) -> float:
        """Cell temperature [C] from ambient temperature via the NOCT model.

        ``Tcell = Tamb + (NOCT - 20) * G / 800`` — the standard linear
        irradiance-driven heating approximation.
        """
        heating = (self.params.noct_c - _NOCT_AMBIENT_C) / _NOCT_IRRADIANCE
        return ambient_c + heating * max(irradiance, 0.0)

    # ------------------------------------------------------------------
    # Terminal characteristics (module-level V and I, cell temperature)
    # ------------------------------------------------------------------
    def current(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """Module output current [A] at the given module terminal voltage."""
        cell_v = voltage / self.params.cells_series
        return (
            self.cell.current(cell_v, irradiance, cell_temp_c)
            * self.params.cells_parallel
        )

    def voltage(self, current: float, irradiance: float, cell_temp_c: float) -> float:
        """Module terminal voltage [V] at the given output current."""
        cell_i = current / self.params.cells_parallel
        return (
            self.cell.voltage(cell_i, irradiance, cell_temp_c)
            * self.params.cells_series
        )

    def power(self, voltage: float, irradiance: float, cell_temp_c: float) -> float:
        """Module output power [W] at the given module terminal voltage."""
        return voltage * self.current(voltage, irradiance, cell_temp_c)

    def currents(
        self, voltages: np.ndarray, irradiance: float, cell_temp_c: float
    ) -> np.ndarray:
        """Vectorized :meth:`current` over an array of module voltages."""
        return np.array(
            [self.current(float(v), irradiance, cell_temp_c) for v in voltages]
        )

    def short_circuit_current(self, irradiance: float, cell_temp_c: float) -> float:
        """Module ``Isc`` [A]."""
        return self.current(0.0, irradiance, cell_temp_c)

    def open_circuit_voltage(self, irradiance: float, cell_temp_c: float) -> float:
        """Module ``Voc`` [V] (zero in darkness)."""
        if irradiance <= 0.0:
            return 0.0
        return (
            self.cell.open_circuit_voltage(irradiance, cell_temp_c)
            * self.params.cells_series
        )
