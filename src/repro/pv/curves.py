"""I-V and P-V curve sampling for PV devices (paper Figures 4, 6, 7).

A *device* is anything exposing ``current(voltage, irradiance, temperature_c)``
and ``open_circuit_voltage(irradiance, temperature_c)`` — cells (with cell
temperature), modules, and arrays all qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = ["PVDevice", "IVCurve", "sample_iv_curve"]


class PVDevice(Protocol):
    """Structural interface shared by PVCell, PVModule and PVArray."""

    def current(self, voltage: float, irradiance: float, temperature_c: float) -> float:
        """Output current [A] at a terminal voltage."""

    def open_circuit_voltage(self, irradiance: float, temperature_c: float) -> float:
        """Open-circuit voltage [V]."""


@dataclass(frozen=True)
class IVCurve:
    """A sampled I-V (and derived P-V) characteristic at fixed (G, T).

    Attributes:
        voltage: Terminal voltages [V], ascending from 0 to Voc.
        current: Output currents [A] at each voltage.
        irradiance: Irradiance [W/m^2] the curve was sampled at.
        temperature_c: Ambient temperature [C] the curve was sampled at.
    """

    voltage: np.ndarray
    current: np.ndarray
    irradiance: float
    temperature_c: float

    @property
    def power(self) -> np.ndarray:
        """Output power [W] at each sampled voltage."""
        return self.voltage * self.current

    @property
    def isc(self) -> float:
        """Short-circuit current [A] (first sample, V = 0)."""
        return float(self.current[0])

    @property
    def voc(self) -> float:
        """Open-circuit voltage [V] (last sample)."""
        return float(self.voltage[-1])

    @property
    def approximate_mpp(self) -> tuple[float, float, float]:
        """Grid-resolution (V, I, P) of the maximum-power sample.

        For an exact MPP use :func:`repro.pv.mpp.find_mpp`.
        """
        idx = int(np.argmax(self.power))
        return (
            float(self.voltage[idx]),
            float(self.current[idx]),
            float(self.power[idx]),
        )


def sample_iv_curve(
    device: PVDevice,
    irradiance: float,
    temperature_c: float,
    n_points: int = 200,
) -> IVCurve:
    """Sample a device's I-V characteristic from short to open circuit.

    Args:
        device: Cell, module, or array.
        irradiance: Plane-of-array irradiance [W/m^2]; must be positive.
        temperature_c: Ambient temperature [C].
        n_points: Number of voltage samples (>= 2).

    Returns:
        An :class:`IVCurve` with ``n_points`` samples spanning [0, Voc].
    """
    if irradiance <= 0.0:
        raise ValueError(f"irradiance must be positive, got {irradiance}")
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    voc = device.open_circuit_voltage(irradiance, temperature_c)
    voltages = np.linspace(0.0, voc, n_points)
    currents = np.array(
        [device.current(float(v), irradiance, temperature_c) for v in voltages]
    )
    # Clamp the tiny negative tail at Voc caused by float rounding.
    currents[-1] = max(currents[-1], 0.0)
    return IVCurve(
        voltage=voltages,
        current=currents,
        irradiance=irradiance,
        temperature_c=temperature_c,
    )
