"""Vectorized single-diode PV evaluation over NumPy arrays.

:class:`repro.pv.cell.PVCell` solves the diode characteristic exactly but
one scalar at a time — fine for a root-find, hopeless for tabulating a
surface over tens of thousands of (G, T, V) grid nodes.  This module
re-states the *same* math (same constants, same Lambert-W Newton
iteration, same calibration of ``I0``) as array programs, plus a
:func:`device_scaling` adapter that reduces any supported
series/parallel composition (cell, module, array) to one cell model and
two scaling integers.

The vectorized evaluators agree with the scalar path to float64
round-off (asserted in ``tests/pv/test_vector.py``); they are the
engine under :mod:`repro.power.surface` grid construction.  Devices the
closed form cannot represent — fault-injected arrays, partially shaded
strings — map to ``None`` and keep using the exact scalar solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pv.array import PVArray
from repro.pv.cell import PVCell
from repro.pv.module import PVModule
from repro.pv.params import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    STC_IRRADIANCE,
    STC_TEMPERATURE_C,
    CellParameters,
    celsius_to_kelvin,
)

__all__ = ["VectorizedDevice", "device_scaling", "lambertw_of_exp_array"]


def lambertw_of_exp_array(log_argument: np.ndarray) -> np.ndarray:
    """Vectorized ``W(exp(y))``: the array twin of
    :func:`repro.pv.cell.lambertw_of_exp`.

    Identical substitution (``u = ln w``), identical three-region
    initial guess, identical Newton update and stopping tolerance — run
    over the whole array at once, iterating until every element meets
    the scalar path's per-element stopping criterion (or the same
    64-iteration cap).
    """
    y = np.asarray(log_argument, dtype=np.float64)
    u = np.where(
        y > 2.0,
        # log argument must stay positive before the mask applies.
        np.log(np.maximum(y - np.log(np.maximum(y, 1e-300)), 1e-300)),
        np.where(y < -2.0, y, -0.5671432904097838 + 0.5 * y),
    )
    for _ in range(64):
        ew = np.exp(u)
        step = (ew + u - y) / (ew + 1.0)
        u = u - step
        if np.all(np.abs(step) <= 1e-15 * np.maximum(np.abs(u), 1.0)):
            break
    return np.exp(u)


@dataclass(frozen=True)
class VectorizedDevice:
    """A PV device reduced to one cell model plus series/parallel counts.

    Terminal semantics match the scalar composition exactly: device
    voltage = ``ns_total`` cell voltages, device current = ``np_total``
    cell currents, cell temperature from ambient via the module NOCT
    constant.

    Attributes:
        cell: Per-cell electrical parameters.
        i0_ref: STC-calibrated diode saturation current [A] (matches
            ``PVCell._i0_ref`` bit for bit).
        ns_total: Series-connected cells end to end.
        np_total: Parallel cell strings.
        noct_c: Module NOCT [C] for the ambient->cell conversion.
    """

    cell: CellParameters
    i0_ref: float
    ns_total: int
    np_total: int
    noct_c: float

    # ------------------------------------------------------------------
    # Environment-dependent source terms (all array-broadcasting)
    # ------------------------------------------------------------------
    def thermal_voltage(self, temperature_c: np.ndarray) -> np.ndarray:
        """Per-cell diode thermal voltage ``n*k*T/q`` [V]."""
        t_kelvin = np.asarray(temperature_c, dtype=np.float64) + 273.15
        return self.cell.ideality * BOLTZMANN * t_kelvin / ELEMENTARY_CHARGE

    def photocurrent(
        self, irradiance: np.ndarray, temperature_c: np.ndarray
    ) -> np.ndarray:
        """Per-cell light-generated current ``Iph`` [A] (zero in darkness)."""
        g = np.asarray(irradiance, dtype=np.float64)
        p = self.cell
        thermal_term = p.isc_ref + p.isc_temp_coeff * (
            np.asarray(temperature_c, dtype=np.float64) - STC_TEMPERATURE_C
        )
        iph = (g / STC_IRRADIANCE) * np.maximum(thermal_term, 0.0)
        return np.where(g > 0.0, iph, 0.0)

    def saturation_current(self, temperature_c: np.ndarray) -> np.ndarray:
        """Per-cell diode saturation current ``I0(T)`` [A]."""
        p = self.cell
        t = np.asarray(temperature_c, dtype=np.float64) + 273.15
        t_ref = celsius_to_kelvin(STC_TEMPERATURE_C)
        exponent = (
            ELEMENTARY_CHARGE
            * p.bandgap_ev
            / (p.ideality * BOLTZMANN)
            * (1.0 / t_ref - 1.0 / t)
        )
        return self.i0_ref * (t / t_ref) ** 3 * np.exp(exponent)

    def cell_temperature_from_ambient(
        self, irradiance: np.ndarray, ambient_c: np.ndarray
    ) -> np.ndarray:
        """Cell temperature [C] via the NOCT model, vectorized."""
        heating = (self.noct_c - 20.0) / 800.0
        return np.asarray(ambient_c, dtype=np.float64) + heating * np.maximum(
            np.asarray(irradiance, dtype=np.float64), 0.0
        )

    # ------------------------------------------------------------------
    # Terminal characteristics (device-level V and I)
    # ------------------------------------------------------------------
    def current(
        self,
        voltage: np.ndarray,
        irradiance: np.ndarray,
        temperature_c: np.ndarray,
    ) -> np.ndarray:
        """Device output current [A] at device terminal voltage, vectorized.

        Same Lambert-W closed form as ``PVCell.current`` per cell, scaled
        by the parallel string count.
        """
        p = self.cell
        v_cell = np.asarray(voltage, dtype=np.float64) / self.ns_total
        vt = self.thermal_voltage(temperature_c)
        iph = self.photocurrent(irradiance, temperature_c)
        i0 = self.saturation_current(temperature_c)
        if p.series_resistance == 0.0:
            i_cell = iph - i0 * np.expm1(v_cell / vt)
        else:
            rs = p.series_resistance
            log_arg = np.log(i0 * rs / vt) + (v_cell + (iph + i0) * rs) / vt
            i_cell = iph + i0 - (vt / rs) * lambertw_of_exp_array(log_arg)
        return i_cell * self.np_total

    def open_circuit_voltage(
        self, irradiance: np.ndarray, temperature_c: np.ndarray
    ) -> np.ndarray:
        """Device ``Voc`` [V], vectorized; exactly zero where ``G <= 0``.

        From ``PVCell.voltage(0)``: ``Voc_cell = Vt * ln((Iph+I0)/I0)``.
        """
        g = np.asarray(irradiance, dtype=np.float64)
        vt = self.thermal_voltage(temperature_c)
        iph = self.photocurrent(irradiance, temperature_c)
        i0 = self.saturation_current(temperature_c)
        voc_cell = vt * np.log((iph + i0) / i0)
        return np.where(g > 0.0, voc_cell * self.ns_total, 0.0)

    def power(
        self,
        voltage: np.ndarray,
        irradiance: np.ndarray,
        temperature_c: np.ndarray,
    ) -> np.ndarray:
        """Device output power [W] at device terminal voltage, vectorized."""
        v = np.asarray(voltage, dtype=np.float64)
        return v * self.current(v, irradiance, temperature_c)

    def describe(self) -> str:
        """A stable textual identity used in surface fingerprints.

        Two devices share a surface exactly when this string matches:
        it captures every electrical parameter plus the composition
        counts, with full float repr so no two distinct devices collide.
        """
        p = self.cell
        return (
            f"cell(isc_ref={p.isc_ref!r}, voc_ref={p.voc_ref!r}, "
            f"ideality={p.ideality!r}, rs={p.series_resistance!r}, "
            f"ki={p.isc_temp_coeff!r}, eg={p.bandgap_ev!r}) "
            f"i0_ref={self.i0_ref!r} ns={self.ns_total} np={self.np_total} "
            f"noct={self.noct_c!r}"
        )


def device_scaling(device) -> VectorizedDevice | None:
    """Reduce a PV device to its vectorizable form, or ``None``.

    Supported compositions are the exact library classes — a
    :class:`PVArray` of identical modules, a single :class:`PVModule`,
    or a bare :class:`PVCell`.  Subclasses and wrappers (fault
    injectors, shaded strings, test doubles) are rejected by design:
    their terminal behaviour can deviate from the closed form, and a
    silently wrong table is worse than a slow exact solve.
    """
    if type(device) is PVArray:
        module = device.module
        return VectorizedDevice(
            cell=module.params.cell,
            i0_ref=module.cell._i0_ref,
            ns_total=device.modules_series * module.params.cells_series,
            np_total=device.modules_parallel * module.params.cells_parallel,
            noct_c=module.params.noct_c,
        )
    if type(device) is PVModule:
        return VectorizedDevice(
            cell=device.params.cell,
            i0_ref=device.cell._i0_ref,
            ns_total=device.params.cells_series,
            np_total=device.params.cells_parallel,
            noct_c=device.params.noct_c,
        )
    if type(device) is PVCell:
        return VectorizedDevice(
            cell=device.params,
            i0_ref=device._i0_ref,
            ns_total=1,
            np_total=1,
            noct_c=47.0,
        )
    return None
