"""Single-diode PV cell model with series resistance (paper Section 2.1).

The electrical behaviour is the implicit characteristic

    I = Iph - I0 * (exp(q*(V + I*Rs) / (n*k*T)) - 1)

with the photocurrent ``Iph`` proportional to irradiance and weakly increasing
with temperature, and the diode saturation current ``I0`` strongly increasing
with temperature.  This module solves the characteristic *exactly* using the
Lambert-W function, so ``current(V)`` and ``voltage(I)`` are closed-form.
"""

from __future__ import annotations

import math

import numpy as np

from repro.pv.params import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    STC_IRRADIANCE,
    STC_TEMPERATURE_C,
    CellParameters,
    celsius_to_kelvin,
)

__all__ = ["PVCell", "lambertw_of_exp"]


def lambertw_of_exp(log_argument: float) -> float:
    """Compute ``W(exp(y))`` for real ``y`` without ever forming ``exp(y)``.

    Solves ``w + ln(w) = y`` by Newton iteration (the equation is monotone
    for ``w > 0``, so convergence is global from a positive start).  Working
    in log space keeps the evaluation overflow-free for arbitrarily large
    ``y`` — the diode equation produces ``y`` well beyond 700 at high bias.
    This pure-Python solver is also ~10x faster than calling out to SciPy's
    complex-valued ``lambertw``, which matters: it sits on the hot path of
    every operating-point solve.
    """
    y = log_argument
    # Substitute u = ln(w): solve g(u) = exp(u) + u - y = 0.  g is convex and
    # strictly increasing, so Newton converges globally (after the first step
    # it approaches the root monotonically from above).
    if y > 2.0:
        u = math.log(y - math.log(y))  # from W(e^y) ~ y - ln y
    elif y < -2.0:
        u = y  # W(x) ~ x for small x, so ln W ~ y
    else:
        u = -0.5671432904097838 + 0.5 * y  # smooth bridge through ln W(1)
    for _ in range(64):
        ew = math.exp(u)
        step = (ew + u - y) / (ew + 1.0)
        u -= step
        if abs(step) <= 1e-15 * max(abs(u), 1.0):
            break
    return math.exp(u)


class PVCell:
    """A photovoltaic cell following the single-diode + Rs equivalent circuit.

    All voltages/currents are terminal quantities of one cell.  Irradiance is
    in W/m^2 and temperatures are *cell* temperatures in Celsius.
    """

    def __init__(self, params: CellParameters) -> None:
        self.params = params
        # Saturation current calibrated so that I(Voc) = 0 at STC.
        vt_ref = params.thermal_voltage(STC_TEMPERATURE_C)
        self._i0_ref = params.isc_ref / math.expm1(params.voc_ref / vt_ref)

    # ------------------------------------------------------------------
    # Environment-dependent source terms
    # ------------------------------------------------------------------
    def photocurrent(self, irradiance: float, temperature_c: float) -> float:
        """Light-generated current ``Iph`` [A] (zero in darkness)."""
        if irradiance <= 0.0:
            return 0.0
        p = self.params
        thermal_term = p.isc_ref + p.isc_temp_coeff * (temperature_c - STC_TEMPERATURE_C)
        return (irradiance / STC_IRRADIANCE) * max(thermal_term, 0.0)

    def saturation_current(self, temperature_c: float) -> float:
        """Diode reverse saturation current ``I0(T)`` [A].

        Uses the standard ``T^3 * exp(-q*Eg/(n*k*T))`` law, normalized to the
        STC-calibrated reference value.
        """
        p = self.params
        t = celsius_to_kelvin(temperature_c)
        t_ref = celsius_to_kelvin(STC_TEMPERATURE_C)
        exponent = (
            ELEMENTARY_CHARGE
            * p.bandgap_ev
            / (p.ideality * BOLTZMANN)
            * (1.0 / t_ref - 1.0 / t)
        )
        return self._i0_ref * (t / t_ref) ** 3 * math.exp(exponent)

    # ------------------------------------------------------------------
    # Terminal characteristics
    # ------------------------------------------------------------------
    def current(
        self, voltage: float, irradiance: float, temperature_c: float
    ) -> float:
        """Output current [A] at the given terminal voltage.

        Exact Lambert-W solution of the implicit single-diode equation.  The
        returned current may be negative beyond open circuit (the diode
        conducts); physical operation clamps to the first quadrant.
        """
        p = self.params
        vt = p.thermal_voltage(temperature_c)
        iph = self.photocurrent(irradiance, temperature_c)
        i0 = self.saturation_current(temperature_c)
        if p.series_resistance == 0.0:
            return iph - i0 * math.expm1(voltage / vt)
        rs = p.series_resistance
        # I = Iph + I0 - (Vt/Rs) * W((I0*Rs/Vt) * exp((V + (Iph+I0)*Rs)/Vt))
        log_arg = math.log(i0 * rs / vt) + (voltage + (iph + i0) * rs) / vt
        return iph + i0 - (vt / rs) * lambertw_of_exp(log_arg)

    def voltage(self, current: float, irradiance: float, temperature_c: float) -> float:
        """Terminal voltage [V] at the given output current (exact inverse)."""
        p = self.params
        vt = p.thermal_voltage(temperature_c)
        iph = self.photocurrent(irradiance, temperature_c)
        i0 = self.saturation_current(temperature_c)
        headroom = iph + i0 - current
        if headroom <= 0.0:
            raise ValueError(
                f"current {current} A exceeds the cell's source capability "
                f"({iph + i0:.6g} A); no forward operating point exists"
            )
        return vt * math.log(headroom / i0) - current * p.series_resistance

    def currents(
        self,
        voltages: np.ndarray,
        irradiance: float,
        temperature_c: float,
    ) -> np.ndarray:
        """Vectorized :meth:`current` over an array of terminal voltages."""
        return np.array(
            [self.current(float(v), irradiance, temperature_c) for v in voltages]
        )

    # ------------------------------------------------------------------
    # Landmark points
    # ------------------------------------------------------------------
    def short_circuit_current(self, irradiance: float, temperature_c: float) -> float:
        """``Isc`` [A]: output current with the terminals shorted."""
        return self.current(0.0, irradiance, temperature_c)

    def open_circuit_voltage(self, irradiance: float, temperature_c: float) -> float:
        """``Voc`` [V]: terminal voltage at zero output current."""
        if irradiance <= 0.0:
            return 0.0
        return self.voltage(0.0, irradiance, temperature_c)

    def power(self, voltage: float, irradiance: float, temperature_c: float) -> float:
        """Output power [W] at the given terminal voltage."""
        return voltage * self.current(voltage, irradiance, temperature_c)
