"""Photovoltaic device models: cell, module, array, curves, and MPP solving."""

from repro.pv.array import PVArray
from repro.pv.cell import PVCell
from repro.pv.curves import IVCurve, sample_iv_curve
from repro.pv.module import PVModule
from repro.pv.mpp import MaxPowerPoint, find_mpp
from repro.pv.params import CellParameters, ModuleParameters, bp3180n
from repro.pv.shading import ShadedSeriesString, find_global_mpp

__all__ = [
    "PVCell",
    "PVModule",
    "PVArray",
    "IVCurve",
    "sample_iv_curve",
    "MaxPowerPoint",
    "find_mpp",
    "CellParameters",
    "ModuleParameters",
    "bp3180n",
    "ShadedSeriesString",
    "find_global_mpp",
]
