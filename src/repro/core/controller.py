"""The SolarCore controller: multi-core aware MPP tracking (paper Section 4.2).

The controller owns the two knobs of the direct-coupled system — the DC/DC
transfer ratio ``k`` and the multi-core load ``w`` (per-core DVFS, delegated
to a :class:`~repro.core.load_tuning.LoadTuner`) — and runs the paper's
three-step tracking strategy (Figure 9) at every tracking event:

    Step 1  restore the rail voltage to nominal by tuning the load;
    Step 2  perturb ``k`` by +delta-k and watch the output current: a rise
            means the operating point is left of the MPP (keep the move), a
            fall means the direction was wrong (net move becomes -delta-k);
    Step 3  raise the load until the rail returns to nominal.

Steps 2-3 repeat, each combined move dragging the operating point toward the
MPP at a stable rail voltage, until the measured power passes its inflection
point; the controller then sheds load until consumption sits a configured
power margin below the discovered maximum (Section 6.1's accuracy/robustness
trade-off).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.core.config import SolarCoreConfig
from repro.core.load_tuning import LoadTuner
from repro.multicore.chip import MultiCoreChip
from repro.power.converter import DCDCConverter
from repro.power.operating_point import OperatingPoint, solve_operating_point
from repro.power.sensors import IVSensor, SensorDropout, SensorReading
from repro.pv.curves import PVDevice
from repro.pv.mpp import find_mpp
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.events import (
    DegradedModeEvent,
    LoadTuningEvent,
    RecoveryEvent,
)
from repro.telemetry.metrics import DEFAULT_ITERATION_BUCKETS

__all__ = ["SolarCoreController", "TrackingResult"]

log = logging.getLogger(__name__)


class _SensorStale(Exception):
    """Raised inside a tracking event when the sensor front-end has been
    silent longer than ``config.sensor_staleness_min``: held readings can
    no longer be trusted and the event must fall back to the conservative
    degraded-mode budget."""


@dataclass(frozen=True)
class TrackingResult:
    """Outcome of one tracking event.

    Attributes:
        iterations: Combined (k, w) tuning iterations performed.
        power_w: Load power after tracking [W].
        best_power_w: Maximum power observed during the event [W] (the
            controller's MPP estimate).
        rail_voltage: Converter output voltage after tracking [V].
        k: Transfer ratio after tracking.
        load_saturated: True when every core reached the top level and the
            panel still had headroom.
    """

    iterations: int
    power_w: float
    best_power_w: float
    rail_voltage: float
    k: float
    load_saturated: bool


class SolarCoreController:
    """Coordinates converter and per-core DVFS to harvest maximal solar power.

    Args:
        array: The PV generator.
        converter: The DC/DC matching network.
        chip: The multi-core load.
        tuner: Load-adaptation policy (IC / RR / Opt).
        config: Controller parameters.
        sensor: Front-end I/V sensor (ideal by default).
    """

    def __init__(
        self,
        array: PVDevice,
        converter: DCDCConverter,
        chip: MultiCoreChip,
        tuner: LoadTuner,
        config: SolarCoreConfig | None = None,
        sensor: IVSensor | None = None,
        telemetry=None,
    ) -> None:
        self.array = array
        self.converter = converter
        self.chip = chip
        self.tuner = tuner
        self.config = config or SolarCoreConfig()
        self.sensor = sensor or IVSensor()
        self.telemetry = telemetry
        #: Optional :class:`~repro.power.surface.OperatingSurfaces` set by
        #: the engine in table-solver mode; None keeps the exact solvers.
        self.surfaces = None
        #: Per-event margin override set by an adaptive-margin supervisor
        #: (None = use ``config.power_margin``).
        self.margin_override: float | None = None
        # Load-tuning tallies for the current tracking event.
        self._raises = 0
        self._sheds = 0
        # Graceful-degradation state (DESIGN.md section 10): the last
        # trusted sensor reading, when it was taken, and whether the
        # controller is currently running on the conservative budget.
        self._last_good: SensorReading | None = None
        self._last_good_minute: float = -math.inf
        self.degraded: bool = False

    @property
    def _tel(self):
        return (
            self.telemetry if self.telemetry is not None else telemetry_hub.current()
        )

    # -- counted load-tuning moves -------------------------------------
    def _raise_load(self, minute: float) -> bool:
        moved = self.tuner.increase(self.chip, minute)
        if moved:
            self._raises += 1
        return moved

    def _shed_load(self, minute: float) -> bool:
        moved = self.tuner.decrease(self.chip, minute)
        if moved:
            self._sheds += 1
        return moved

    # ------------------------------------------------------------------
    # Electrical helpers
    # ------------------------------------------------------------------
    def _read_burst(self, point: OperatingPoint) -> SensorReading:
        """Sample the I/V sensors, averaging an ADC burst if configured.

        Averaging suppresses multiplicative sensor noise by ~sqrt(N) —
        essential for the perturb-and-observe direction decisions, whose
        true signal is a ~1 % current change.
        """
        n = self.config.sensor_averaging
        if n == 1:
            return self.sensor.read(point)
        readings = [self.sensor.read(point) for _ in range(n)]
        return SensorReading(
            voltage=sum(r.voltage for r in readings) / n,
            current=sum(r.current for r in readings) / n,
        )

    def _read(self, point: OperatingPoint, minute: float) -> SensorReading:
        """A trusted sensor reading, degrading gracefully on dropout.

        On :class:`SensorDropout` the last good reading substitutes for
        up to ``config.sensor_staleness_min`` minutes; past that cap the
        event aborts into degraded mode (:meth:`_enter_degraded`).  A
        successful read while degraded ends the episode.
        """
        try:
            reading = self._read_burst(point)
        except SensorDropout:
            if (
                self._last_good is not None
                and minute - self._last_good_minute <= self.config.sensor_staleness_min
            ):
                tel = self._tel
                if tel.enabled:
                    tel.count("controller.stale_reads")
                return self._last_good
            raise _SensorStale() from None
        if self.degraded:
            tel = self._tel
            if tel.enabled:
                tel.count("controller.recoveries")
                tel.emit(
                    RecoveryEvent(
                        minute=minute,
                        source="controller",
                        stale_min=(
                            minute - self._last_good_minute
                            if self._last_good is not None
                            else minute
                        ),
                    )
                )
            self.degraded = False
        self._last_good = reading
        self._last_good_minute = minute
        return reading

    def solve(self, irradiance: float, cell_temp_c: float, minute: float) -> OperatingPoint:
        """Operating point at the current (k, levels) and environment."""
        resistance = self.chip.effective_resistance(minute, self.config.rail_voltage)
        if self.surfaces is not None:
            return self.surfaces.operating_point(
                self.converter, resistance, irradiance, cell_temp_c
            )
        return solve_operating_point(
            self.array, self.converter, resistance, irradiance, cell_temp_c
        )

    def _align_k_to_rail(
        self, irradiance: float, cell_temp_c: float, minute: float
    ) -> OperatingPoint:
        """Snap ``k`` (on its delta-k grid) so the rail sits near nominal.

        Solves for the *right-branch* PV voltage (between Vmpp and Voc) at
        which the panel supplies the chip's demand, and sets
        ``k = Vpv / Vnominal``.  Anchoring on the stable branch matters: a
        fast supply drop can leave the previous operating point on the
        collapsed near-short-circuit branch, where naive fixed-point updates
        of ``k`` ratchet the rail toward zero.  This stands in for the brief
        calibration sweep a real MPPT front-end performs; the
        perturb-and-observe loop does the actual tracking.
        """
        chip_demand = self.chip.total_power_at(minute)
        op = self.solve(irradiance, cell_temp_c, minute)
        if chip_demand <= 0.0:
            return op
        surfaces = self.surfaces
        mpp = (
            surfaces.mpp(irradiance, cell_temp_c)
            if surfaces is not None
            else find_mpp(self.array, irradiance, cell_temp_c)
        )
        if mpp.power <= 0.0:
            return op
        # Stay strictly right of the MPP so the equilibrium is on the stable
        # branch even when demand exceeds what the panel can give.
        target_power = min(chip_demand, 0.98 * mpp.power)

        tel = self._tel
        if tel.enabled:
            tel.count("controller.align_solves")
        v_right = None
        if surfaces is not None:
            v_right = surfaces.right_branch_voltage(
                irradiance, cell_temp_c, mpp.power, target_power
            )
        if v_right is None:
            voc = self.array.open_circuit_voltage(irradiance, cell_temp_c)

            def surplus(v: float) -> float:
                return (
                    v * self.array.current(v, irradiance, cell_temp_c) - target_power
                )

            # surplus(Vmpp) >= 0 by construction and surplus(Voc) < 0.
            v_right = float(brentq(surplus, mpp.voltage, voc, xtol=1e-6))
        quantum = self.converter.delta_k
        self.converter.k = round(v_right / self.config.rail_voltage / quantum) * quantum
        return self.solve(irradiance, cell_temp_c, minute)

    def _restore_rail(
        self, irradiance: float, cell_temp_c: float, minute: float
    ) -> OperatingPoint:
        """Step 1: move the rail voltage back into the acceptance band using
        the load knob (k untouched, as in the paper's flowchart)."""
        cfg = self.config
        op = self.solve(irradiance, cell_temp_c, minute)
        for _ in range(cfg.max_track_iterations):
            reading = self._read(op, minute)
            error = reading.voltage - cfg.rail_voltage
            if abs(error) <= cfg.rail_tolerance_v:
                break
            # Rail high -> panel has headroom -> draw more (raise load).
            moved = (
                self._raise_load(minute) if error > 0 else self._shed_load(minute)
            )
            if not moved:
                break
            new_op = self.solve(irradiance, cell_temp_c, minute)
            new_error = self._read(new_op, minute).voltage - cfg.rail_voltage
            if abs(new_error) >= abs(error):
                # The DVFS quantum overshot the band; undo and settle.
                if error > 0:
                    self._shed_load(minute)
                else:
                    self._raise_load(minute)
                op = self.solve(irradiance, cell_temp_c, minute)
                break
            op = new_op
        return op

    # ------------------------------------------------------------------
    # The tracking event
    # ------------------------------------------------------------------
    def track(
        self, irradiance: float, cell_temp_c: float, minute: float
    ) -> TrackingResult:
        """Run one three-step MPP tracking event (paper Figure 9).

        Environment is frozen for the duration of the event — tracking takes
        under 5 ms against a 10-minute period (paper Section 5).

        Returns:
            A :class:`TrackingResult` describing the settled state.
        """
        cfg = self.config
        margin = (
            cfg.power_margin if self.margin_override is None else self.margin_override
        )
        if irradiance <= 0.0:
            return TrackingResult(0, 0.0, 0.0, 0.0, self.converter.k, False)

        tel = self._tel
        prof = tel.profile
        if prof.enabled:
            start = prof.clock()
        self._raises = 0
        self._sheds = 0
        with tel.span("controller.track"):
            try:
                result = self._track_event(
                    irradiance, cell_temp_c, minute, cfg, margin
                )
            except _SensorStale:
                result = self._enter_degraded(irradiance, cell_temp_c, minute, cfg)
        if prof.enabled:
            prof.add("controller.track", prof.clock() - start)
            prof.count("controller.track_events")
        if tel.enabled:
            tel.observe(
                "controller.track_iterations",
                result.iterations,
                DEFAULT_ITERATION_BUCKETS,
            )
            tel.count("controller.load_raises", self._raises)
            tel.count("controller.load_sheds", self._sheds)
            tel.emit(
                LoadTuningEvent(
                    minute=minute,
                    policy=self.tuner.name,
                    raises=self._raises,
                    sheds=self._sheds,
                )
            )
        log.debug(
            "track @ m%.0f: %d iterations, %.1f W (best %.1f W), rail %.2f V",
            minute, result.iterations, result.power_w, result.best_power_w,
            result.rail_voltage,
        )
        return result

    def _track_event(
        self,
        irradiance: float,
        cell_temp_c: float,
        minute: float,
        cfg: SolarCoreConfig,
        margin: float,
    ) -> TrackingResult:
        # Step 1: normalize the rail.  A coarse k alignment first keeps the
        # load knob within reach of the acceptance band at dawn/dusk.
        self._align_k_to_rail(irradiance, cell_temp_c, minute)
        op = self._restore_rail(irradiance, cell_temp_c, minute)

        best_power = self._read(op, minute).power
        load_saturated = False
        iterations = 0
        for iterations in range(1, cfg.max_track_iterations + 1):
            # Step 2: perturb k and observe the output current direction.
            current_before = self._read(op, minute).current
            self.converter.step_up()
            op = self.solve(irradiance, cell_temp_c, minute)
            if self._read(op, minute).current < current_before:
                # Wrong direction: net move becomes -delta-k.
                self.converter.step_down(2)
                op = self.solve(irradiance, cell_temp_c, minute)

            # Step 3: load matching — raise load until the rail returns to
            # nominal (each raise pulls Vout down toward Vdd).  A raise that
            # would drop the rail below the acceptance band is undone: the
            # DVFS quantum is coarser than the remaining error.
            raised_any = False
            while self._read(op, minute).voltage > cfg.rail_voltage:
                if not self._raise_load(minute):
                    load_saturated = True
                    break
                candidate = self.solve(irradiance, cell_temp_c, minute)
                if (
                    self._read(candidate, minute).voltage
                    < cfg.rail_voltage - cfg.rail_tolerance_v
                ):
                    self._shed_load(minute)
                    op = self.solve(irradiance, cell_temp_c, minute)
                    break
                raised_any = True
                op = candidate

            power = self._read(op, minute).power
            # Hysteresis on inflection detection: the measured transient
            # power wobbles with the rail's position inside the tolerance
            # band, and with fine DVFS quanta that wobble can exceed one
            # load step.  Only a clear drop marks the true inflection.
            inflection_band = max(1.0, 0.01 * best_power)
            if power < best_power - inflection_band:
                # Inflection passed: shed load back under the budget margin.
                target = best_power * (1.0 - margin)
                while (
                    self._read(op, minute).power > target
                    and self._shed_load(minute)
                ):
                    op = self.solve(irradiance, cell_temp_c, minute)
                break
            best_power = power
            if load_saturated:
                # Chip absorbs everything it can; park the rail at nominal.
                op = self._align_k_to_rail(irradiance, cell_temp_c, minute)
                break
            if not raised_any:
                # Neither knob moved the system: settled at the optimum.
                break

        # Safety net: if the event ended with the rail far from nominal
        # (deep supply transient mid-event), re-anchor on the stable branch.
        if abs(self._read(op, minute).voltage - cfg.rail_voltage) > 3 * cfg.rail_tolerance_v:
            op = self._align_k_to_rail(irradiance, cell_temp_c, minute)
            op = self._restore_rail(irradiance, cell_temp_c, minute)

        # Leave the stabilizing power margin below the discovered maximum
        # (Section 6.1): the headroom absorbs load ripple and small supply
        # drops until the next tracking event.  The margin applies to the
        # chip's nominal-rail demand — what it will actually draw once the
        # converter's inner loop re-centers the rail after the event.
        margin_target = best_power * (1.0 - margin)
        while (
            not load_saturated
            and self.chip.total_power_at(minute) > margin_target
            and self._shed_load(minute)
        ):
            pass
        op = self.solve(irradiance, cell_temp_c, minute)

        reading = self._read(op, minute)
        return TrackingResult(
            iterations=iterations,
            power_w=reading.power,
            best_power_w=best_power,
            rail_voltage=reading.voltage,
            k=self.converter.k,
            load_saturated=load_saturated,
        )

    # ------------------------------------------------------------------
    # Degraded mode (DESIGN.md section 10)
    # ------------------------------------------------------------------
    def _enter_degraded(
        self,
        irradiance: float,
        cell_temp_c: float,
        minute: float,
        cfg: SolarCoreConfig,
    ) -> TrackingResult:
        """Fall back to a conservative power budget while the sensor is dark.

        The budget is ``degraded_budget_fraction`` of the last good power
        reading, floored at the chip's minimum sustainable configuration
        (a budget below the floor would be unenforceable).  Load is shed
        until the allocation fits; the electrical model still settles the
        rail (hardware inner loops keep regulating without the MPPT
        telemetry), but no perturb-and-observe step runs — the knobs stay
        parked until readings return.
        """
        tel = self._tel
        floor = self.chip.floor_power_at(minute, with_gating=cfg.enable_pcpg)
        last_power = self._last_good.power if self._last_good is not None else 0.0
        budget = max(cfg.degraded_budget_fraction * last_power, floor)
        while self.chip.total_power_at(minute) > budget and self._shed_load(minute):
            pass
        allocated = self.chip.total_power_at(minute)
        # The fractional budget can undercut the chip's *reachable* floor
        # (which core survives gating is the tuner's pick, not necessarily
        # the cheapest), so the enforced budget is whatever the shed
        # actually reached — never below the allocation it left running.
        budget = max(budget, allocated)
        if tel.enabled:
            tel.count("controller.degraded_tracks")
            tel.emit(
                DegradedModeEvent(
                    minute=minute,
                    reason="sensor-stale",
                    stale_min=(
                        minute - self._last_good_minute
                        if self._last_good is not None
                        else minute
                    ),
                    budget_w=budget,
                    allocated_w=allocated,
                )
            )
        if not self.degraded:
            log.warning(
                "degraded mode @ m%.0f: sensor stale %.1f min, budget %.1f W "
                "(allocated %.1f W)",
                minute,
                minute - self._last_good_minute if self._last_good else minute,
                budget,
                allocated,
            )
        self.degraded = True
        op = self.solve(irradiance, cell_temp_c, minute)
        return TrackingResult(
            iterations=0,
            power_w=allocated,
            best_power_w=budget,
            rail_voltage=op.output_voltage,
            k=self.converter.k,
            load_saturated=False,
        )
