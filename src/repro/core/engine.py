"""The unified day-simulation engine.

Every Section-6/8 figure in the paper is driven by the same minute-stepped
day co-simulation — panel -> converter -> chip(s) -> controller.  This
module owns that loop *once*: :class:`DayEngine` steps the environment
trace, solves the panel operating point, runs the automatic-transfer-switch
(ATS) bookkeeping, books energy into a conservation ledger, and emits the
shared telemetry (supply-switch events, the end-of-day counters, and the
span wrapping the run).

What differs between scenarios — how the load reacts to the available
supply — is expressed as a :class:`SupplyPolicy` strategy:

* :class:`~repro.core.policies.MPPTPolicy` — the SolarCore controller
  (IC / RR / Opt load tuning) of :func:`repro.core.simulation.run_day`.
* :class:`~repro.core.policies.FixedBudgetPolicy` — the Fixed-Power
  baseline of :func:`repro.core.simulation.run_day_fixed`.
* :class:`~repro.core.policies.BatteryPolicy` — the battery-equipped
  baseline of :func:`repro.core.simulation.run_day_battery`.
* :class:`~repro.fullsystem.simulation.FullSystemPolicy` — the whole-server
  scenario of :func:`repro.fullsystem.simulation.run_day_fullsystem`.
* :class:`~repro.rack.simulation.RackPolicy` — N per-node allocators under
  one coordinator, :func:`repro.rack.simulation.run_day_rack`.

What is *remembered* about each step is expressed as a
:class:`SeriesRecorder`: the base recorder accumulates the series every
result shares (minutes, MPP power, consumed power, throughput, on-solar
flags, utility energy, solar-retired instructions); result-specific
recorders extend it and build the public result dataclasses.

Adding a new supply policy is therefore a ~100-line plugin — subclass
:class:`SupplyPolicy`, pick or extend a recorder, and wire a thin public
``run_day_*`` shim — instead of a forked copy of the stepping loop.  See
DESIGN.md section 9 for a walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SolarCoreConfig
from repro.environment.trace import EnvironmentTrace
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.events import EnergyBalanceEvent, SupplySwitchEvent

__all__ = [
    "StepContext",
    "StepSample",
    "EnergyLedger",
    "SupplyPolicy",
    "SeriesRecorder",
    "DayEngine",
]


@dataclass(frozen=True)
class StepContext:
    """Everything the engine knows about the current minute step.

    Attributes:
        index: Step index into the environment trace.
        minute: Sample time [minutes since midnight].
        irradiance: Plane-of-array irradiance [W/m^2].
        ambient_c: Ambient temperature [C].
        cell_temp: PV cell temperature [C] (NOCT model).
        mpp: Panel maximum-power operating point at this step.
        dt: Step length [minutes].
        telemetry: The run's telemetry hub (null hub when disabled).
    """

    index: int
    minute: float
    irradiance: float
    ambient_c: float
    cell_temp: float
    mpp: object
    dt: float
    telemetry: object


@dataclass
class StepSample:
    """What a policy reports back about one executed step.

    Attributes:
        consumed_w: Power drawn from the panel this step [W] (zero while
            the load runs from the utility).
        throughput_gips: Load throughput after the step [GIPS].
        utility_w: Power drawn from the grid this step [W] (zero while
            solar-powered).
        retired_ginst: Instructions retired this step while solar-powered
            [Ginst].
        system_utility: Weighted service level (full-system scenario only).
    """

    consumed_w: float
    throughput_gips: float
    utility_w: float = 0.0
    retired_ginst: float = 0.0
    system_utility: float | None = None


@dataclass
class EnergyLedger:
    """Per-day energy conservation bookkeeping.

    The engine books every step into this ledger independently of the
    recorder's series, so the invariant *solar energy in + utility energy
    in == load energy out* can be checked against a second accumulation
    path (the result's numpy-summed series).

    Attributes:
        solar_wh: Energy delivered by the panel to the load [Wh].
        utility_wh: Energy delivered by the grid to the load [Wh].
        load_wh: Energy the load consumed [Wh].
    """

    solar_wh: float = 0.0
    utility_wh: float = 0.0
    load_wh: float = 0.0

    def book(self, solar: bool, sample: StepSample, dt: float) -> None:
        """Book one step's energy flows over ``dt`` minutes."""
        delivered_solar = sample.consumed_w if solar else 0.0
        self.solar_wh += delivered_solar * dt / 60.0
        self.utility_wh += sample.utility_w * dt / 60.0
        self.load_wh += (delivered_solar + sample.utility_w) * dt / 60.0

    @property
    def residual_wh(self) -> float:
        """Conservation residual: supply booked minus load booked [Wh]."""
        return (self.solar_wh + self.utility_wh) - self.load_wh


class SupplyPolicy:
    """Strategy protocol: how the load follows (or ignores) the supply.

    A policy owns the load model (chip / server / rack) and every control
    decision — tracking triggers, budget allocation, DVFS settings — while
    the :class:`DayEngine` owns the loop, the trace, the ATS, the ledger,
    and shared telemetry.

    Subclasses implement the per-step hooks below.  ATS-governed policies
    (``uses_ats = True``) provide :meth:`floor_power`; self-governed ones
    (the Fixed-Power threshold rule, the battery's always-harvest rule)
    set ``uses_ats = False`` and provide :meth:`solar_eligible`.
    """

    #: Human-readable policy name recorded into results.
    name: str = "policy"

    #: Whether the engine's automatic transfer switch picks the source.
    uses_ats: bool = True

    def floor_power(self, ctx: StepContext) -> float:
        """Minimum sustainable load power [W] offered to the ATS."""
        raise NotImplementedError

    def solar_eligible(self, ctx: StepContext) -> bool:
        """Source rule for non-ATS policies: run from the panel now?"""
        raise NotImplementedError

    def enter_solar(self, ctx: StepContext) -> None:
        """Soft-start hook: the step transitions utility -> solar."""

    def solar_step(self, ctx: StepContext) -> StepSample:
        """Run one solar-powered step; return what to record."""
        raise NotImplementedError

    def utility_step(self, ctx: StepContext) -> StepSample:
        """Run one grid-powered step; return what to record."""
        raise NotImplementedError

    def final_telemetry(self, tel) -> None:
        """End-of-day counters (called only when telemetry is enabled)."""


class SeriesRecorder:
    """Accumulates the per-step series every day result shares.

    Subclasses add scenario-specific series and implement :meth:`build`,
    turning the accumulated state (plus the policy's own accounting) into
    the public result dataclass.
    """

    def __init__(self) -> None:
        self.minutes: list[float] = []
        self.mpp_w: list[float] = []
        self.consumed_w: list[float] = []
        self.throughput: list[float] = []
        self.on_solar: list[bool] = []
        self.retired_solar: float = 0.0
        self.utility_wh: float = 0.0

    def record(self, ctx: StepContext, solar: bool, sample: StepSample) -> None:
        self.minutes.append(ctx.minute)
        self.mpp_w.append(ctx.mpp.power)
        self.consumed_w.append(sample.consumed_w)
        self.throughput.append(sample.throughput_gips)
        self.on_solar.append(solar)
        self.retired_solar += sample.retired_ginst
        self.utility_wh += sample.utility_w * ctx.dt / 60.0

    def build(self, engine: "DayEngine"):
        """The scenario's result object for the finished day."""
        raise NotImplementedError


@dataclass
class DayEngine:
    """One minute-stepped day co-simulation, parameterized by policy.

    The single stepping loop behind ``run_day``, ``run_day_fixed``,
    ``run_day_battery``, ``run_day_fullsystem``, and ``run_day_rack``.

    Attributes:
        array: The PV array (panel or farm).
        trace: The day's environment trace.
        config: Simulation parameters.
        policy: The supply policy driving the load.
        recorder: The accumulator building the day's result.
        telemetry: Telemetry hub (defaults to the process-wide hub).
        span_name: Span wrapping the run (None disables the span).
        span_attrs: Attributes attached to the span.
        faults: Optional :class:`~repro.faults.scheduler.FaultScheduler`
            driving deterministic fault injection (None = fault-free fast
            path; the loop pays one ``is not None`` check per step).
    """

    array: PVArray
    trace: EnvironmentTrace
    config: SolarCoreConfig
    policy: SupplyPolicy
    recorder: SeriesRecorder
    telemetry: object = None
    span_name: str | None = None
    span_attrs: dict = field(default_factory=dict)
    faults: object | None = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = telemetry_hub.current()
        self.ats = (
            AutomaticTransferSwitch(self.config.ats_margin)
            if self.policy.uses_ats
            else None
        )
        if (
            self.ats is not None
            and self.faults is not None
            and self.faults.has("ats_stuck", "ats_latency")
        ):
            from repro.faults.injectors import FaultyATS

            self.ats = FaultyATS(self.ats, self.faults)
        self.ledger = EnergyLedger()
        # Table-solver mode: resolve the interpolation surfaces for the
        # engine's MPP queries and for the policy's controller (if any).
        # get_surfaces returns None — with one warning — for devices the
        # closed form cannot represent (fault wrappers, shaded strings),
        # in which case the run silently stays on the exact solvers.
        self.surfaces = None
        if self.config.solver == "table":
            from repro.power.surface import get_surfaces

            self.surfaces = get_surfaces(self.array)
            controller = getattr(self.policy, "controller", None)
            if controller is not None:
                if controller.array is self.array:
                    controller.surfaces = self.surfaces
                else:
                    controller.surfaces = get_surfaces(controller.array)

    def run(self):
        """Step the whole day; return the recorder's built result."""
        tel = self.telemetry
        prof = tel.profile
        if not prof.enabled:
            if self.span_name is None:
                return self._run(tel)
            with tel.span(self.span_name, **self.span_attrs):
                return self._run(tel)
        attrs = self.span_attrs
        cell = (
            (str(attrs["location"]), attrs["month"])
            if "location" in attrs and "month" in attrs
            else None
        )
        label = self.span_name or self.policy.name
        if "mix" in attrs:
            label = f"{label} mix={attrs['mix']}"
        with prof.day(label, cell):
            if self.span_name is None:
                return self._run(tel)
            with tel.span(self.span_name, **self.span_attrs):
                return self._run(tel)

    def _run(self, tel):
        policy = self.policy
        recorder = self.recorder
        trace = self.trace
        array = self.array
        surfaces = self.surfaces
        dt = self.config.step_minutes
        on_solar_prev = False
        # Batched fast path: when the table solver is active and nothing
        # requires per-step hooks (no fault injection, no event telemetry),
        # supported policies can be evaluated as NumPy array programs over
        # whole spans of minutes.  ``run_fast`` fills the recorder and the
        # ledger and returns True, or returns False to keep the scalar loop.
        if surfaces is not None and self.faults is None and not tel.enabled:
            from repro.core import fastday

            if fastday.run_fast(self, tel):
                return self._finish(tel)
        # Per-phase profiling: `profiling` is hoisted once, so the default
        # disabled path pays one local-bool check per phase site; enabled
        # profiling books each step region into an exclusive `step.*`
        # partition phase (see repro.telemetry.profiling).
        prof = tel.profile
        profiling = prof.enabled
        clock = prof.clock
        t0 = t1 = t2 = t3 = t4 = 0.0

        for index in range(len(trace.minutes) - 1):
            if profiling:
                t0 = clock()
            minute = float(trace.minutes[index])
            irradiance = float(trace.irradiance[index])
            ambient = float(trace.ambient_c[index])
            if self.faults is not None:
                irradiance = self.faults.begin_step(minute, irradiance, tel)
            cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
            if profiling:
                t1 = clock()
                prof.add("step.trace", t1 - t0)
            mpp = (
                surfaces.mpp(irradiance, cell_temp)
                if surfaces is not None
                else find_mpp(array, irradiance, cell_temp)
            )
            if profiling:
                t2 = clock()
                prof.add("step.mpp_solve", t2 - t1)
            ctx = StepContext(
                index=index,
                minute=minute,
                irradiance=irradiance,
                ambient_c=ambient,
                cell_temp=cell_temp,
                mpp=mpp,
                dt=dt,
                telemetry=tel,
            )

            if self.ats is not None:
                floor_w = policy.floor_power(ctx)
                source = self.ats.update(mpp.power, floor_w)
                on_solar = source is PowerSource.SOLAR
                if on_solar is not on_solar_prev and tel.enabled:
                    tel.count("sim.supply_switches")
                    tel.emit(
                        SupplySwitchEvent(
                            minute=minute,
                            source=source.value,
                            available_solar_w=mpp.power,
                            load_floor_w=floor_w,
                        )
                    )
            else:
                on_solar = policy.solar_eligible(ctx)
            if profiling:
                t3 = clock()
                prof.add("step.supply", t3 - t2)

            if on_solar:
                if not on_solar_prev:
                    policy.enter_solar(ctx)
                sample = policy.solar_step(ctx)
            else:
                sample = policy.utility_step(ctx)
            if profiling:
                t4 = clock()
                prof.add("step.policy", t4 - t3)
            recorder.record(ctx, on_solar, sample)
            self.ledger.book(on_solar, sample, dt)
            if profiling:
                prof.add("step.record", clock() - t4)
            on_solar_prev = on_solar

        return self._finish(tel)

    def _finish(self, tel):
        """End-of-day bookkeeping shared by the scalar and batched loops."""
        policy = self.policy
        recorder = self.recorder
        trace = self.trace
        prof = tel.profile
        profiling = prof.enabled
        clock = prof.clock
        t0 = 0.0
        if profiling:
            t0 = clock()
        if tel.enabled:
            tel.count("sim.days")
            tel.emit(
                EnergyBalanceEvent(
                    minute=float(trace.minutes[0]),
                    policy=policy.name,
                    solar_wh=self.ledger.solar_wh,
                    utility_wh=self.ledger.utility_wh,
                    load_wh=self.ledger.load_wh,
                    residual_wh=self.ledger.residual_wh,
                )
            )
            policy.final_telemetry(tel)
        result = recorder.build(self)
        if profiling:
            prof.add("day.build", clock() - t0)
        return result
