"""The paper's contribution: SolarCore MPPT control and load optimization."""

from repro.core.campaign import CampaignCell, CampaignResult, run_campaign
from repro.core.config import SolarCoreConfig
from repro.core.engine import (
    DayEngine,
    EnergyLedger,
    SeriesRecorder,
    StepContext,
    StepSample,
    SupplyPolicy,
)
from repro.core.forecast import SupplyPredictor
from repro.core.controller import SolarCoreController, TrackingResult
from repro.core.policies import (
    BatteryPolicy,
    BatteryRecorder,
    DayResultRecorder,
    FixedBudgetPolicy,
    MPPTPolicy,
)
from repro.core.fixed_power import allocate_budget, lp_allocation_bound
from repro.core.load_tuning import (
    TUNER_NAMES,
    IndividualCoreTuner,
    LoadTuner,
    OptTuner,
    RoundRobinTuner,
    make_tuner,
)
from repro.core.simulation import (
    BatteryDayResult,
    DayResult,
    battery_day_engine,
    fixed_day_engine,
    mppt_day_engine,
    run_day,
    run_day_battery,
    run_day_fixed,
)
from repro.core.tpr import (
    TPREntry,
    best_downgrade_core,
    best_upgrade_core,
    build_allocation_table,
    downgrade_tpr,
    upgrade_tpr,
)

__all__ = [
    "SolarCoreConfig",
    "SolarCoreController",
    "TrackingResult",
    "LoadTuner",
    "OptTuner",
    "RoundRobinTuner",
    "IndividualCoreTuner",
    "make_tuner",
    "TUNER_NAMES",
    "TPREntry",
    "upgrade_tpr",
    "downgrade_tpr",
    "build_allocation_table",
    "best_upgrade_core",
    "best_downgrade_core",
    "allocate_budget",
    "lp_allocation_bound",
    "DayResult",
    "BatteryDayResult",
    "run_day",
    "run_day_fixed",
    "run_day_battery",
    "mppt_day_engine",
    "fixed_day_engine",
    "battery_day_engine",
    "DayEngine",
    "EnergyLedger",
    "SeriesRecorder",
    "StepContext",
    "StepSample",
    "SupplyPolicy",
    "MPPTPolicy",
    "FixedBudgetPolicy",
    "BatteryPolicy",
    "DayResultRecorder",
    "BatteryRecorder",
    "CampaignCell",
    "CampaignResult",
    "run_campaign",
    "SupplyPredictor",
]
