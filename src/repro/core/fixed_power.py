"""Fixed-power-budget management (the paper's Fixed-Power baseline, Table 6).

Conventional multi-core power management assumes a constant budget ``B`` and
optimizes throughput under it (linear programming in Teodorescu & Torrellas,
the paper's ref [15]).  In a direct-coupled solar system, ``B`` doubles as
the power-transfer threshold: the chip runs from the panel only while the
panel can supply at least ``B``, otherwise it falls back to the utility.

Two allocators are provided:

* :func:`allocate_budget` — discrete greedy ascent by throughput-power
  ratio; this is what the simulated scheme uses.
* :func:`lp_allocation_bound` — the fractional linear-programming relaxation
  (one assignment variable per core x level); its optimum upper-bounds any
  discrete allocation and anchors the greedy allocator in tests.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.core.tpr import upgrade_tpr
from repro.multicore.chip import MultiCoreChip

__all__ = ["allocate_budget", "lp_allocation_bound"]


def allocate_budget(
    chip: MultiCoreChip,
    budget_w: float,
    minute: float,
    allow_gating: bool = True,
) -> float:
    """Assign per-core DVFS levels maximizing throughput under ``budget_w``.

    Starts every core at the bottom level and repeatedly upgrades the core
    with the best throughput-power ratio while the aggregate stays within
    budget.  When the budget cannot sustain all cores even at the bottom
    level and ``allow_gating`` is set, the least efficient cores are
    power-gated until the floor fits.  Mutates the chip's state in place.

    Returns:
        The chip power [W] after allocation.

    Raises:
        ValueError: If the budget cannot sustain even the minimum
            configuration.
    """
    chip.ungate_all()
    chip.set_all_min()
    power = chip.total_power_at(minute)
    if power > budget_w and allow_gating:
        # Shed whole cores, least efficient first, until the floor fits.
        by_efficiency = sorted(
            chip.cores,
            key=lambda c: c.throughput_at(minute) / max(c.power_at(minute), 1e-12),
        )
        for core in by_efficiency:
            if power <= budget_w or len(chip.active_cores()) == 1:
                break
            power -= core.power_at(minute)
            core.gate()
        if power > budget_w:
            # Keeping the most efficient core still busts the budget; fall
            # back to the cheapest core (the eligibility floor's reference).
            cheapest = min(chip.cores, key=lambda c: c.power_at_level(0, minute))
            for core in chip.cores:
                if core is not cheapest:
                    core.gate()
            cheapest.ungate()
            cheapest.set_level(cheapest.table.min_level)
            power = chip.total_power_at(minute)
    if power > budget_w:
        raise ValueError(
            f"budget {budget_w:.1f} W below the chip's floor {power:.1f} W"
        )
    while True:
        # Among affordable upgrades, take the best TPR.
        best_core = None
        best_tpr = float("-inf")
        for core in chip.cores:
            tpr = upgrade_tpr(core, minute)
            if tpr is None or tpr <= best_tpr:
                continue
            delta = core.power_at_level(core.level + 1, minute) - core.power_at(minute)
            if power + delta <= budget_w:
                best_core, best_tpr = core, tpr
        if best_core is None:
            return power
        delta = (
            best_core.power_at_level(best_core.level + 1, minute)
            - best_core.power_at(minute)
        )
        best_core.set_level(best_core.level + 1)
        power += delta


def lp_allocation_bound(chip: MultiCoreChip, budget_w: float, minute: float) -> float:
    """Optimal throughput [GIPS] of the fractional LP relaxation.

    Variables ``x[i, l]`` select (fractionally) level ``l`` for core ``i``:

        maximize   sum x[i,l] * T[i,l]
        subject to sum_l x[i,l] = 1       for every core i
                   sum x[i,l] * P[i,l] <= budget - uncore
                   x >= 0

    The chip's constant uncore power is paid off the top, as in the greedy
    allocator.  Does not mutate the chip.
    """
    budget_w = budget_w - chip.uncore_power_w
    if budget_w <= 0:
        raise ValueError("budget does not even cover the uncore power")
    n_cores = chip.n_cores
    # Per-core level counts: heterogeneous chips have per-type table depths.
    level_counts = [len(core.table) for core in chip.cores]
    offsets = np.concatenate(([0], np.cumsum(level_counts)))
    n_vars = int(offsets[-1])
    throughput = np.empty(n_vars)
    power = np.empty(n_vars)
    for i, core in enumerate(chip.cores):
        for level in range(level_counts[i]):
            throughput[offsets[i] + level] = core.throughput_at_level(level, minute)
            power[offsets[i] + level] = core.power_at_level(level, minute)

    # One-hot (fractional) selection rows.
    a_eq = np.zeros((n_cores, n_vars))
    for i in range(n_cores):
        a_eq[i, offsets[i] : offsets[i + 1]] = 1.0

    result = linprog(
        c=-throughput,
        A_ub=power.reshape(1, -1),
        b_ub=np.array([budget_w]),
        A_eq=a_eq,
        b_eq=np.ones(n_cores),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP allocation failed: {result.message}")
    return float(-result.fun)
