"""Day-long co-simulation of panel, converter, chip, and controller.

This is the experiment engine behind every figure in the paper's Section 6:
it steps a meteorological day trace minute by minute, triggers MPP tracking
events (periodic and supply-change driven), books energy against the solar
and utility supplies, and accounts retired instructions for the
performance-time product.

Two entry points:

* :func:`run_day` — a SolarCore (MPPT) policy day: IC, RR, or Opt tuning.
* :func:`run_day_fixed` — the Fixed-Power baseline under a budget/threshold.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.fixed_power import allocate_budget
from repro.core.forecast import SupplyPredictor
from repro.core.load_tuning import make_tuner
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.multicore.chip import MultiCoreChip
from repro.multicore.dvfs import DVFSTable
from repro.power.converter import DCDCConverter
from repro.power.psu import AutomaticTransferSwitch, PowerSource
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.pv.mpp import find_mpp
from repro.telemetry import hub as telemetry_hub
from repro.telemetry.events import (
    BatteryEvent,
    DVFSAllocationEvent,
    SupplySwitchEvent,
    TrackingEvent,
)
from repro.workloads.mixes import WorkloadMix, mix as mix_by_name

__all__ = ["DayResult", "BatteryDayResult", "run_day", "run_day_fixed", "run_day_battery"]

log = logging.getLogger(__name__)


@dataclass
class DayResult:
    """Everything measured over one simulated day.

    Attributes:
        mix_name: Workload mix identifier.
        location_code: Station code.
        month: Calendar month simulated.
        policy: Power-management policy name.
        minutes: Sample times [minutes since midnight].
        mpp_w: Panel maximum (MPP) power at each step [W].
        consumed_w: Power actually drawn by the chip at each step [W]
            (zero while on the utility).
        throughput_gips: Chip throughput at each step [GIPS].
        on_solar: Whether the chip ran from the panel at each step.
        retired_ginst_solar: Instructions retired while solar-powered [Ginst].
        retired_ginst_total: Instructions retired over the whole day [Ginst].
        utility_wh: Energy drawn from the grid [Wh].
        tracking_events: Number of MPPT tracking events performed.
        dvfs_transitions: Real per-core DVFS transitions over the day.
        dvfs_transition_volts: Cumulative DVFS voltage swing [V] (the input
            to VRM transition-overhead accounting).
    """

    mix_name: str
    location_code: str
    month: int
    policy: str
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    throughput_gips: np.ndarray
    on_solar: np.ndarray
    retired_ginst_solar: float
    retired_ginst_total: float
    utility_wh: float
    tracking_events: int = 0
    dvfs_transitions: int = 0
    dvfs_transition_volts: float = 0.0

    # ------------------------------------------------------------------
    # Derived metrics (paper Section 6 definitions)
    # ------------------------------------------------------------------
    @property
    def step_minutes(self) -> float:
        """Simulation step [minutes]."""
        return float(self.minutes[1] - self.minutes[0])

    @property
    def solar_available_wh(self) -> float:
        """Theoretical maximum solar supply: MPP power integrated [Wh]."""
        return float(np.sum(self.mpp_w)) * self.step_minutes / 60.0

    @property
    def solar_used_wh(self) -> float:
        """Solar energy the chip actually consumed [Wh]."""
        return (
            float(np.sum(self.consumed_w[self.on_solar])) * self.step_minutes / 60.0
        )

    @property
    def energy_utilization(self) -> float:
        """Consumed / theoretical-maximum solar energy (Figure 18)."""
        available = self.solar_available_wh
        if available <= 0.0:
            return 0.0
        return self.solar_used_wh / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime spent drawing from the panel (Figure 19)."""
        return float(np.mean(self.on_solar))

    @property
    def ptp(self) -> float:
        """Performance-time product: instructions committed while
        solar-powered over the day [Ginst] (paper Section 4.3)."""
        return self.retired_ginst_solar

    @property
    def tracking_errors(self) -> np.ndarray:
        """Per-step relative tracking error ``|P - B| / B`` while on solar."""
        mask = self.on_solar & (self.mpp_w > 0)
        budget = self.mpp_w[mask]
        actual = self.consumed_w[mask]
        if len(budget) == 0:
            return np.array([])
        return np.abs(actual - budget) / budget

    @property
    def mean_tracking_error(self) -> float:
        """Mean relative tracking error over the solar-powered steps
        (Table 7)."""
        errors = self.tracking_errors
        if len(errors) == 0:
            return 0.0
        return float(np.mean(errors))


@dataclass
class _DaySeries:
    """Mutable accumulators for one simulated day."""

    minutes: list[float] = field(default_factory=list)
    mpp_w: list[float] = field(default_factory=list)
    consumed_w: list[float] = field(default_factory=list)
    throughput: list[float] = field(default_factory=list)
    on_solar: list[bool] = field(default_factory=list)
    retired_solar: float = 0.0
    utility_wh: float = 0.0

    def record(
        self,
        minute: float,
        mpp: float,
        consumed: float,
        throughput: float,
        solar: bool,
    ) -> None:
        self.minutes.append(minute)
        self.mpp_w.append(mpp)
        self.consumed_w.append(consumed)
        self.throughput.append(throughput)
        self.on_solar.append(solar)


def _resolve_mix(workload: WorkloadMix | str) -> WorkloadMix:
    if isinstance(workload, str):
        return mix_by_name(workload)
    return workload


def _finish(
    series: _DaySeries,
    chip: MultiCoreChip,
    workload: WorkloadMix,
    location: Location,
    month: int,
    policy: str,
    tracking_events: int,
) -> DayResult:
    return DayResult(
        mix_name=workload.name,
        location_code=location.code,
        month=month,
        policy=policy,
        minutes=np.array(series.minutes),
        mpp_w=np.array(series.mpp_w),
        consumed_w=np.array(series.consumed_w),
        throughput_gips=np.array(series.throughput),
        on_solar=np.array(series.on_solar, dtype=bool),
        retired_ginst_solar=series.retired_solar,
        retired_ginst_total=chip.retired_ginst,
        utility_wh=series.utility_wh,
        tracking_events=tracking_events,
        dvfs_transitions=chip.total_transitions,
        dvfs_transition_volts=chip.total_transition_volts,
    )


def run_day(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    policy: str = "MPPT&Opt",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    dvfs_table: DVFSTable | None = None,
    sensor: IVSensor | None = None,
    telemetry=None,
) -> DayResult:
    """Simulate one day under a SolarCore MPPT policy.

    Args:
        workload: Table 5 mix (name or object).
        location: Station to simulate.
        month: Calendar month (paper: 1, 4, 7, or 10).
        policy: Load-adaptation policy: ``MPPT&IC``, ``MPPT&RR``, or
            ``MPPT&Opt``.
        config: Controller/simulation parameters.
        array: PV array (defaults to one BP3180N module).
        trace: Pre-generated environment trace (defaults to the standard
            seeded trace for the station/month).
        seed: Environment seed when ``trace`` is not given.
        dvfs_table: Custom DVFS table (defaults to the paper's 6 levels;
            the granularity ablation passes refined tables).
        sensor: Front-end I/V sensor model (ideal by default; the
            robustness study injects noise/quantization here).
        telemetry: Telemetry hub override (default: the process-wide hub).

    Returns:
        The day's :class:`DayResult`.
    """
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = _resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    with tel.span(
        "run_day",
        mix=workload.name,
        location=location.code,
        month=month,
        policy=policy,
    ):
        return _run_day_inner(
            workload, location, month, policy, cfg, array, trace,
            dvfs_table, sensor, tel,
        )


def _run_day_inner(
    workload: WorkloadMix,
    location: Location,
    month: int,
    policy: str,
    cfg: SolarCoreConfig,
    array: PVArray,
    trace: EnvironmentTrace,
    dvfs_table: DVFSTable | None,
    sensor: IVSensor | None,
    tel,
) -> DayResult:
    chip = MultiCoreChip(workload, table=dvfs_table)
    chip.set_all_levels(chip.table.min_level)
    converter = DCDCConverter()
    tuner = make_tuner(policy, allow_gating=cfg.enable_pcpg)
    controller = SolarCoreController(
        array, converter, chip, tuner, cfg, sensor, telemetry=tel
    )
    ats = AutomaticTransferSwitch(cfg.ats_margin)
    predictor = SupplyPredictor() if cfg.adaptive_margin else None

    series = _DaySeries()
    dt = cfg.step_minutes
    last_track_minute = -float("inf")
    last_track_mpp = None
    prev_source = PowerSource.UTILITY
    tracking_events = 0
    utility_level = (
        chip.table.max_level if cfg.utility_level is None else cfg.utility_level
    )

    for i in range(len(trace.minutes) - 1):
        minute = float(trace.minutes[i])
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        mpp = find_mpp(array, irradiance, cell_temp)

        floor_w = chip.floor_power_at(minute, with_gating=cfg.enable_pcpg)
        source = ats.update(mpp.power, floor_w)
        if source is not prev_source and tel.enabled:
            tel.count("sim.supply_switches")
            tel.emit(
                SupplySwitchEvent(
                    minute=minute,
                    source=source.value,
                    available_solar_w=mpp.power,
                    load_floor_w=floor_w,
                )
            )
        if source is PowerSource.SOLAR:
            if prev_source is not PowerSource.SOLAR:
                # Soft-start: engage the panel at the minimum load.
                chip.ungate_all()
                chip.set_all_levels(chip.table.min_level)
                last_track_minute = -float("inf")
                if predictor is not None:
                    predictor.reset()
            if predictor is not None:
                predictor.observe(minute, mpp.power)
            supply_changed = (
                cfg.supply_change_fraction is not None
                and last_track_mpp is not None
                and last_track_mpp > 0
                and abs(mpp.power - last_track_mpp) / last_track_mpp
                > cfg.supply_change_fraction
            )
            if minute - last_track_minute >= cfg.tracking_interval_min or supply_changed:
                if predictor is not None:
                    controller.margin_override = predictor.adaptive_margin(
                        cfg.tracking_interval_min,
                        floor=cfg.adaptive_margin_floor,
                        ceiling=cfg.power_margin,
                    )
                result = controller.track(irradiance, cell_temp, minute)
                if cfg.realloc_after_track and not result.load_saturated:
                    # Ref [15]-style global reallocation under the budget
                    # the tracking event just discovered.
                    target = result.best_power_w * (1.0 - cfg.power_margin)
                    if target >= chip.floor_power_at(minute, cfg.enable_pcpg):
                        allocate_budget(
                            chip, target, minute, allow_gating=cfg.enable_pcpg
                        )
                        if tel.enabled:
                            tel.count("sim.budget_allocations")
                            tel.emit(
                                DVFSAllocationEvent(
                                    minute=minute,
                                    budget_w=target,
                                    allocated_w=chip.total_power_at(minute),
                                )
                            )
                tracking_events += 1
                last_track_minute = minute
                last_track_mpp = mpp.power
                if tel.enabled:
                    tel.count("sim.tracking_events")
                    tel.emit(
                        TrackingEvent(
                            minute=minute,
                            mix=workload.name,
                            policy=tuner.name,
                            iterations=result.iterations,
                            power_w=result.power_w,
                            best_power_w=result.best_power_w,
                            mpp_w=mpp.power,
                            rail_voltage=result.rail_voltage,
                            load_saturated=result.load_saturated,
                            triggered_by="supply-change" if supply_changed else "periodic",
                        )
                    )
            # Between tracking events the converter's fast inner loop servos
            # k to hold the rail at nominal, so the chip draws exactly its
            # DVFS-determined demand — bounded by what the panel can give.
            consumed = min(chip.total_power_at(minute), mpp.power)
            retired = chip.advance(minute, dt)
            series.retired_solar += retired
            series.record(
                minute, mpp.power, consumed, chip.total_throughput_at(minute), True
            )
        else:
            # Conventional CMP on grid power.
            chip.ungate_all()
            chip.set_all_levels(utility_level)
            consumed = chip.total_power_at(minute)
            series.utility_wh += consumed * dt / 60.0
            chip.advance(minute, dt)
            series.record(
                minute, mpp.power, 0.0, chip.total_throughput_at(minute), False
            )
        prev_source = source

    if tel.enabled:
        tel.count("sim.days")
        tel.count("sim.dvfs_transitions", chip.total_transitions)
    day = _finish(series, chip, workload, location, month, tuner.name, tracking_events)
    log.debug(
        "run_day %s @ %s m%d (%s): %d tracking events, utilization %.1f%%",
        workload.name, location.code, month, tuner.name,
        tracking_events, 100.0 * day.energy_utilization,
    )
    return day


def run_day_fixed(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    budget_w: float,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
) -> DayResult:
    """Simulate one day under the Fixed-Power baseline.

    The chip draws from the panel only while the panel can supply
    ``budget_w`` (the power-transfer threshold); the per-core allocation
    maximizes throughput under that constant budget and is refreshed at the
    tracking cadence using profiled IPC.

    Args/returns: as :func:`run_day`, plus ``budget_w`` [W].
    """
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = _resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    with tel.span(
        "run_day_fixed",
        mix=workload.name,
        location=location.code,
        month=month,
        budget_w=budget_w,
    ):
        return _run_day_fixed_inner(
            workload, location, month, budget_w, cfg, array, trace, tel
        )


def _run_day_fixed_inner(
    workload: WorkloadMix,
    location: Location,
    month: int,
    budget_w: float,
    cfg: SolarCoreConfig,
    array: PVArray,
    trace: EnvironmentTrace,
    tel,
) -> DayResult:
    chip = MultiCoreChip(workload)

    series = _DaySeries()
    dt = cfg.step_minutes
    last_alloc_minute = -float("inf")
    utility_level = (
        chip.table.max_level if cfg.utility_level is None else cfg.utility_level
    )

    for i in range(len(trace.minutes) - 1):
        minute = float(trace.minutes[i])
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        mpp = find_mpp(array, irradiance, cell_temp)

        # Solar-eligible only when the panel covers the full fixed budget and
        # the budget covers the chip's floor configuration.
        floor_power = chip.floor_power_at(minute, with_gating=cfg.enable_pcpg)
        if mpp.power >= budget_w and budget_w >= floor_power:
            if minute - last_alloc_minute >= cfg.tracking_interval_min:
                allocate_budget(chip, budget_w, minute, allow_gating=cfg.enable_pcpg)
                last_alloc_minute = minute
                if tel.enabled:
                    tel.count("sim.budget_allocations")
                    tel.emit(
                        DVFSAllocationEvent(
                            minute=minute,
                            budget_w=budget_w,
                            allocated_w=chip.total_power_at(minute),
                        )
                    )
            consumed = min(chip.total_power_at(minute), budget_w)
            retired = chip.advance(minute, dt)
            series.retired_solar += retired
            series.record(
                minute, mpp.power, consumed, chip.total_throughput_at(minute), True
            )
        else:
            chip.ungate_all()
            chip.set_all_levels(utility_level)
            consumed = chip.total_power_at(minute)
            series.utility_wh += consumed * dt / 60.0
            chip.advance(minute, dt)
            series.record(
                minute, mpp.power, 0.0, chip.total_throughput_at(minute), False
            )
            last_alloc_minute = -float("inf")

    if tel.enabled:
        tel.count("sim.days")
        tel.count("sim.dvfs_transitions", chip.total_transitions)
    return _finish(
        series, chip, workload, location, month, f"Fixed-{budget_w:.0f}W", 0
    )


@dataclass(frozen=True)
class BatteryDayResult:
    """Outcome of one day on the battery-equipped baseline (paper Fig 2-C).

    Attributes:
        mix_name: Workload mix identifier.
        location_code: Station code.
        month: Calendar month simulated.
        derating: Overall de-rating factor applied to the harvest.
        harvested_wh: Usable stored solar energy after de-rating [Wh].
        runtime_minutes: How long the stored energy ran the chip at full
            speed (may exceed daytime — the battery runs into the night).
        ptp: Instructions committed from the stored solar energy [Ginst].
    """

    mix_name: str
    location_code: str
    month: int
    derating: float
    harvested_wh: float
    runtime_minutes: float
    ptp: float


def run_day_battery(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    derating: float = 0.81,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
) -> BatteryDayResult:
    """Simulate one day on the battery-equipped MPPT baseline.

    The charge controller harvests the panel's MPP power all day; the
    de-rating chain (Table 3) scales the stored energy; the chip then runs
    at full speed from the stable battery supply until the stored solar
    energy is spent (the paper assumes a dynamic power monitor guarantees
    full consumption).  Paper Figure 21 uses ``derating=0.81`` (Battery-L)
    and ``0.92`` (Battery-U).

    Args/returns: as :func:`run_day`, plus the de-rating factor.
    """
    if not 0.0 < derating <= 1.0:
        raise ValueError(f"derating must be in (0, 1], got {derating}")
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = _resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)

    with tel.span(
        "run_day_battery",
        mix=workload.name,
        location=location.code,
        month=month,
        derating=derating,
    ):
        return _run_day_battery_inner(
            workload, location, month, derating, cfg, array, trace, tel
        )


def _run_day_battery_inner(
    workload: WorkloadMix,
    location: Location,
    month: int,
    derating: float,
    cfg: SolarCoreConfig,
    array: PVArray,
    trace: EnvironmentTrace,
    tel,
) -> BatteryDayResult:
    # Harvest: MPP power integrated over the day, then de-rated.
    dt = cfg.step_minutes
    harvested_wh = 0.0
    for i in range(len(trace.minutes) - 1):
        irradiance = float(trace.irradiance[i])
        ambient = float(trace.ambient_c[i])
        cell_temp = array.cell_temperature_from_ambient(irradiance, ambient)
        harvested_wh += find_mpp(array, irradiance, cell_temp).power * dt / 60.0
    harvested_wh *= derating
    if tel.enabled:
        tel.emit(
            BatteryEvent(
                minute=float(trace.minutes[0]),
                phase="harvested",
                energy_wh=harvested_wh,
                derating=derating,
            )
        )

    # Spend: full speed from a stable supply until the energy runs out.
    chip = MultiCoreChip(workload)
    chip.set_all_levels(chip.table.max_level)
    remaining_wh = harvested_wh
    minute = float(trace.minutes[0])
    while remaining_wh > 0.0:
        power = chip.total_power_at(minute)
        step_wh = power * dt / 60.0
        if step_wh >= remaining_wh:
            # Partial final step: run the exact fraction the energy allows.
            fraction = remaining_wh / step_wh
            chip.advance(minute, dt * fraction)
            minute += dt * fraction
            remaining_wh = 0.0
            break
        chip.advance(minute, dt)
        remaining_wh -= step_wh
        minute += dt

    if tel.enabled:
        tel.count("sim.days")
        tel.emit(
            BatteryEvent(
                minute=minute, phase="depleted", energy_wh=0.0, derating=derating
            )
        )
    return BatteryDayResult(
        mix_name=workload.name,
        location_code=location.code,
        month=month,
        derating=derating,
        harvested_wh=harvested_wh,
        runtime_minutes=minute - float(trace.minutes[0]),
        ptp=chip.retired_ginst,
    )
