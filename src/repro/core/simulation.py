"""Day-long co-simulation of panel, converter, chip, and controller.

This is the experiment surface behind every figure in the paper's
Section 6.  The actual minute-stepping loop lives in
:class:`repro.core.engine.DayEngine`; this module wires the three classic
scenarios to it as :class:`~repro.core.engine.SupplyPolicy` plugins and
keeps the stable public entry points:

* :func:`run_day` — a SolarCore (MPPT) policy day: IC, RR, or Opt tuning.
* :func:`run_day_fixed` — the Fixed-Power baseline under a budget/threshold.
* :func:`run_day_battery` — the battery-equipped MPPT baseline.

Each ``run_day*`` function also has a ``*_engine`` sibling returning the
configured-but-unrun :class:`~repro.core.engine.DayEngine`, for callers
that need the engine's energy ledger or want to compose policies directly.
"""

from __future__ import annotations

import logging

from repro.core.config import SolarCoreConfig
from repro.core.engine import DayEngine
from repro.core.policies import (
    BatteryPolicy,
    BatteryRecorder,
    DayResultRecorder,
    FixedBudgetPolicy,
    MPPTPolicy,
)
from repro.core.results import BatteryDayResult, DayResult
from repro.environment.irradiance import generate_trace
from repro.environment.locations import Location
from repro.environment.trace import EnvironmentTrace
from repro.faults import FaultSchedule, build_fault_kit
from repro.multicore.dvfs import DVFSTable
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.telemetry import hub as telemetry_hub
from repro.workloads.mixes import WorkloadMix, resolve_mix

__all__ = [
    "DayResult",
    "BatteryDayResult",
    "run_day",
    "run_day_fixed",
    "run_day_battery",
    "mppt_day_engine",
    "fixed_day_engine",
    "battery_day_engine",
]

log = logging.getLogger(__name__)


def mppt_day_engine(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    policy: str = "MPPT&Opt",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    dvfs_table: DVFSTable | None = None,
    sensor: IVSensor | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> DayEngine:
    """The configured :class:`DayEngine` behind :func:`run_day`."""
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)
    kit = build_fault_kit(faults)
    converter = None
    if kit is not None:
        # Wrap before the policy is built so engine MPP solves, controller
        # operating-point solves, and sensor reads all see the faulted view.
        array = kit.wrap_array(array)
        sensor = kit.wrap_sensor(sensor)
        converter = kit.make_converter()
    supply = MPPTPolicy(
        workload, policy, cfg, array,
        dvfs_table=dvfs_table, sensor=sensor, telemetry=tel,
        converter=converter,
    )
    return DayEngine(
        array=array,
        trace=trace,
        config=cfg,
        policy=supply,
        recorder=DayResultRecorder(workload, location, month),
        telemetry=tel,
        span_name="run_day",
        span_attrs=dict(
            mix=workload.name, location=location.code, month=month, policy=policy
        ),
        faults=kit.scheduler if kit is not None else None,
    )


def run_day(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    policy: str = "MPPT&Opt",
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    dvfs_table: DVFSTable | None = None,
    sensor: IVSensor | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> DayResult:
    """Simulate one day under a SolarCore MPPT policy.

    Args:
        workload: Table 5 mix (name or object).
        location: Station to simulate.
        month: Calendar month (paper: 1, 4, 7, or 10).
        policy: Load-adaptation policy: ``MPPT&IC``, ``MPPT&RR``, or
            ``MPPT&Opt``.
        config: Controller/simulation parameters.
        array: PV array (defaults to one BP3180N module).
        trace: Pre-generated environment trace (defaults to the standard
            seeded trace for the station/month).
        seed: Environment seed when ``trace`` is not given.
        dvfs_table: Custom DVFS table (defaults to the paper's 6 levels;
            the granularity ablation passes refined tables).
        sensor: Front-end I/V sensor model (ideal by default; the
            robustness study injects noise/quantization here).
        telemetry: Telemetry hub override (default: the process-wide hub).
        faults: Optional fault schedule (spec string or
            :class:`~repro.faults.schedule.FaultSchedule`) injecting timed
            sensor/PV/converter/supply/trace faults; None or an empty
            schedule leaves the run byte-identical to fault-free.

    Returns:
        The day's :class:`DayResult`.
    """
    engine = mppt_day_engine(
        workload, location, month, policy, config, array, trace, seed,
        dvfs_table, sensor, telemetry, faults,
    )
    day = engine.run()
    log.debug(
        "run_day %s @ %s m%d (%s): %d tracking events, utilization %.1f%%",
        day.mix_name, day.location_code, day.month, day.policy,
        day.tracking_events, 100.0 * day.energy_utilization,
    )
    return day


def fixed_day_engine(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    budget_w: float,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> DayEngine:
    """The configured :class:`DayEngine` behind :func:`run_day_fixed`."""
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)
    kit = build_fault_kit(faults)
    if kit is not None:
        # The baseline has no sensor/converter in the loop; only array-
        # and trace-level faults (plus engine-applied ones) can bite.
        array = kit.wrap_array(array)
    supply = FixedBudgetPolicy(workload, budget_w, cfg, telemetry=tel)
    return DayEngine(
        array=array,
        trace=trace,
        config=cfg,
        policy=supply,
        recorder=DayResultRecorder(workload, location, month),
        telemetry=tel,
        span_name="run_day_fixed",
        span_attrs=dict(
            mix=workload.name, location=location.code, month=month,
            budget_w=budget_w,
        ),
        faults=kit.scheduler if kit is not None else None,
    )


def run_day_fixed(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    budget_w: float,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> DayResult:
    """Simulate one day under the Fixed-Power baseline.

    The chip draws from the panel only while the panel can supply
    ``budget_w`` (the power-transfer threshold); the per-core allocation
    maximizes throughput under that constant budget and is refreshed at the
    tracking cadence using profiled IPC.

    Args/returns: as :func:`run_day`, plus ``budget_w`` [W].
    """
    engine = fixed_day_engine(
        workload, location, month, budget_w, config, array, trace, seed,
        telemetry, faults,
    )
    return engine.run()


def battery_day_engine(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    derating: float = 0.81,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> DayEngine:
    """The configured :class:`DayEngine` behind :func:`run_day_battery`."""
    if not 0.0 < derating <= 1.0:
        raise ValueError(f"derating must be in (0, 1], got {derating}")
    tel = telemetry if telemetry is not None else telemetry_hub.current()
    cfg = config or SolarCoreConfig()
    workload = resolve_mix(workload)
    array = array or PVArray()
    if trace is None:
        trace = generate_trace(location, month, seed=seed, step_minutes=cfg.step_minutes)
    kit = build_fault_kit(faults)
    if kit is not None:
        array = kit.wrap_array(array)
    supply = BatteryPolicy(workload, location, month, derating, cfg, telemetry=tel)
    return DayEngine(
        array=array,
        trace=trace,
        config=cfg,
        policy=supply,
        recorder=BatteryRecorder(),
        telemetry=tel,
        span_name="run_day_battery",
        span_attrs=dict(
            mix=workload.name, location=location.code, month=month,
            derating=derating,
        ),
        faults=kit.scheduler if kit is not None else None,
    )


def run_day_battery(
    workload: WorkloadMix | str,
    location: Location,
    month: int,
    derating: float = 0.81,
    config: SolarCoreConfig | None = None,
    array: PVArray | None = None,
    trace: EnvironmentTrace | None = None,
    seed: int | None = None,
    telemetry=None,
    faults: FaultSchedule | str | None = None,
) -> BatteryDayResult:
    """Simulate one day on the battery-equipped MPPT baseline.

    The charge controller harvests the panel's MPP power all day; the
    de-rating chain (Table 3) scales the stored energy; the chip then runs
    at full speed from the stable battery supply until the stored solar
    energy is spent (the paper assumes a dynamic power monitor guarantees
    full consumption).  Paper Figure 21 uses ``derating=0.81`` (Battery-L)
    and ``0.92`` (Battery-U).

    Args/returns: as :func:`run_day`, plus the de-rating factor.
    """
    engine = battery_day_engine(
        workload, location, month, derating, config, array, trace, seed,
        telemetry, faults,
    )
    return engine.run()
