"""Configuration of the SolarCore power-management system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.multicore.chip import NOMINAL_RAIL_V
from repro.multicore.spec import ChipSpec

__all__ = ["SolarCoreConfig"]


@dataclass(frozen=True)
class SolarCoreConfig:
    """Tunable parameters of the SolarCore controller and simulation.

    Attributes:
        rail_voltage: Nominal converter-output (chip rail) voltage [V]
            (the paper's ``Vdd`` target of the MPPT loop).
        rail_tolerance_v: Acceptance band around the nominal rail voltage
            during load matching [V].
        tracking_interval_min: Minutes between periodic MPPT triggers
            (paper: 10 minutes).
        supply_change_fraction: Relative MPP-power change since the last
            event that triggers an early (non-periodic) tracking event, or
            None for strictly periodic tracking (the paper's methodology).
        power_margin: Fractional backoff below the discovered maximum power
            (the paper's stabilizing power margin, Section 6.1).
        max_track_iterations: Safety bound on combined (k, w) tuning steps
            within one tracking event.
        step_minutes: Simulation time step [minutes].
        ats_margin: Headroom fraction the transfer switch requires before
            engaging solar (hysteresis).
        utility_level: DVFS level used when running from the utility (the
            chip then behaves as a conventional CMP at full speed).
        sensor_averaging: Number of I/V sensor samples averaged per
            controller reading (1 = raw).  Real MPPT front-ends average
            ADC bursts; the sensor-noise ablation shows why.
        adaptive_margin: Size the power margin from a short-horizon supply
            forecast (see :mod:`repro.core.forecast`) instead of the fixed
            ``power_margin`` — shrinking it on calm days, keeping it under
            volatility.  ``power_margin`` remains the conservative ceiling.
        adaptive_margin_floor: Smallest margin the forecaster may choose.
        realloc_after_track: After each tracking event, globally reallocate
            per-core levels under the discovered budget (the LP-style
            scheduling of the paper's ref [15]) instead of keeping the
            incrementally tuned assignment.  Off by default — the ablation
            quantifies the difference.
        enable_pcpg: Allow per-core power gating as a load-adaptation knob
            below the bottom DVFS level (paper Section 4: DVFS and PCPG
            are both load-adaptation knobs).  Disabling it is explored as
            an ablation.
        sensor_staleness_min: Graceful degradation: how long [minutes] a
            held-last-good sensor reading may substitute for a live one
            before the controller stops trusting it and enters degraded
            mode (DESIGN.md section 10).
        degraded_budget_fraction: Conservative power budget used in
            degraded mode, as a fraction of the last good power reading
            (floored at the chip's minimum sustainable configuration).
        solver: Electrical solver mode.  ``"exact"`` (default) runs the
            per-step Lambert-W/brentq solvers and is byte-identical to
            the golden fixtures; ``"table"`` answers MPP and
            operating-point queries from the precomputed interpolation
            surfaces of :mod:`repro.power.surface` (within their
            measured error bound) and unlocks the batched day engine.
            Devices the surfaces cannot represent (fault-injected
            arrays, shaded strings) fall back to exact with a warning.
        chip_spec: The chip the policies simulate, as a
            :class:`~repro.multicore.spec.ChipSpec` string — a preset
            name (``alpha8``, ``biglittle``, ``hetero3``, ``little8``)
            or the mix grammar (``big*4+little*4@45nm:cons``).  Stored
            in canonical form, so equal chips compare (and cache-key)
            equal; the default ``alpha8`` is the paper's homogeneous
            8-core chip, byte-identical to the pre-ChipSpec model.
    """

    rail_voltage: float = NOMINAL_RAIL_V
    rail_tolerance_v: float = 0.35
    tracking_interval_min: float = 10.0
    supply_change_fraction: float | None = None
    power_margin: float = 0.05
    max_track_iterations: int = 64
    step_minutes: float = 1.0
    ats_margin: float = 0.05
    utility_level: int | None = None
    sensor_averaging: int = 1
    adaptive_margin: bool = False
    adaptive_margin_floor: float = 0.01
    realloc_after_track: bool = False
    enable_pcpg: bool = True
    sensor_staleness_min: float = 5.0
    degraded_budget_fraction: float = 0.5
    solver: str = "exact"
    chip_spec: str = "alpha8"

    def __post_init__(self) -> None:
        if self.rail_voltage <= 0:
            raise ValueError(f"rail_voltage must be positive, got {self.rail_voltage}")
        if self.rail_tolerance_v <= 0:
            raise ValueError(
                f"rail_tolerance_v must be positive, got {self.rail_tolerance_v}"
            )
        if self.tracking_interval_min <= 0:
            raise ValueError(
                f"tracking_interval_min must be positive, got {self.tracking_interval_min}"
            )
        if not 0.0 <= self.power_margin < 0.5:
            raise ValueError(
                f"power_margin must be in [0, 0.5), got {self.power_margin}"
            )
        if self.step_minutes <= 0:
            raise ValueError(f"step_minutes must be positive, got {self.step_minutes}")
        if self.max_track_iterations < 1:
            raise ValueError(
                f"max_track_iterations must be >= 1, got {self.max_track_iterations}"
            )
        if self.sensor_averaging < 1:
            raise ValueError(
                f"sensor_averaging must be >= 1, got {self.sensor_averaging}"
            )
        if self.sensor_staleness_min < 0:
            raise ValueError(
                f"sensor_staleness_min must be >= 0, got {self.sensor_staleness_min}"
            )
        if not 0.0 < self.degraded_budget_fraction <= 1.0:
            raise ValueError(
                "degraded_budget_fraction must be in (0, 1], "
                f"got {self.degraded_budget_fraction}"
            )
        if self.solver not in ("exact", "table"):
            raise ValueError(
                f"solver must be 'exact' or 'table', got {self.solver!r}"
            )
        if not isinstance(self.chip_spec, str):
            raise ValueError(
                f"chip_spec must be a spec string, got {self.chip_spec!r}"
            )
        # Canonicalize so configs naming the same chip compare equal and
        # share one sweep-cache identity ("alpha*8@90nm:itrs;uncore=45.0"
        # and "alpha8" are the same cache key).
        object.__setattr__(
            self, "chip_spec", ChipSpec.parse(self.chip_spec).canonical()
        )
