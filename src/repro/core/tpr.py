"""Throughput-power ratio (TPR) optimization (paper Section 4.3).

The TPR of a core quantifies the throughput return on the next watt:

    TPR_i = dT_i / dP_i

evaluated for a one-level DVFS move at the core's current program phase.
Cores with large TPR are first in line when the solar budget grows; cores
with small TPR give power back first when it shrinks.  The sorted allocation
table mirrors the paper's Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.chip import MultiCoreChip
from repro.multicore.core import Core

__all__ = [
    "TPREntry",
    "upgrade_tpr",
    "downgrade_tpr",
    "build_allocation_table",
    "best_upgrade_core",
    "best_downgrade_core",
]


@dataclass(frozen=True)
class TPREntry:
    """One row of the TPR allocation table (paper Figure 10).

    Attributes:
        core_id: Core index.
        level: Current DVFS level.
        upgrade: TPR of moving one level up (None at the top level).
        downgrade: TPR of moving one level down (None at the bottom level).
    """

    core_id: int
    level: int
    upgrade: float | None
    downgrade: float | None


def upgrade_tpr(core: Core, minute: float) -> float | None:
    """TPR of raising ``core`` one DVFS level, or None if impossible.

    Uses the profiled phase IPC and the power model — exactly the
    ``delta-T / delta-P`` the paper derives from performance counters and
    I/V sensors.
    """
    if core._gated or core._level >= core._max_level:
        return None
    # TPR depends only on (minute, level) for an ungated core; the
    # controller re-evaluates every core at the same frozen minute after
    # each single-core move, so cache the bit-identical result.
    key = ("up", minute, core._level)
    memo = core._tpr_memo
    if key in memo:
        return memo[key]
    new_level = core.level + 1
    d_throughput = core.throughput_at_level(new_level, minute) - core.throughput_at(minute)
    d_power = core.power_at_level(new_level, minute) - core.power_at(minute)
    result = None if d_power <= 0.0 else d_throughput / d_power
    memo[key] = result
    return result


def downgrade_tpr(core: Core, minute: float) -> float | None:
    """TPR of lowering ``core`` one DVFS level, or None if impossible.

    Measured as throughput lost per watt released; the scheduler sheds load
    from the core where this is *smallest*.
    """
    if core._gated or core._level <= core._min_level:
        return None
    key = ("down", minute, core._level)
    memo = core._tpr_memo
    if key in memo:
        return memo[key]
    new_level = core.level - 1
    d_throughput = core.throughput_at(minute) - core.throughput_at_level(new_level, minute)
    d_power = core.power_at(minute) - core.power_at_level(new_level, minute)
    result = None if d_power <= 0.0 else d_throughput / d_power
    memo[key] = result
    return result


def build_allocation_table(chip: MultiCoreChip, minute: float) -> list[TPREntry]:
    """The per-core TPR table, sorted by upgrade TPR descending.

    Cores that cannot be upgraded sort last.
    """
    entries = [
        TPREntry(
            core_id=core.core_id,
            level=core.level,
            upgrade=upgrade_tpr(core, minute),
            downgrade=downgrade_tpr(core, minute),
        )
        for core in chip.cores
    ]
    entries.sort(
        key=lambda e: e.upgrade if e.upgrade is not None else float("-inf"),
        reverse=True,
    )
    return entries


def best_upgrade_core(chip: MultiCoreChip, minute: float) -> Core | None:
    """The core whose next level-up buys the most throughput per watt."""
    best: Core | None = None
    best_tpr = float("-inf")
    for core in chip.cores:
        tpr = upgrade_tpr(core, minute)
        if tpr is not None and tpr > best_tpr:
            best, best_tpr = core, tpr
    return best


def best_downgrade_core(chip: MultiCoreChip, minute: float) -> Core | None:
    """The core whose next level-down costs the least throughput per watt."""
    best: Core | None = None
    best_tpr = float("inf")
    for core in chip.cores:
        tpr = downgrade_tpr(core, minute)
        if tpr is not None and tpr < best_tpr:
            best, best_tpr = core, tpr
    return best
