"""Batched table-mode day evaluation: spans of minutes as array programs.

The scalar :meth:`DayEngine._run` loop pays Python-interpreter overhead at
every minute even when nothing interesting happens at that minute.  In
table-solver mode the expensive electrical solves are already microsecond
lookups, so the remaining cost is the per-step chip accounting — and that
is vectorizable, because between *events* (supply switches, tracking
events, budget reallocations) the chip's DVFS/gating state is frozen and
every per-step observable is an affine function of the per-core phase
IPCs:

    power[t]      = uncore + sum_c dyn_c * ipc_c[t] + leak
    throughput[t] = sum_c f_c * ipc_c[t]

This module finds the event steps with the policies' own trigger
predicates (``MPPTPolicy.track_due``, ``FixedBudgetPolicy.alloc_due``),
runs the *real* policy code at those steps (so tracking, tuning, DVFS
transition counting, and sensor behaviour are exactly the scalar-loop
code paths), and evaluates every span in between as NumPy programs over
arrays precomputed once per day (cell temperature, MPP power from the
interpolation surface, per-core IPC, the ATS floor).

The fast path runs only when nothing needs per-step hooks: table solver
active, no fault injection, event telemetry disabled, and a policy /
recorder pair this module knows how to batch.  Anything else returns
``False`` from :func:`run_fast` and the engine keeps its scalar loop —
which in table mode is still surface-backed, just stepped per minute.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SeriesRecorder, StepContext
from repro.power.psu import PowerSource

__all__ = ["run_fast", "supports"]


def supports(engine) -> str | None:
    """Classify the engine for the batched path; ``None`` = unsupported.

    Policies are matched by exact type (a subclass may override hooks the
    batching assumes frozen), and the recorder must accumulate only the
    base series (``SeriesRecorder.record`` unoverridden) so spans can be
    bulk-appended.
    """
    from repro.core.policies import (
        BatteryPolicy,
        BatteryRecorder,
        FixedBudgetPolicy,
        MPPTPolicy,
    )

    policy = engine.policy
    base_record = type(engine.recorder).record is SeriesRecorder.record
    if type(policy) is MPPTPolicy and base_record:
        return "mppt"
    if type(policy) is FixedBudgetPolicy and base_record:
        return "fixed"
    if type(policy) is BatteryPolicy and type(engine.recorder) is BatteryRecorder:
        return "battery"
    return None


class _DayArrays:
    """Whole-day environment arrays, computed once per run."""

    def __init__(self, engine) -> None:
        trace = engine.trace
        n = len(trace.minutes) - 1
        self.n = n
        self.minutes = np.asarray(trace.minutes, dtype=np.float64)[:n]
        self.irr = np.asarray(trace.irradiance, dtype=np.float64)[:n]
        self.amb = np.asarray(trace.ambient_c, dtype=np.float64)[:n]
        vd = engine.surfaces.vectorized
        self.tcell = vd.cell_temperature_from_ambient(self.irr, self.amb)
        self.pmpp, self.vmpp = engine.surfaces.mpp_arrays(self.irr, self.tcell)


def _ipc_matrix(chip, minutes: np.ndarray) -> np.ndarray:
    """Per-core *effective* IPC at every step: shape ``(n_cores, n_steps)``.

    The benchmark's phase IPC scaled by each core type's PERF base, so
    every downstream array program sees what the core's performance
    counters would report (for the homogeneous default the scale is
    exactly 1.0 and the matrix is bit-identical to the raw phase IPCs).
    """
    return np.stack(
        [
            core._ipc_scale * core.phase_trace.ipc_array(minutes)
            for core in chip.cores
        ]
    )


def _floor_array(chip, ipc: np.ndarray, with_gating: bool) -> np.ndarray:
    """``chip.floor_power_at`` for every step at once.

    With PCPG the floor is the cheapest core at the bottom level — a
    minimum over *all* cores, independent of gating state.  Without PCPG
    no tuner ever gates a core (``make_tuner(allow_gating=False)``), so
    the floor is the all-cores sum at the bottom level.  Either way the
    array depends only on the phase IPCs, never on mutable chip state.

    Heterogeneity: every coefficient is per-core — each core's own table
    bottom, voltage ratio, and leakage reference.  For the homogeneous
    default the per-core values equal the old shared-table scalars, and
    broadcasting the same float64 multiply per element keeps the result
    bit-identical.
    """
    vr2f = np.empty(len(chip.cores))
    leak = np.empty(len(chip.cores))
    epi = np.empty(len(chip.cores))
    for i, core in enumerate(chip.cores):
        table = core.table
        level = table.min_level
        vr2 = (table.voltage(level) / table.max_voltage) ** 2
        vr2f[i] = vr2 * table.frequency(level)
        leak[i] = core.power_model.leakage_ref_w * vr2
        epi[i] = core._epi_nj
    per_core = epi[:, None] * vr2f[:, None] * ipc + leak[:, None]
    folded = per_core.min(axis=0) if with_gating else per_core.sum(axis=0)
    return chip.uncore_power_w + folded


def _span_coefficients(chip) -> tuple[np.ndarray, np.ndarray, float]:
    """Affine chip coefficients for the *current* (frozen) DVFS state.

    Returns ``(dyn, freq, leak)`` with per-core dynamic-power slopes
    [W per effective IPC], per-core frequencies [GHz] (zero where
    gated), and the total active leakage [W].  Each core contributes
    through its own DVFS table and power model.
    """
    dyn = np.zeros(len(chip.cores))
    freq = np.zeros(len(chip.cores))
    leak = 0.0
    for i, core in enumerate(chip.cores):
        if core.gated:
            continue
        table = core.table
        point = table[core.level]
        vr2 = (point.voltage_v / table.max_voltage) ** 2
        dyn[i] = core._epi_nj * vr2 * point.frequency_ghz
        freq[i] = point.frequency_ghz
        leak += core.power_model.leakage_ref_w * vr2
    return dyn, freq, leak


def _flush_span(
    engine,
    arrays: _DayArrays,
    ipc: np.ndarray,
    start: int,
    end: int,
    solar: bool,
    budget_w: float | None,
) -> None:
    """Evaluate steps ``[start, end)`` with frozen chip state and record them.

    Fills the base recorder series, books the energy ledger, and credits
    each core's retired-instruction total — everything the scalar loop
    would have accumulated over the same steps, as one array program.
    """
    if start >= end:
        return
    chip = engine.policy.chip
    recorder = engine.recorder
    ledger = engine.ledger
    dt = engine.config.step_minutes
    count = end - start
    dyn, freq, leak = _span_coefficients(chip)
    segment = ipc[:, start:end]
    power = chip.uncore_power_w + leak + dyn @ segment
    throughput = freq @ segment
    retired_per_core = (freq[:, None] * segment).sum(axis=1) * dt * 60.0
    for core, retired in zip(chip.cores, retired_per_core):
        core.credit_retired(float(retired))

    recorder.minutes.extend(arrays.minutes[start:end].tolist())
    recorder.mpp_w.extend(arrays.pmpp[start:end].tolist())
    recorder.throughput.extend(throughput.tolist())
    recorder.on_solar.extend([solar] * count)
    if solar:
        cap = arrays.pmpp[start:end] if budget_w is None else budget_w
        consumed = np.minimum(power, cap)
        recorder.consumed_w.extend(consumed.tolist())
        recorder.retired_solar += float(throughput.sum()) * dt * 60.0
        solar_wh = float(consumed.sum()) * dt / 60.0
        ledger.solar_wh += solar_wh
        ledger.load_wh += solar_wh
    else:
        recorder.consumed_w.extend([0.0] * count)
        utility_wh = float(power.sum()) * dt / 60.0
        recorder.utility_wh += utility_wh
        ledger.utility_wh += utility_wh
        ledger.load_wh += utility_wh


def _run_stepped(engine, tel, arrays: _DayArrays, mode: str) -> None:
    """The MPPT / fixed-budget day: event steps real, spans vectorized."""
    policy = engine.policy
    chip = policy.chip
    cfg = engine.config
    dt = cfg.step_minutes
    surfaces = engine.surfaces
    recorder = engine.recorder
    ledger = engine.ledger
    ats = engine.ats
    predictor = getattr(policy, "predictor", None)
    budget_w = policy.budget_w if mode == "fixed" else None

    ipc = _ipc_matrix(chip, arrays.minutes)
    floor = _floor_array(chip, ipc, cfg.enable_pcpg)
    if mode == "fixed":
        solar_mask = (arrays.pmpp >= policy.budget_w) & (policy.budget_w >= floor)

    on_solar_prev = False
    pending_start = 0
    pending_solar = False
    for index in range(arrays.n):
        minute = float(arrays.minutes[index])
        pmpp = float(arrays.pmpp[index])
        if mode == "mppt":
            source = ats.update(pmpp, float(floor[index]))
            on_solar = source is PowerSource.SOLAR
            event = (
                (not on_solar_prev) or policy.track_due(minute, pmpp)
                if on_solar
                else on_solar_prev or index == 0
            )
        else:
            on_solar = bool(solar_mask[index])
            event = (
                policy.alloc_due(minute)
                if on_solar
                else on_solar_prev or index == 0
            )
        if event:
            _flush_span(
                engine, arrays, ipc, pending_start, index, pending_solar, budget_w
            )
            ctx = StepContext(
                index=index,
                minute=minute,
                irradiance=float(arrays.irr[index]),
                ambient_c=float(arrays.amb[index]),
                cell_temp=float(arrays.tcell[index]),
                mpp=surfaces.mpp(float(arrays.irr[index]), float(arrays.tcell[index])),
                dt=dt,
                telemetry=tel,
            )
            if on_solar:
                if not on_solar_prev:
                    policy.enter_solar(ctx)
                sample = policy.solar_step(ctx)
            else:
                sample = policy.utility_step(ctx)
            recorder.record(ctx, on_solar, sample)
            ledger.book(on_solar, sample, dt)
            pending_start = index + 1
        else:
            if index == pending_start:
                pending_solar = on_solar
            if on_solar and predictor is not None:
                predictor.observe(minute, pmpp)
        on_solar_prev = on_solar
    _flush_span(
        engine, arrays, ipc, pending_start, arrays.n, pending_solar, budget_w
    )


def run_fast(engine, tel) -> bool:
    """Run the whole day batched; ``False`` = caller keeps the scalar loop.

    On ``True`` the recorder, the energy ledger, and the policy/chip state
    are exactly as if the scalar loop had stepped the day (modulo the
    table solver's documented error bound and floating-point summation
    order); the engine's shared end-of-day bookkeeping still runs in
    :meth:`DayEngine._finish`.
    """
    mode = supports(engine)
    if mode is None:
        return False
    prof = tel.profile
    profiling = prof.enabled
    t0 = prof.clock() if profiling else 0.0
    arrays = _DayArrays(engine)
    if profiling:
        prof.add("fastday.precompute", prof.clock() - t0)
        t0 = prof.clock()
    if mode == "battery":
        # The harvest loop integrates MPP power and records nothing; the
        # spend phase runs in BatteryPolicy.finalize via recorder.build.
        engine.policy.harvested_wh += (
            float(arrays.pmpp.sum()) * engine.config.step_minutes / 60.0
        )
    else:
        _run_stepped(engine, tel, arrays, mode)
    if profiling:
        prof.add("fastday.steps", prof.clock() - t0)
        prof.count("fastday.days")
    return True
