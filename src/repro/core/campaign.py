"""Multi-day simulation campaigns.

A *campaign* runs many day simulations — several weather realizations per
(station, month) cell — and aggregates distributional statistics.  This is
how a deployment question is answered ("what utilization should a Phoenix
installation expect in July, across weather?") rather than the single
seeded day each paper figure shows.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.simulation import DayResult, run_day
from repro.environment.irradiance import default_seed
from repro.environment.locations import Location
from repro.metrics.carbon import CarbonReport, carbon_report
from repro.telemetry import hub as telemetry_hub

__all__ = ["CampaignCell", "CampaignResult", "run_campaign"]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class CampaignCell:
    """Aggregated statistics of one (station, month) campaign cell.

    Attributes:
        location_code: Station code.
        month: Calendar month.
        days: The individual day results.
    """

    location_code: str
    month: int
    days: tuple[DayResult, ...]

    def _values(self, attribute: str) -> np.ndarray:
        return np.array([getattr(day, attribute) for day in self.days])

    def mean(self, attribute: str) -> float:
        """Mean of a DayResult attribute across the cell's days."""
        return float(np.mean(self._values(attribute)))

    def std(self, attribute: str) -> float:
        """Standard deviation of a DayResult attribute across days."""
        return float(np.std(self._values(attribute)))

    def quantile(self, attribute: str, q: float) -> float:
        """Quantile of a DayResult attribute across days."""
        return float(np.quantile(self._values(attribute), q))


@dataclass(frozen=True)
class CampaignResult:
    """A full campaign: every requested cell plus overall aggregates.

    Attributes:
        mix_name: Workload mix simulated.
        policy: Power-management policy.
        days_per_cell: Weather realizations per (station, month).
        cells: One :class:`CampaignCell` per (station, month).
    """

    mix_name: str
    policy: str
    days_per_cell: int
    cells: tuple[CampaignCell, ...]

    def cell(self, location_code: str, month: int) -> CampaignCell:
        """Look up one campaign cell."""
        for cell in self.cells:
            if cell.location_code == location_code and cell.month == month:
                return cell
        raise KeyError(f"no cell for ({location_code}, {month})")

    @property
    def all_days(self) -> list[DayResult]:
        """Every simulated day across all cells."""
        return [day for cell in self.cells for day in cell.days]

    @property
    def overall_utilization(self) -> float:
        """Energy-weighted utilization over the whole campaign."""
        days = self.all_days
        available = sum(d.solar_available_wh for d in days)
        if available <= 0.0:
            return 0.0
        return sum(d.solar_used_wh for d in days) / available

    def carbon(self) -> CarbonReport:
        """Carbon accounting over the whole campaign."""
        return carbon_report(self.all_days)


def _cell_seed(location: Location, month: int, base_seed: int, i: int) -> int:
    return default_seed(location, month) + base_seed + i


def run_campaign(
    mix_name: str,
    locations: list[Location],
    months: tuple[int, ...],
    days_per_cell: int = 5,
    policy: str = "MPPT&Opt",
    config: SolarCoreConfig | None = None,
    base_seed: int = 0,
    runner=None,
    faults: str | None = None,
) -> CampaignResult:
    """Run a multi-realization campaign over a (station, month) grid.

    Each cell simulates ``days_per_cell`` independent weather realizations;
    realization ``i`` of a cell uses seed ``default_seed(loc, month) +
    base_seed + i``, so campaigns are deterministic yet realizations are
    independent.

    Args:
        mix_name: Table 5 workload mix.
        locations: Stations to include.
        months: Months to include.
        days_per_cell: Weather realizations per cell.
        policy: Power-management policy for every day.
        config: Simulation configuration.
        base_seed: Offset for the realization seeds.
        runner: A :class:`~repro.harness.runner.SimulationRunner` to run
            the grid through — with ``jobs > 1`` the realizations fan out
            across worker processes, and with ``cache_dir=`` they persist
            to (and reload from) the disk cache.  The runner's config is
            used; passing a conflicting ``config`` is an error.
        faults: Fault-schedule spec string applied to every simulated day
            (None = fault-free campaign).

    Returns:
        The :class:`CampaignResult`.
    """
    if days_per_cell < 1:
        raise ValueError(f"days_per_cell must be >= 1, got {days_per_cell}")
    if runner is not None and config is not None and config != runner.config:
        raise ValueError(
            "run_campaign got both a runner and a conflicting config; "
            "construct the runner with that config instead"
        )
    tel = telemetry_hub.current()
    cells = []
    with tel.span(
        "run_campaign", mix=mix_name, policy=policy, days_per_cell=days_per_cell
    ):
        if runner is not None:
            from repro.harness.parallel import SweepTask

            runner.prefetch(
                SweepTask(
                    "mppt", mix_name, location.code, month, policy=policy,
                    seed=_cell_seed(location, month, base_seed, i),
                    faults=faults,
                )
                for location in locations
                for month in months
                for i in range(days_per_cell)
            )
        for location in locations:
            for month in months:
                days = tuple(
                    run_day(
                        mix_name,
                        location,
                        month,
                        policy,
                        config=config,
                        seed=_cell_seed(location, month, base_seed, i),
                        faults=faults,
                    )
                    if runner is None
                    else runner.day(
                        mix_name,
                        location,
                        month,
                        policy,
                        seed=_cell_seed(location, month, base_seed, i),
                        faults=faults,
                    )
                    for i in range(days_per_cell)
                )
                cells.append(CampaignCell(location.code, month, days))
                log.info(
                    "campaign cell %s m%d: %d day(s) simulated",
                    location.code, month, days_per_cell,
                )
    return CampaignResult(
        mix_name=mix_name,
        policy=policy,
        days_per_cell=days_per_cell,
        cells=tuple(cells),
    )
