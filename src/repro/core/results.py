"""Day-simulation result dataclasses and their derived paper metrics.

These are the public value objects returned by the ``run_day*`` entry
points (and pickled by the disk result cache), kept free of simulation
machinery so policies, recorders, and the harness can all import them
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DayResult", "BatteryDayResult"]


@dataclass
class DayResult:
    """Everything measured over one simulated day.

    Attributes:
        mix_name: Workload mix identifier.
        location_code: Station code.
        month: Calendar month simulated.
        policy: Power-management policy name.
        minutes: Sample times [minutes since midnight].
        mpp_w: Panel maximum (MPP) power at each step [W].
        consumed_w: Power actually drawn by the chip at each step [W]
            (zero while on the utility).
        throughput_gips: Chip throughput at each step [GIPS].
        on_solar: Whether the chip ran from the panel at each step.
        retired_ginst_solar: Instructions retired while solar-powered [Ginst].
        retired_ginst_total: Instructions retired over the whole day [Ginst].
        utility_wh: Energy drawn from the grid [Wh].
        tracking_events: Number of MPPT tracking events performed.
        dvfs_transitions: Real per-core DVFS transitions over the day.
        dvfs_transition_volts: Cumulative DVFS voltage swing [V] (the input
            to VRM transition-overhead accounting).
    """

    mix_name: str
    location_code: str
    month: int
    policy: str
    minutes: np.ndarray
    mpp_w: np.ndarray
    consumed_w: np.ndarray
    throughput_gips: np.ndarray
    on_solar: np.ndarray
    retired_ginst_solar: float
    retired_ginst_total: float
    utility_wh: float
    tracking_events: int = 0
    dvfs_transitions: int = 0
    dvfs_transition_volts: float = 0.0

    # ------------------------------------------------------------------
    # Derived metrics (paper Section 6 definitions)
    # ------------------------------------------------------------------
    @property
    def step_minutes(self) -> float:
        """Simulation step [minutes]."""
        return float(self.minutes[1] - self.minutes[0])

    @property
    def solar_available_wh(self) -> float:
        """Theoretical maximum solar supply: MPP power integrated [Wh]."""
        return float(np.sum(self.mpp_w)) * self.step_minutes / 60.0

    @property
    def solar_used_wh(self) -> float:
        """Solar energy the chip actually consumed [Wh]."""
        return (
            float(np.sum(self.consumed_w[self.on_solar])) * self.step_minutes / 60.0
        )

    @property
    def energy_utilization(self) -> float:
        """Consumed / theoretical-maximum solar energy (Figure 18)."""
        available = self.solar_available_wh
        if available <= 0.0:
            return 0.0
        return self.solar_used_wh / available

    @property
    def effective_duration_fraction(self) -> float:
        """Fraction of daytime spent drawing from the panel (Figure 19)."""
        return float(np.mean(self.on_solar))

    @property
    def ptp(self) -> float:
        """Performance-time product: instructions committed while
        solar-powered over the day [Ginst] (paper Section 4.3)."""
        return self.retired_ginst_solar

    @property
    def tracking_errors(self) -> np.ndarray:
        """Per-step relative tracking error ``|P - B| / B`` while on solar."""
        mask = self.on_solar & (self.mpp_w > 0)
        budget = self.mpp_w[mask]
        actual = self.consumed_w[mask]
        if len(budget) == 0:
            return np.array([])
        return np.abs(actual - budget) / budget

    @property
    def mean_tracking_error(self) -> float:
        """Mean relative tracking error over the solar-powered steps
        (Table 7)."""
        errors = self.tracking_errors
        if len(errors) == 0:
            return 0.0
        return float(np.mean(errors))


@dataclass(frozen=True)
class BatteryDayResult:
    """Outcome of one day on the battery-equipped baseline (paper Fig 2-C).

    Attributes:
        mix_name: Workload mix identifier.
        location_code: Station code.
        month: Calendar month simulated.
        derating: Overall de-rating factor applied to the harvest.
        harvested_wh: Usable stored solar energy after de-rating [Wh].
        runtime_minutes: How long the stored energy ran the chip at full
            speed (may exceed daytime — the battery runs into the night).
        ptp: Instructions committed from the stored solar energy [Ginst].
    """

    mix_name: str
    location_code: str
    month: int
    derating: float
    harvested_wh: float
    runtime_minutes: float
    ptp: float
