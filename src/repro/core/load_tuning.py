"""Per-core load adaptation policies (paper Table 6 and Figures 10-12).

A *load tuner* answers one question for the MPPT controller: when the solar
budget allows one more DVFS step (or demands one less), which core moves?

    MPPT&IC  — keep tuning one core until it saturates, then the next
    MPPT&RR  — distribute steps round-robin across cores
    MPPT&Opt — pick by throughput-power ratio (the SolarCore default)

All tuners share the :class:`LoadTuner` interface: ``increase``/``decrease``
perform one single-level move on one core and report whether any move was
possible.  When ``allow_gating`` is set (the paper's PCPG, Section 4), a
tuner that has exhausted its DVFS range extends it: ``decrease`` gates a
core once every active core sits at the bottom level (always keeping at
least one core running), and ``increase`` considers ungating a parked core.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.tpr import best_downgrade_core, best_upgrade_core, upgrade_tpr
from repro.multicore.chip import MultiCoreChip
from repro.multicore.core import Core

__all__ = [
    "LoadTuner",
    "OptTuner",
    "RoundRobinTuner",
    "IndividualCoreTuner",
    "make_tuner",
    "TUNER_NAMES",
]


def _ungate_at_floor(core: Core) -> None:
    """Bring a gated core back online at the bottom DVFS level."""
    core.set_level(core.table.min_level)
    core.ungate()


def _floor_efficiency(core: Core, minute: float) -> float:
    """Throughput per watt of a core if run at the bottom level now."""
    level = core.table.min_level
    power = core.power_at_level(level, minute)
    if power <= 0.0:
        return float("inf")
    return core.throughput_at_level(level, minute) / power


class LoadTuner(ABC):
    """Strategy interface: one single-level DVFS (or PCPG) move per call."""

    name: str = "abstract"

    def __init__(self, allow_gating: bool = True) -> None:
        self.allow_gating = allow_gating

    @abstractmethod
    def increase(self, chip: MultiCoreChip, minute: float) -> bool:
        """Raise the chip load by one step on one core.

        Returns False when no core can go higher.
        """

    @abstractmethod
    def decrease(self, chip: MultiCoreChip, minute: float) -> bool:
        """Lower the chip load by one step on one core.

        Returns False when no core can go lower.
        """

    # -- shared PCPG helpers -------------------------------------------
    def _gated_cores(self, chip: MultiCoreChip) -> list[Core]:
        return [core for core in chip.cores if core.gated]

    def _can_gate_another(self, chip: MultiCoreChip) -> bool:
        """Gating is allowed while more than one core remains active."""
        return self.allow_gating and len(chip.active_cores()) > 1


class OptTuner(LoadTuner):
    """Throughput-power-ratio optimized tuning (MPPT&Opt, the paper's
    SolarCore configuration).

    Upgrades whatever buys the most throughput per watt — a DVFS level-up on
    an active core or the un-gating of a parked core; downgrades shed the
    cheapest throughput per watt, gating the least efficient bottom-level
    core once DVFS range is exhausted.
    """

    name = "MPPT&Opt"

    def increase(self, chip: MultiCoreChip, minute: float) -> bool:
        core = best_upgrade_core(chip, minute)
        best_tpr = upgrade_tpr(core, minute) if core is not None else None
        if self.allow_gating:
            for gated in self._gated_cores(chip):
                tpr = _floor_efficiency(gated, minute)
                if best_tpr is None or tpr > best_tpr:
                    core, best_tpr = gated, tpr
        if core is None:
            return False
        if core.gated:
            _ungate_at_floor(core)
        else:
            core.set_level(core.level + 1)
        return True

    def decrease(self, chip: MultiCoreChip, minute: float) -> bool:
        core = best_downgrade_core(chip, minute)
        if core is not None:
            core.set_level(core.level - 1)
            return True
        if not self._can_gate_another(chip):
            return False
        victim = min(chip.active_cores(), key=lambda c: _floor_efficiency(c, minute))
        victim.gate()
        return True


class RoundRobinTuner(LoadTuner):
    """Round-robin tuning (MPPT&RR): budget variation spreads evenly.

    A rotating cursor visits cores in index order, skipping cores already at
    the requested extreme.  Gated cores are revived before anyone gets a
    second helping; gating victims follow the same rotation.
    """

    name = "MPPT&RR"

    def __init__(self, allow_gating: bool = True) -> None:
        super().__init__(allow_gating)
        self._cursor = 0

    def increase(self, chip: MultiCoreChip, minute: float) -> bool:
        if self.allow_gating:
            for core in chip.cores:
                if core.gated:
                    _ungate_at_floor(core)
                    return True
        n = chip.n_cores
        for offset in range(n):
            core = chip.cores[(self._cursor + offset) % n]
            if not core.gated and core.level < core.table.max_level:
                core.set_level(core.level + 1)
                self._cursor = (core.core_id + 1) % n
                return True
        return False

    def decrease(self, chip: MultiCoreChip, minute: float) -> bool:
        n = chip.n_cores
        for offset in range(n):
            core = chip.cores[(self._cursor + offset) % n]
            if not core.gated and core.level > core.table.min_level:
                core.set_level(core.level - 1)
                self._cursor = (core.core_id + 1) % n
                return True
        if not self._can_gate_another(chip):
            return False
        for offset in range(n):
            core = chip.cores[(self._cursor + offset) % n]
            if not core.gated:
                core.gate()
                self._cursor = (core.core_id + 1) % n
                return True
        return False


class IndividualCoreTuner(LoadTuner):
    """Individual-core tuning (MPPT&IC): concentrate power in few cores.

    Keeps raising the same core until it reaches the top level before
    touching the next; sheds load symmetrically from the tail, gating
    trailing cores once their DVFS range is exhausted.  This is the paper's
    weakest policy — the cubic P(V) law makes the last levels of a hot core
    poor value.
    """

    name = "MPPT&IC"

    def increase(self, chip: MultiCoreChip, minute: float) -> bool:
        for core in chip.cores:
            if not core.gated and core.level < core.table.max_level:
                core.set_level(core.level + 1)
                return True
        if self.allow_gating:
            for core in chip.cores:
                if core.gated:
                    _ungate_at_floor(core)
                    return True
        return False

    def decrease(self, chip: MultiCoreChip, minute: float) -> bool:
        for core in reversed(chip.cores):
            if not core.gated and core.level > core.table.min_level:
                core.set_level(core.level - 1)
                return True
        if not self._can_gate_another(chip):
            return False
        for core in reversed(chip.cores):
            if not core.gated:
                core.gate()
                return True
        return False


#: Policy name -> factory, in the paper's Table 6 order.
_TUNERS = {
    "MPPT&IC": IndividualCoreTuner,
    "MPPT&RR": RoundRobinTuner,
    "MPPT&Opt": OptTuner,
}

TUNER_NAMES = tuple(_TUNERS)


def make_tuner(name: str, allow_gating: bool = True) -> LoadTuner:
    """Instantiate a load tuner by paper policy name (case-insensitive)."""
    for key, factory in _TUNERS.items():
        if key.lower() == name.lower():
            return factory(allow_gating)
    raise KeyError(f"unknown tuner {name!r}; known: {', '.join(_TUNERS)}")
