"""Core supply policies: the SolarCore controller and the paper baselines.

Each policy is a :class:`~repro.core.engine.SupplyPolicy` plugin for the
unified :class:`~repro.core.engine.DayEngine` — it owns the load model and
the control decisions, while the engine owns the stepping loop, the ATS,
the energy ledger, and shared telemetry.  The matching recorders build the
public :class:`~repro.core.results.DayResult` /
:class:`~repro.core.results.BatteryDayResult` objects.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolarCoreConfig
from repro.core.controller import SolarCoreController
from repro.core.engine import DayEngine, SeriesRecorder, StepContext, StepSample, SupplyPolicy
from repro.core.fixed_power import allocate_budget
from repro.core.forecast import SupplyPredictor
from repro.core.load_tuning import make_tuner
from repro.core.results import BatteryDayResult, DayResult
from repro.environment.locations import Location
from repro.multicore.chip import MultiCoreChip
from repro.multicore.dvfs import DVFSTable
from repro.power.converter import DCDCConverter
from repro.power.sensors import IVSensor
from repro.pv.array import PVArray
from repro.telemetry.events import (
    BatteryEvent,
    DVFSAllocationEvent,
    TrackingEvent,
)
from repro.workloads.mixes import WorkloadMix

__all__ = [
    "MPPTPolicy",
    "FixedBudgetPolicy",
    "BatteryPolicy",
    "DayResultRecorder",
    "BatteryRecorder",
]


def _apply_utility_level(chip: MultiCoreChip, level: int | None) -> None:
    """Run the chip at the utility (grid) operating point.

    ``None`` means full speed — every core at its own table's top level
    (the heterogeneity-safe default); an explicit level is clamped to
    each core's table depth.
    """
    if level is None:
        chip.set_all_max()
    else:
        for core in chip.cores:
            core.set_level(min(level, core.table.max_level))


class MPPTPolicy(SupplyPolicy):
    """The SolarCore policy day: MPP tracking plus IC/RR/Opt load tuning.

    Owns the chip, the DC/DC converter model, the load tuner, the
    :class:`SolarCoreController`, and the optional adaptive-margin supply
    predictor; the ATS decision itself lives in the engine.
    """

    uses_ats = True

    def __init__(
        self,
        workload: WorkloadMix,
        policy: str,
        cfg: SolarCoreConfig,
        array: PVArray,
        dvfs_table: DVFSTable | None = None,
        sensor: IVSensor | None = None,
        telemetry=None,
        converter: DCDCConverter | None = None,
    ) -> None:
        self.workload = workload
        self.cfg = cfg
        self.tel = telemetry
        if dvfs_table is not None:
            self.chip = MultiCoreChip(workload, table=dvfs_table)
        else:
            self.chip = MultiCoreChip(workload, spec=cfg.chip_spec)
        self.chip.set_all_min()
        self.converter = converter or DCDCConverter()
        self.tuner = make_tuner(policy, allow_gating=cfg.enable_pcpg)
        self.controller = SolarCoreController(
            array, self.converter, self.chip, self.tuner, cfg, sensor,
            telemetry=telemetry,
        )
        self.predictor = SupplyPredictor() if cfg.adaptive_margin else None
        self.name = self.tuner.name
        self.tracking_events = 0
        self._last_track_minute = -float("inf")
        self._last_track_mpp: float | None = None
        self._utility_level = cfg.utility_level

    def floor_power(self, ctx: StepContext) -> float:
        return self.chip.floor_power_at(ctx.minute, with_gating=self.cfg.enable_pcpg)

    def enter_solar(self, ctx: StepContext) -> None:
        # Soft-start: engage the panel at the minimum load.
        self.chip.ungate_all()
        self.chip.set_all_min()
        self._last_track_minute = -float("inf")
        if self.predictor is not None:
            self.predictor.reset()

    def _supply_changed(self, mpp_power: float) -> bool:
        cfg = self.cfg
        return (
            cfg.supply_change_fraction is not None
            and self._last_track_mpp is not None
            and self._last_track_mpp > 0
            and abs(mpp_power - self._last_track_mpp) / self._last_track_mpp
            > cfg.supply_change_fraction
        )

    def track_due(self, minute: float, mpp_power: float) -> bool:
        """Whether a tracking event fires at this solar step.

        Shared by :meth:`solar_step` and the batched day engine
        (:mod:`repro.core.fastday`), which uses it to locate the steps
        that mutate chip state before vectorizing the spans in between.
        """
        return (
            minute - self._last_track_minute >= self.cfg.tracking_interval_min
            or self._supply_changed(mpp_power)
        )

    def solar_step(self, ctx: StepContext) -> StepSample:
        cfg = self.cfg
        chip = self.chip
        tel = self.tel
        minute = ctx.minute
        mpp = ctx.mpp
        if self.predictor is not None:
            self.predictor.observe(minute, mpp.power)
        supply_changed = self._supply_changed(mpp.power)
        if (
            minute - self._last_track_minute >= cfg.tracking_interval_min
            or supply_changed
        ):
            if self.predictor is not None:
                self.controller.margin_override = self.predictor.adaptive_margin(
                    cfg.tracking_interval_min,
                    floor=cfg.adaptive_margin_floor,
                    ceiling=cfg.power_margin,
                )
            result = self.controller.track(ctx.irradiance, ctx.cell_temp, minute)
            if cfg.realloc_after_track and not result.load_saturated:
                # Ref [15]-style global reallocation under the budget
                # the tracking event just discovered.
                target = result.best_power_w * (1.0 - cfg.power_margin)
                if target >= chip.floor_power_at(minute, cfg.enable_pcpg):
                    allocate_budget(
                        chip, target, minute, allow_gating=cfg.enable_pcpg
                    )
                    if tel.enabled:
                        tel.count("sim.budget_allocations")
                        tel.emit(
                            DVFSAllocationEvent(
                                minute=minute,
                                budget_w=target,
                                allocated_w=chip.total_power_at(minute),
                            )
                        )
            self.tracking_events += 1
            self._last_track_minute = minute
            self._last_track_mpp = mpp.power
            if tel.enabled:
                tel.count("sim.tracking_events")
                tel.emit(
                    TrackingEvent(
                        minute=minute,
                        mix=self.workload.name,
                        policy=self.tuner.name,
                        iterations=result.iterations,
                        power_w=result.power_w,
                        best_power_w=result.best_power_w,
                        mpp_w=mpp.power,
                        rail_voltage=result.rail_voltage,
                        load_saturated=result.load_saturated,
                        triggered_by="supply-change" if supply_changed else "periodic",
                    )
                )
        # Between tracking events the converter's fast inner loop servos
        # k to hold the rail at nominal, so the chip draws exactly its
        # DVFS-determined demand — bounded by what the panel can give.
        consumed = min(chip.total_power_at(minute), mpp.power)
        retired = chip.advance(minute, ctx.dt)
        return StepSample(
            consumed_w=consumed,
            throughput_gips=chip.total_throughput_at(minute),
            retired_ginst=retired,
        )

    def utility_step(self, ctx: StepContext) -> StepSample:
        # Conventional CMP on grid power.
        chip = self.chip
        chip.ungate_all()
        _apply_utility_level(chip, self._utility_level)
        consumed = chip.total_power_at(ctx.minute)
        chip.advance(ctx.minute, ctx.dt)
        return StepSample(
            consumed_w=0.0,
            throughput_gips=chip.total_throughput_at(ctx.minute),
            utility_w=consumed,
        )

    def final_telemetry(self, tel) -> None:
        tel.count("sim.dvfs_transitions", self.chip.total_transitions)


class FixedBudgetPolicy(SupplyPolicy):
    """The Fixed-Power baseline: a constant power-transfer threshold.

    The chip draws from the panel only while the panel can supply
    ``budget_w`` and the budget covers the chip's floor configuration; the
    per-core allocation is refreshed at the tracking cadence.
    """

    uses_ats = False

    def __init__(
        self,
        workload: WorkloadMix,
        budget_w: float,
        cfg: SolarCoreConfig,
        telemetry=None,
    ) -> None:
        self.workload = workload
        self.budget_w = budget_w
        self.cfg = cfg
        self.tel = telemetry
        self.chip = MultiCoreChip(workload, spec=cfg.chip_spec)
        self.name = f"Fixed-{budget_w:.0f}W"
        self.tracking_events = 0
        self._last_alloc_minute = -float("inf")
        self._utility_level = cfg.utility_level

    def solar_eligible(self, ctx: StepContext) -> bool:
        # Solar-eligible only when the panel covers the full fixed budget
        # and the budget covers the chip's floor configuration.
        floor_power = self.chip.floor_power_at(
            ctx.minute, with_gating=self.cfg.enable_pcpg
        )
        return ctx.mpp.power >= self.budget_w and self.budget_w >= floor_power

    def alloc_due(self, minute: float) -> bool:
        """Whether the per-core allocation refreshes at this solar step
        (shared with the batched day engine)."""
        return minute - self._last_alloc_minute >= self.cfg.tracking_interval_min

    def solar_step(self, ctx: StepContext) -> StepSample:
        cfg = self.cfg
        chip = self.chip
        tel = self.tel
        minute = ctx.minute
        if self.alloc_due(minute):
            allocate_budget(
                chip, self.budget_w, minute, allow_gating=cfg.enable_pcpg
            )
            self._last_alloc_minute = minute
            if tel.enabled:
                tel.count("sim.budget_allocations")
                tel.emit(
                    DVFSAllocationEvent(
                        minute=minute,
                        budget_w=self.budget_w,
                        allocated_w=chip.total_power_at(minute),
                    )
                )
        consumed = min(chip.total_power_at(minute), self.budget_w)
        retired = chip.advance(minute, ctx.dt)
        return StepSample(
            consumed_w=consumed,
            throughput_gips=chip.total_throughput_at(minute),
            retired_ginst=retired,
        )

    def utility_step(self, ctx: StepContext) -> StepSample:
        chip = self.chip
        chip.ungate_all()
        _apply_utility_level(chip, self._utility_level)
        consumed = chip.total_power_at(ctx.minute)
        chip.advance(ctx.minute, ctx.dt)
        self._last_alloc_minute = -float("inf")
        return StepSample(
            consumed_w=0.0,
            throughput_gips=chip.total_throughput_at(ctx.minute),
            utility_w=consumed,
        )

    def final_telemetry(self, tel) -> None:
        tel.count("sim.dvfs_transitions", self.chip.total_transitions)


class BatteryPolicy(SupplyPolicy):
    """The battery-equipped MPPT baseline (paper Figure 2-C).

    During the engine's day loop the charge controller harvests the
    panel's MPP power every step; :meth:`finalize` then applies the
    de-rating chain (Table 3) and runs the chip at full speed from the
    stable battery supply until the stored energy is spent.
    """

    uses_ats = False

    def __init__(
        self,
        workload: WorkloadMix,
        location: Location,
        month: int,
        derating: float,
        cfg: SolarCoreConfig,
        telemetry=None,
    ) -> None:
        self.workload = workload
        self.location = location
        self.month = month
        self.derating = derating
        self.cfg = cfg
        self.tel = telemetry
        self.name = "Battery"
        self.harvested_wh = 0.0
        self.spent_wh = 0.0
        self.chip: MultiCoreChip | None = None

    def solar_eligible(self, ctx: StepContext) -> bool:
        return True

    def solar_step(self, ctx: StepContext) -> StepSample:
        # Harvest: MPP power integrated over the day (de-rated at the end).
        self.harvested_wh += ctx.mpp.power * ctx.dt / 60.0
        return StepSample(consumed_w=0.0, throughput_gips=0.0)

    def utility_step(self, ctx: StepContext) -> StepSample:  # pragma: no cover
        raise AssertionError("the battery baseline never runs from the grid")

    def finalize(self, engine: DayEngine) -> BatteryDayResult:
        """De-rate the harvest, spend it at full speed, build the result."""
        tel = self.tel
        trace = engine.trace
        dt = self.cfg.step_minutes
        self.harvested_wh *= self.derating
        if tel.enabled:
            tel.emit(
                BatteryEvent(
                    minute=float(trace.minutes[0]),
                    phase="harvested",
                    energy_wh=self.harvested_wh,
                    derating=self.derating,
                )
            )

        # Spend: full speed from a stable supply until the energy runs out.
        chip = MultiCoreChip(self.workload, spec=self.cfg.chip_spec)
        chip.set_all_max()
        self.chip = chip
        remaining_wh = self.harvested_wh
        minute = float(trace.minutes[0])
        while remaining_wh > 0.0:
            power = chip.total_power_at(minute)
            step_wh = power * dt / 60.0
            if step_wh >= remaining_wh:
                # Partial final step: run the exact fraction the energy allows.
                fraction = remaining_wh / step_wh
                chip.advance(minute, dt * fraction)
                minute += dt * fraction
                self.spent_wh += remaining_wh
                remaining_wh = 0.0
                break
            chip.advance(minute, dt)
            remaining_wh -= step_wh
            self.spent_wh += step_wh
            minute += dt

        if tel.enabled:
            tel.emit(
                BatteryEvent(
                    minute=minute, phase="depleted", energy_wh=0.0,
                    derating=self.derating,
                )
            )
        return BatteryDayResult(
            mix_name=self.workload.name,
            location_code=self.location.code,
            month=self.month,
            derating=self.derating,
            harvested_wh=self.harvested_wh,
            runtime_minutes=minute - float(trace.minutes[0]),
            ptp=chip.retired_ginst,
        )


class DayResultRecorder(SeriesRecorder):
    """Builds the classic :class:`DayResult` from the shared base series."""

    def __init__(self, workload: WorkloadMix, location: Location, month: int) -> None:
        super().__init__()
        self.workload = workload
        self.location = location
        self.month = month

    def build(self, engine: DayEngine) -> DayResult:
        policy = engine.policy
        return DayResult(
            mix_name=self.workload.name,
            location_code=self.location.code,
            month=self.month,
            policy=policy.name,
            minutes=np.array(self.minutes),
            mpp_w=np.array(self.mpp_w),
            consumed_w=np.array(self.consumed_w),
            throughput_gips=np.array(self.throughput),
            on_solar=np.array(self.on_solar, dtype=bool),
            retired_ginst_solar=self.retired_solar,
            retired_ginst_total=policy.chip.retired_ginst,
            utility_wh=self.utility_wh,
            tracking_events=policy.tracking_events,
            dvfs_transitions=policy.chip.total_transitions,
            dvfs_transition_volts=policy.chip.total_transition_volts,
        )


class BatteryRecorder(SeriesRecorder):
    """The battery day keeps no per-step series; the result comes from the
    policy's harvest/spend accounting."""

    def record(self, ctx: StepContext, solar: bool, sample: StepSample) -> None:
        pass

    def build(self, engine: DayEngine) -> BatteryDayResult:
        return engine.policy.finalize(engine)
